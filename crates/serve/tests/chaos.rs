//! Fault-injection suite: a real [`Server`] behind a
//! [`probase_testkit::FaultProxy`], plus direct-to-server abuse of the
//! wire protocol. Every fault schedule derives from a seed, so a failure
//! replays exactly: set `PROBASE_CHAOS_SEED` to the seed printed in the
//! assertion message and rerun
//! `cargo test -p probase-serve --test chaos`.
//!
//! The invariant every scenario ends on: the server is still answering
//! clean requests, and the telemetry counters account for every shed,
//! rejected, or malformed event the scenario provoked.

use probase_serve::{
    json, Client, ClientConfig, ClientError, DurabilityConfig, Json, Request, ServeConfig, Server,
    WalSync,
};
use probase_store::{ConceptGraph, SharedStore};
use probase_testkit::{Fault, FaultPlan, FaultProxy};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Env var naming the chaos seed; defaults to a pinned value so CI runs
/// are reproducible without any setup.
const SEED_VAR: &str = "PROBASE_CHAOS_SEED";
const DEFAULT_SEED: u64 = 0xCAFE_BABE;

fn chaos_seed() -> u64 {
    FaultPlan::from_env(SEED_VAR, DEFAULT_SEED).seed()
}

fn seeded_store() -> SharedStore {
    let mut g = ConceptGraph::new();
    let country = g.ensure_node("country", 0);
    for (label, count) in [("China", 8u32), ("India", 5), ("Japan", 3)] {
        let n = g.ensure_node(label, 0);
        g.add_evidence(country, n, count);
    }
    g.rebuild_indexes();
    SharedStore::new(g)
}

fn start_server(config: ServeConfig) -> Server {
    Server::start(seeded_store(), &config).expect("server binds an ephemeral port")
}

fn default_test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 64,
        cache_capacity: 256,
        cache_shards: 4,
        deadline: Duration::from_secs(5),
        ..ServeConfig::default()
    }
}

/// A fresh per-test durability directory under the system temp dir.
fn chaos_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("probase-chaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// The default config plus a durable write path rooted at `dir`, with
/// background rebuild off — the durability scenarios drive rebuilds
/// explicitly or not at all.
fn durable_config(dir: &Path) -> ServeConfig {
    ServeConfig {
        durability: Some(DurabilityConfig {
            snapshot_dir: dir.to_path_buf(),
            wal_sync: WalSync::Always,
            rebuild_after_writes: 0,
            rebuild_interval: None,
        }),
        ..default_test_config()
    }
}

/// A client config tuned for the fault scenarios: quick, bounded,
/// seeded so backoff jitter replays with the fault schedule.
fn retrying_config(seed: u64) -> ClientConfig {
    ClientConfig {
        max_retries: 4,
        retry_budget: 32,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(20),
        jitter: 0.5,
        seed,
        read_timeout: Some(Duration::from_millis(400)),
        ..ClientConfig::default()
    }
}

/// Read envelopes off a raw socket until EOF or `n` lines.
fn read_envelopes(reader: &mut impl BufRead, n: usize) -> Vec<Json> {
    let mut out = Vec::new();
    for _ in 0..n {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => out.push(json::parse(line.trim()).expect("server lines are valid JSON")),
        }
    }
    out
}

fn error_code(envelope: &Json) -> Option<&str> {
    envelope.get("error").and_then(Json::as_str)
}

// --- determinism of the harness itself -------------------------------

#[test]
fn fault_schedules_replay_from_seed() {
    let seed = chaos_seed();
    let a = FaultPlan::seeded(seed).schedule(64);
    let b = FaultPlan::seeded(seed).schedule(64);
    assert_eq!(
        a, b,
        "seed {seed:#x}: same seed must give the same schedule"
    );
    let c = FaultPlan::seeded(seed ^ 1).schedule(64);
    assert_ne!(
        a, c,
        "seed {seed:#x}: flipping the seed must change the schedule"
    );
}

// --- scripted single-fault scenarios through the proxy ---------------

#[test]
fn client_retries_through_dropped_connection() {
    let server = start_server(default_test_config());
    let plan = FaultPlan::scripted(vec![Fault::DropMidRequest { after_bytes: 4 }]);
    let proxy = FaultProxy::start(server.local_addr(), plan).expect("proxy starts");

    let mut client = Client::connect_with(proxy.local_addr(), retrying_config(chaos_seed()))
        .expect("connect through proxy");
    let envelope = client.call(&Request::Ping).expect("retry must recover");
    assert!(envelope.error.is_none(), "recovered call answers cleanly");
    assert!(
        client.retries_spent() >= 1,
        "the drop must have cost a retry"
    );
    assert!(
        client.telemetry().reconnects_total() >= 1,
        "a dropped connection forces a reconnect"
    );
    assert!(proxy.accepted() >= 2, "retry arrived on a fresh connection");
    proxy.shutdown();
    server.shutdown();
}

#[test]
fn client_retries_through_truncated_response() {
    let server = start_server(default_test_config());
    let plan = FaultPlan::scripted(vec![Fault::TruncateResponse { after_bytes: 5 }]);
    let proxy = FaultProxy::start(server.local_addr(), plan).expect("proxy starts");

    let mut client = Client::connect_with(proxy.local_addr(), retrying_config(chaos_seed()))
        .expect("connect through proxy");
    let (version, _) = client
        .call_ok(&Request::Isa {
            parent: "country".to_string(),
            child: "China".to_string(),
        })
        .expect("retry past the truncated response");
    assert_eq!(version, 0, "clean answer reflects the unmutated store");
    assert!(client.retries_spent() >= 1);
    proxy.shutdown();
    server.shutdown();
}

#[test]
fn client_retries_through_garbage_response() {
    let server = start_server(default_test_config());
    let plan = FaultPlan::scripted(vec![Fault::GarbageResponse { lines: 2 }]);
    let proxy = FaultProxy::start(server.local_addr(), plan).expect("proxy starts");

    let mut client = Client::connect_with(proxy.local_addr(), retrying_config(chaos_seed()))
        .expect("connect through proxy");
    let envelope = client
        .call(&Request::Ping)
        .expect("retry past garbage bytes");
    assert!(envelope.error.is_none());
    assert!(
        client.retries_spent() >= 1,
        "garbage must surface as a retry"
    );
    proxy.shutdown();
    server.shutdown();
}

#[test]
fn client_retries_through_blackholed_request() {
    let server = start_server(default_test_config());
    let plan = FaultPlan::scripted(vec![Fault::BlackholeRequest]);
    let proxy = FaultProxy::start(server.local_addr(), plan).expect("proxy starts");

    let mut client = Client::connect_with(proxy.local_addr(), retrying_config(chaos_seed()))
        .expect("connect through proxy");
    let envelope = client
        .call(&Request::Ping)
        .expect("read timeout + retry must recover from a blackhole");
    assert!(envelope.error.is_none());
    assert!(client.retries_spent() >= 1);
    assert!(client.telemetry().retries_total() >= 1);
    proxy.shutdown();
    server.shutdown();
}

#[test]
fn writes_never_retry() {
    // A dropped write must fail fast — retrying a non-idempotent
    // add-evidence could double-count evidence.
    let server = start_server(default_test_config());
    let plan = FaultPlan::scripted(vec![Fault::DropMidRequest { after_bytes: 4 }]);
    let proxy = FaultProxy::start(server.local_addr(), plan).expect("proxy starts");

    let mut client = Client::connect_with(proxy.local_addr(), retrying_config(chaos_seed()))
        .expect("connect through proxy");
    let err = client
        .call(&Request::AddEvidence {
            parent: "country".to_string(),
            child: "Brazil".to_string(),
            count: 1,
        })
        .expect_err("dropped write must not silently retry");
    assert!(
        matches!(err, ClientError::Io(_) | ClientError::Protocol(_)),
        "write fails with the transport error, got {err}"
    );
    assert_eq!(
        client.retries_spent(),
        0,
        "no retry budget spent on a write"
    );
    assert_eq!(
        server.state().store().version(),
        0,
        "the write must not have been applied twice — or at all"
    );
    proxy.shutdown();
    server.shutdown();
}

#[test]
fn slow_loris_connection_does_not_stall_others() {
    let server = start_server(default_test_config());
    let plan = FaultPlan::scripted(vec![Fault::SlowLoris {
        chunk: 2,
        delay_ms: 10,
    }]);
    let proxy = FaultProxy::start(server.local_addr(), plan).expect("proxy starts");

    // The victim drips through the proxy on its own thread…
    let proxy_addr = proxy.local_addr();
    let victim = std::thread::spawn(move || {
        let mut client = Client::connect_with(
            proxy_addr,
            ClientConfig {
                read_timeout: Some(Duration::from_secs(10)),
                ..ClientConfig::default()
            },
        )
        .expect("victim connects");
        client.call(&Request::Ping)
    });

    // …while a direct client gets quick answers throughout.
    let mut direct = Client::connect(server.local_addr()).expect("direct connect");
    for i in 0..20 {
        let started = Instant::now();
        direct
            .call_ok(&Request::Ping)
            .unwrap_or_else(|e| panic!("direct ping {i} failed during slow-loris: {e}"));
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "direct ping {i} stalled behind the slow connection"
        );
    }

    let slow = victim.join().expect("victim thread clean");
    let envelope = slow.expect("the dripped response still arrives intact");
    assert!(envelope.error.is_none());
    proxy.shutdown();
    server.shutdown();
}

// --- direct-to-server robustness -------------------------------------

#[test]
fn garbage_flood_is_shed_with_envelopes_and_counted() {
    let config = ServeConfig {
        max_line_strikes: 3,
        ..default_test_config()
    };
    let server = start_server(config);
    let plan = FaultPlan::seeded(chaos_seed());

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    for line in 0..3u64 {
        stream
            .write_all(&plan.garbage_line(0, line))
            .expect("write garbage");
    }
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    // Three bad-request envelopes for the garbage lines, then the shed
    // notice, then EOF.
    let envelopes = read_envelopes(&mut reader, 8);
    assert_eq!(
        envelopes.len(),
        4,
        "seed {:#x}: 3 garbage envelopes + 1 shed notice, got {envelopes:?}",
        plan.seed()
    );
    for e in &envelopes {
        assert_eq!(error_code(e), Some("bad-request"), "envelope {e}");
    }
    let mut rest = Vec::new();
    assert_eq!(
        reader.read_to_end(&mut rest).expect("EOF after shed"),
        0,
        "connection must be closed after the strike limit"
    );

    assert_eq!(
        server.state().metrics().malformed_lines_total(),
        3,
        "every garbage line counted"
    );

    // The server is unharmed: a clean client still gets answers.
    let mut clean = Client::connect(server.local_addr()).expect("clean connect");
    clean.call_ok(&Request::Ping).expect("ping after the flood");
    server.shutdown();
}

#[test]
fn oversize_line_rejected_but_connection_survives() {
    let config = ServeConfig {
        max_line_bytes: 256,
        ..default_test_config()
    };
    let server = start_server(config);

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let huge = format!("{}\n", "x".repeat(1024));
    stream
        .write_all(huge.as_bytes())
        .expect("write oversize line");
    let ping = Request::Ping.to_json(7).to_string();
    stream
        .write_all(format!("{ping}\n").as_bytes())
        .expect("write valid request");

    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let envelopes = read_envelopes(&mut reader, 2);
    assert_eq!(
        envelopes.len(),
        2,
        "rejection then answer, got {envelopes:?}"
    );
    assert_eq!(
        error_code(&envelopes[0]),
        Some("line-too-large"),
        "oversize line rejected with the proper code: {}",
        envelopes[0]
    );
    assert_eq!(
        envelopes[1].get("id").and_then(Json::as_u64),
        Some(7),
        "the same connection still serves the next valid request"
    );
    assert_eq!(envelopes[1].get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(server.state().metrics().oversize_lines_total(), 1);
    server.shutdown();
}

#[cfg(target_os = "linux")]
#[test]
fn backpressure_sheds_with_overloaded_envelope() {
    use std::os::unix::fs::OpenOptionsExt;

    // One worker, a tiny queue, and a worker deterministically wedged on
    // a FIFO that blocks `snapshot-load` until we write to it — so queue
    // overflow is exact, not a timing accident. `snapshot-load` requires
    // (and is sandboxed to) a durability directory, so the FIFO lives in
    // one and the request names it relative.
    let dir = chaos_dir("wedge");
    let fifo = dir.join("wedge.fifo");
    let status = std::process::Command::new("mkfifo")
        .arg(&fifo)
        .status()
        .expect("mkfifo runs");
    assert!(status.success(), "mkfifo failed");

    let config = ServeConfig {
        workers: 1,
        queue_capacity: 2,
        ..durable_config(&dir)
    };
    let server = start_server(config);

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let wedge = Request::SnapshotLoad {
        path: "wedge.fifo".to_string(),
    };
    stream
        .write_all(format!("{}\n", wedge.to_json(1)).as_bytes())
        .expect("send wedge");

    // A non-blocking write-open of a FIFO fails with ENXIO until some
    // reader holds it open — so the first success proves the worker has
    // dequeued the wedge and is blocked inside `snapshot-load`. Holding
    // this write end open also guarantees the worker unwedges (EOF on
    // drop) even if an assertion below fails, so the test can never
    // deadlock the join in `Server`'s drop.
    const O_NONBLOCK: i32 = 0o4000;
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut wedge_writer = loop {
        match std::fs::OpenOptions::new()
            .write(true)
            .custom_flags(O_NONBLOCK)
            .open(&fifo)
        {
            Ok(f) => break f,
            Err(_) => {
                assert!(Instant::now() < deadline, "worker never opened the FIFO");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    };

    // queue_capacity pings fit; the next 3 must shed immediately.
    let mut batch = String::new();
    for id in 2..=6u64 {
        batch.push_str(&Request::Ping.to_json(id).to_string());
        batch.push('\n');
    }
    stream.write_all(batch.as_bytes()).expect("send burst");

    // The overloaded envelopes are written by the reader thread without
    // touching the wedged worker, so they arrive first.
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let shed = read_envelopes(&mut reader, 3);
    assert_eq!(
        shed.len(),
        3,
        "exactly 3 pings overflow the queue: {shed:?}"
    );
    for e in &shed {
        assert_eq!(error_code(e), Some("overloaded"), "envelope {e}");
    }
    assert_eq!(server.state().metrics().rejected_total(), 3);

    // Unwedge: feeding the FIFO garbage fails the snapshot decode (an
    // internal error envelope) and frees the worker for the queued pings.
    wedge_writer
        .write_all(b"definitely not a snapshot")
        .expect("unwedge");
    drop(wedge_writer);
    let tail = read_envelopes(&mut reader, 3);
    assert_eq!(tail.len(), 3, "wedge answer + 2 queued pings: {tail:?}");
    let mut ids: Vec<u64> = tail
        .iter()
        .map(|e| e.get("id").and_then(Json::as_u64).expect("id"))
        .collect();
    ids.sort_unstable();
    let wedge_answer = tail
        .iter()
        .find(|e| e.get("id").and_then(Json::as_u64) == Some(1))
        .expect("the wedged request is answered");
    assert_eq!(error_code(wedge_answer), Some("internal"));
    assert_eq!(ids.len(), 3, "wedge + both queued pings answered: {ids:?}");
    assert!(ids.contains(&1));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_deadline_sheds_every_request_and_counts_them() {
    let config = ServeConfig {
        deadline: Duration::ZERO,
        ..default_test_config()
    };
    let server = start_server(config);

    // Non-retrying client: every call comes back `deadline-exceeded`.
    let mut plain = Client::connect(server.local_addr()).expect("connect");
    for i in 0..5 {
        let envelope = plain.call(&Request::Ping).expect("transport stays healthy");
        assert_eq!(
            envelope.error.as_ref().map(|(c, _)| c.as_str()),
            Some("deadline-exceeded"),
            "call {i}"
        );
    }
    assert_eq!(server.state().metrics().deadline_expired_total(), 5);

    // Retrying client: deadline-exceeded is retryable, so the budget is
    // spent in full and the caller still sees the server's verdict.
    let mut retrier =
        Client::connect_with(server.local_addr(), retrying_config(chaos_seed())).expect("connect");
    let err = retrier
        .call_ok(&Request::Ping)
        .expect_err("all retries shed");
    assert!(
        matches!(err, ClientError::Server(ref code, _) if code == "deadline-exceeded"),
        "got {err}"
    );
    assert_eq!(
        retrier.retries_spent(),
        4,
        "the full per-call retry allowance was spent"
    );
    assert_eq!(retrier.telemetry().retries_total(), 4);
    server.shutdown();
}

#[test]
fn max_connections_guard_rejects_with_envelope() {
    let config = ServeConfig {
        max_connections: 2,
        ..default_test_config()
    };
    let server = start_server(config);
    let addr = server.local_addr();

    let mut a = Client::connect(addr).expect("first connect");
    let mut b = Client::connect(addr).expect("second connect");
    a.call_ok(&Request::Ping).expect("a pings");
    b.call_ok(&Request::Ping).expect("b pings");

    // The third connection is turned away with a proper envelope + EOF.
    let third = TcpStream::connect(addr).expect("tcp connect still accepted");
    let mut reader = BufReader::new(third);
    let envelopes = read_envelopes(&mut reader, 2);
    assert_eq!(envelopes.len(), 1, "one rejection envelope: {envelopes:?}");
    assert_eq!(error_code(&envelopes[0]), Some("too-many-connections"));
    let mut rest = Vec::new();
    assert_eq!(
        reader.read_to_end(&mut rest).expect("read"),
        0,
        "rejected connection is closed"
    );
    assert_eq!(server.state().metrics().connections_rejected_total(), 1);

    // Capacity frees when a client leaves; a newcomer then gets in.
    drop(a);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Ok(mut c) = Client::connect(addr) {
            if c.call_ok(&Request::Ping).is_ok() {
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "slot never freed after the first client left"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    b.call_ok(&Request::Ping)
        .expect("surviving client unaffected");
    server.shutdown();
}

// --- the seeded sweep -------------------------------------------------

#[test]
fn seeded_fault_sweep_leaves_server_healthy_and_books_balanced() {
    let seed = chaos_seed();
    let plan = FaultPlan::seeded(seed);
    let server = start_server(default_test_config());
    let proxy = FaultProxy::start(server.local_addr(), plan).expect("proxy starts");

    // Walk a window of the seeded schedule: one client per planned
    // connection, each attempting a read through whatever fault its
    // connection draws (retries may land on later connections with their
    // own faults). Individual outcomes depend on the seed; the suite's
    // contract is bounded failure + a healthy server afterwards.
    let schedule = FaultPlan::seeded(seed).schedule(8);
    let mut outcomes = Vec::new();
    for conn in 0..8u64 {
        let mut client = Client::connect_with(proxy.local_addr(), retrying_config(seed ^ conn))
            .unwrap_or_else(|e| panic!("seed {seed:#x}: connect {conn} failed: {e}"));
        let result = client.call(&Request::Isa {
            parent: "country".to_string(),
            child: "India".to_string(),
        });
        outcomes.push((conn, result.is_ok(), client.retries_spent()));
    }
    let succeeded = outcomes.iter().filter(|(_, ok, _)| *ok).count();
    assert!(
        succeeded >= 1,
        "seed {seed:#x}: every client failed despite retries; \
         schedule {schedule:?}, outcomes {outcomes:?}"
    );

    // The server took all of that without degrading: a direct client
    // gets a clean answer and a coherent stats dump.
    let mut direct = Client::connect(server.local_addr()).expect("direct connect");
    let (version, _) = direct
        .call_ok(&Request::Ping)
        .unwrap_or_else(|e| panic!("seed {seed:#x}: server unhealthy after sweep: {e}"));
    assert_eq!(
        version, 0,
        "seed {seed:#x}: reads must not have mutated the store"
    );

    let (_, stats) = direct
        .call_ok(&Request::Stats)
        .unwrap_or_else(|e| panic!("seed {seed:#x}: stats failed: {e}"));
    let serving = stats.get("serve").expect("stats carries the metrics dump");
    let isa_requests = serving
        .get("endpoints")
        .and_then(|e| e.get("isa"))
        .and_then(|e| e.get("requests"))
        .and_then(Json::as_u64)
        .expect("isa requests in dump");
    assert!(
        isa_requests >= succeeded as u64,
        "seed {seed:#x}: {isa_requests} isa requests served < {succeeded} successful calls"
    );

    assert_eq!(
        server.state().metrics().connections_rejected_total(),
        0,
        "seed {seed:#x}: no admission pressure in this sweep"
    );
    proxy.shutdown();
    server.shutdown();
}

// --- durable write path: kill -9, recovery, rebuild -------------------

/// The headline durability contract: an acked `add-evidence` survives an
/// abrupt kill (no drain, no shutdown hook, no final fsync pass) and a
/// restart over the same directory.
#[test]
fn acked_write_survives_abrupt_kill_and_restart() {
    let dir = chaos_dir("kill");
    let server = Server::start(seeded_store(), &durable_config(&dir)).expect("server binds");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let (v, _) = client
        .call_ok(&Request::AddEvidence {
            parent: "country".to_string(),
            child: "Brazil".to_string(),
            count: 7,
        })
        .expect("write acked");
    assert!(v > 0, "ack carries the post-write version");
    drop(client);
    // Abrupt kill: leak the whole server — none of its threads drain,
    // nothing flushes, no checkpoint is written. The acked write now
    // exists on disk only as a WAL record.
    std::mem::forget(server);

    // Restart: a fresh process image (pre-crash seed graph) over the
    // same directory. Recovery must replay the acked write.
    let server2 = Server::start(seeded_store(), &durable_config(&dir)).expect("recovery succeeds");
    let d = server2.state().durability().expect("configured").clone();
    assert_eq!(d.wal_replayed_total(), 1, "the acked write was replayed");
    let mut client2 = Client::connect(server2.local_addr()).expect("reconnect");
    let (_, found) = client2
        .call_ok(&Request::Plausibility {
            parent: "country".to_string(),
            child: "Brazil".to_string(),
        })
        .expect("read after recovery");
    assert_eq!(found.get("found").and_then(Json::as_bool), Some(true));
    assert_eq!(found.get("count").and_then(Json::as_u64), Some(7));
    drop(client2);
    server2.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Replay determinism: two byte-identical crash images (checkpoint +
/// WAL) must recover to byte-identical consolidated checkpoints — the
/// log fully determines the recovered state.
#[test]
fn wal_replay_is_deterministic() {
    let dir_a = chaos_dir("replay-a");
    let server = Server::start(seeded_store(), &durable_config(&dir_a)).expect("server binds");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for (child, count) in [("Brazil", 7u32), ("Russia", 4), ("Atlantis", 1)] {
        client
            .call_ok(&Request::AddEvidence {
                parent: "country".to_string(),
                child: child.to_string(),
                count,
            })
            .expect("write acked");
    }
    drop(client);
    std::mem::forget(server); // crash with all three writes WAL-only

    // Duplicate the crash image byte-for-byte.
    let dir_b = chaos_dir("replay-b");
    for entry in std::fs::read_dir(&dir_a).expect("read dir").flatten() {
        std::fs::copy(entry.path(), dir_b.join(entry.file_name())).expect("copy crash image");
    }

    // Recover both images; recovery consolidates each into exactly one
    // fresh checkpoint (older generations are pruned).
    Server::start(seeded_store(), &durable_config(&dir_a))
        .expect("recover a")
        .shutdown();
    Server::start(seeded_store(), &durable_config(&dir_b))
        .expect("recover b")
        .shutdown();
    let checkpoint = |dir: &Path| -> PathBuf {
        let mut snaps: Vec<PathBuf> = std::fs::read_dir(dir)
            .expect("read dir")
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                name.starts_with("snapshot-") && name.ends_with(".pb")
            })
            .collect();
        assert_eq!(snaps.len(), 1, "recovery leaves one checkpoint: {snaps:?}");
        snaps.pop().unwrap()
    };
    let (path_a, path_b) = (checkpoint(&dir_a), checkpoint(&dir_b));
    assert_eq!(
        path_a.file_name(),
        path_b.file_name(),
        "same generation and write coverage"
    );
    let bytes_a = std::fs::read(&path_a).expect("read a");
    let bytes_b = std::fs::read(&path_b).expect("read b");
    assert!(!bytes_a.is_empty());
    assert_eq!(
        bytes_a, bytes_b,
        "identical logs must recover to byte-identical checkpoints"
    );
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// Seeded xorshift-style mixer so chaos scenarios can derive write
/// streams from `PROBASE_CHAOS_SEED` without a rand dependency.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The newest (highest-generation) checkpoint file in a durability dir.
/// After a rebuild has pruned, exactly one remains.
fn sole_checkpoint(dir: &Path) -> PathBuf {
    let mut snaps: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            name.starts_with("snapshot-") && name.ends_with(".pb")
        })
        .collect();
    assert_eq!(snaps.len(), 1, "pruning leaves one checkpoint: {snaps:?}");
    snaps.pop().unwrap()
}

/// Kill -9 in the middle of incremental maintenance: a server whose
/// background worker is folding the WAL after every few writes is
/// abruptly leaked mid-stream, restarted over the same directory, and
/// fed the rest of the stream. The contract (DESIGN.md §16): every
/// acked write is present after recovery, and the final consolidated
/// checkpoint is **byte-identical** to one from an uninterrupted run of
/// the same stream — the fold cursor and histogram are rebuilt from
/// disk, so a crash can lose no maintenance state that matters.
#[test]
fn crash_mid_incremental_fold_converges_to_uninterrupted_bytes() {
    let seed = chaos_seed();
    let mut s = seed;
    // 10 writes over two parents ("metal" is brand-new) and a small
    // child pool, so the stream mixes new edges with count bumps —
    // both fold paths (insert + histogram shift) get exercised.
    let writes: Vec<(String, String, u32)> = (0..10)
        .map(|_| {
            let r = splitmix(&mut s);
            let parent = if r.is_multiple_of(2) {
                "country"
            } else {
                "metal"
            };
            let child = format!("inc-{}", (r >> 4) % 6);
            let count = ((r >> 8) % 4 + 1) as u32;
            (parent.to_string(), child, count)
        })
        .collect();
    let crash_at = 2 + (splitmix(&mut s) % 7) as usize; // 2..=8 of 10

    // Interrupted run: background folds every 3 writes, crash at a
    // seed-chosen point in the stream.
    let dir_a = chaos_dir("inc-crash-a");
    let mut config = durable_config(&dir_a);
    config
        .durability
        .as_mut()
        .expect("durable config")
        .rebuild_after_writes = 3;
    let server = Server::start(seeded_store(), &config).expect("server binds");
    let d = server.state().durability().expect("configured").clone();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for (parent, child, count) in &writes[..crash_at] {
        client
            .call_ok(&Request::AddEvidence {
                parent: parent.clone(),
                child: child.clone(),
                count: *count,
            })
            .unwrap_or_else(|e| panic!("seed {seed:#x}: pre-crash write failed: {e}"));
    }
    drop(client);
    // Let any in-flight fold/checkpoint cycle commit before a second
    // server opens the same directory — the leaked worker threads keep
    // running in-process, so an overlapping cycle would be two writers
    // on one dir, which a real kill -9 cannot produce. Where the crash
    // lands *between* cycles still varies with the seed via `crash_at`.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let runs = d.rebuild_runs_total();
        std::thread::sleep(Duration::from_millis(80));
        if d.rebuild_runs_total() == runs && d.pending_writes() < 3 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "seed {seed:#x}: rebuild worker never quiesced"
        );
    }
    std::mem::forget(server); // kill -9: no drain, no flush, no checkpoint

    // Recovery over the crash image, then the rest of the stream.
    let server2 = Server::start(seeded_store(), &durable_config(&dir_a))
        .unwrap_or_else(|e| panic!("seed {seed:#x}: recovery failed: {e}"));
    let d2 = server2.state().durability().expect("configured").clone();
    let mut client2 = Client::connect(server2.local_addr()).expect("reconnect");
    for (parent, child, count) in &writes[crash_at..] {
        client2
            .call_ok(&Request::AddEvidence {
                parent: parent.clone(),
                child: child.clone(),
                count: *count,
            })
            .unwrap_or_else(|e| panic!("seed {seed:#x}: post-crash write failed: {e}"));
    }
    // Every acked write of the whole stream is present with its full
    // accumulated count — nothing the crash could have eaten.
    let mut expected: std::collections::BTreeMap<(String, String), u64> = Default::default();
    for (parent, child, count) in &writes {
        *expected.entry((parent.clone(), child.clone())).or_default() += u64::from(*count);
    }
    for ((parent, child), total) in &expected {
        let (_, p) = client2
            .call_ok(&Request::Plausibility {
                parent: parent.clone(),
                child: child.clone(),
            })
            .unwrap_or_else(|e| panic!("seed {seed:#x}: read failed: {e}"));
        assert_eq!(
            p.get("found").and_then(Json::as_bool),
            Some(true),
            "seed {seed:#x}: acked edge {parent}->{child} lost"
        );
        assert_eq!(
            p.get("count").and_then(Json::as_u64),
            Some(*total),
            "seed {seed:#x}: {parent}->{child} count drifted"
        );
    }
    d2.rebuild(server2.state().store())
        .unwrap_or_else(|e| panic!("seed {seed:#x}: final rebuild failed: {e}"))
        .expect("no writer racing the final rebuild");
    drop(client2);
    server2.shutdown();
    let bytes_interrupted = std::fs::read(sole_checkpoint(&dir_a)).expect("read checkpoint");

    // Uninterrupted reference: same seed graph, same stream, one
    // process, one explicit consolidation at the end.
    let dir_b = chaos_dir("inc-crash-b");
    let server_b = Server::start(seeded_store(), &durable_config(&dir_b)).expect("server binds");
    let db = server_b.state().durability().expect("configured").clone();
    let mut client_b = Client::connect(server_b.local_addr()).expect("connect");
    for (parent, child, count) in &writes {
        client_b
            .call_ok(&Request::AddEvidence {
                parent: parent.clone(),
                child: child.clone(),
                count: *count,
            })
            .expect("write acked");
    }
    db.rebuild(server_b.state().store())
        .expect("rebuild")
        .expect("committed");
    drop(client_b);
    server_b.shutdown();
    let bytes_reference = std::fs::read(sole_checkpoint(&dir_b)).expect("read checkpoint");

    assert!(!bytes_reference.is_empty());
    assert_eq!(
        bytes_interrupted, bytes_reference,
        "seed {seed:#x}, crash at {crash_at}: interrupted maintenance must \
         converge to the uninterrupted checkpoint bytes"
    );
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// The background rebuild worker hot-swaps a freshly annotated graph
/// while a reader hammers the server — no read ever fails or blocks on
/// the rebuild, and afterwards the new edges carry plausibility scores
/// and the WAL has been checkpointed away.
#[test]
fn background_rebuild_hot_swaps_under_concurrent_reads() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let dir = chaos_dir("rebuild");
    let mut config = durable_config(&dir);
    config
        .durability
        .as_mut()
        .expect("durable config")
        .rebuild_after_writes = 4;
    let server = Server::start(seeded_store(), &config).expect("server binds");
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let stop_reader = stop.clone();
    let reader = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("reader connects");
        let mut answered = 0u64;
        while !stop_reader.load(Ordering::Relaxed) {
            client
                .call_ok(&Request::Isa {
                    parent: "country".to_string(),
                    child: "China".to_string(),
                })
                .expect("reads never fail during a rebuild");
            answered += 1;
        }
        answered
    });

    let mut writer = Client::connect(addr).expect("writer connects");
    for (i, child) in ["Brazil", "Russia", "Mexico", "Kenya"].iter().enumerate() {
        writer
            .call_ok(&Request::AddEvidence {
                parent: "country".to_string(),
                child: child.to_string(),
                count: i as u32 + 1,
            })
            .expect("write acked");
    }

    // Four writes hit the trigger; wait for the worker's cycle.
    let d = server.state().durability().expect("configured").clone();
    let deadline = Instant::now() + Duration::from_secs(10);
    while d.rebuild_runs_total() == 0 {
        assert!(Instant::now() < deadline, "rebuild worker never ran");
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, Ordering::Relaxed);
    let answered = reader.join().expect("reader thread clean");
    assert!(answered > 0, "the reader made progress throughout");

    // The swapped graph carries fresh plausibility for the new edge…
    let (_, p) = writer
        .call_ok(&Request::Plausibility {
            parent: "country".to_string(),
            child: "Brazil".to_string(),
        })
        .expect("read after the hot swap");
    assert_eq!(p.get("found").and_then(Json::as_bool), Some(true));
    assert!(
        p.get("plausibility").and_then(Json::as_f64).unwrap_or(0.0) > 0.0,
        "rebuild annotated the new edge: {p}"
    );
    // …and the cycle checkpointed the writes away and shows in stats.
    assert_eq!(d.pending_writes(), 0, "writes were checkpointed");
    let (_, stats) = writer.call_ok(&Request::Stats).expect("stats");
    let rebuild = stats
        .get("durability")
        .and_then(|s| s.get("rebuild"))
        .expect("durability section in stats");
    assert!(
        rebuild.get("runs").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "stats count the rebuild: {rebuild}"
    );
    drop(writer);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
