//! End-to-end concurrency smoke test: a real in-process server, eight
//! concurrent reader connections, and a writer mutating the store
//! through the wire protocol — asserting the versioned cache never
//! serves a stale response and the server shuts down cleanly.

use probase_serve::{
    json, Client, Direction, DurabilityConfig, Json, Request, ServeConfig, Server, WalSync,
};
use probase_store::{ConceptGraph, SharedStore};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn seeded_store() -> SharedStore {
    let mut g = ConceptGraph::new();
    let country = g.ensure_node("country", 0);
    for (label, count) in [("China", 8u32), ("India", 5), ("Japan", 3)] {
        let n = g.ensure_node(label, 0);
        g.add_evidence(country, n, count);
    }
    let company = g.ensure_node("company", 0);
    for (label, count) in [("Microsoft", 9u32), ("Apple", 6)] {
        let n = g.ensure_node(label, 0);
        g.add_evidence(company, n, count);
    }
    g.rebuild_indexes();
    SharedStore::new(g)
}

fn start_server() -> Server {
    // Always an ephemeral port — a fixed port makes parallel test
    // binaries race for the bind and flake.
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        queue_capacity: 256,
        cache_capacity: 1024,
        cache_shards: 8,
        deadline: Duration::from_secs(5),
        ..ServeConfig::default()
    };
    Server::start(seeded_store(), &config).expect("server binds an ephemeral port")
}

#[test]
fn repeated_identical_queries_hit_the_cache() {
    let server = start_server();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    let req = Request::Typicality {
        term: "country".to_string(),
        direction: Direction::Instances,
        k: 10,
    };
    let (v1, d1) = client.call_ok(&req).expect("first call");
    let hits_before = server.state().metrics().cache_hits_total();
    let (v2, d2) = client.call_ok(&req).expect("second call");
    assert_eq!((v1, &d1), (v2, &d2), "same version, same answer");
    assert!(
        server.state().metrics().cache_hits_total() > hits_before,
        "second identical query must be served from the cache"
    );
    server.shutdown();
}

#[test]
fn concurrent_readers_and_writer_never_see_stale_responses() {
    let server = start_server();
    let addr = server.local_addr();
    const READERS: usize = 8;
    const ITERS: usize = 50;
    const WRITES: u64 = 20;

    let barrier = Arc::new(std::sync::Barrier::new(READERS + 1));
    let mut handles = Vec::new();
    for reader in 0..READERS {
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("reader connects");
            barrier.wait();
            let mut last_version = 0u64;
            for i in 0..ITERS {
                let req = match (reader + i) % 4 {
                    0 => Request::Ping,
                    1 => Request::Typicality {
                        term: "country".to_string(),
                        direction: Direction::Instances,
                        k: 10,
                    },
                    2 => Request::Isa {
                        parent: "company".to_string(),
                        child: "Apple".to_string(),
                    },
                    _ => Request::Conceptualize {
                        terms: vec!["China".to_string(), "India".to_string()],
                        k: 5,
                    },
                };
                let (version, _data) = client.call_ok(&req).expect("read succeeds");
                // The staleness invariant: once this connection has seen
                // version v, no later answer may come from an older graph.
                // A stale cache entry would violate exactly this.
                assert!(
                    version >= last_version,
                    "stale response: saw version {version} after {last_version}"
                );
                last_version = version;
            }
        }));
    }

    let writer = {
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("writer connects");
            barrier.wait();
            let mut last_version = 0u64;
            for n in 0..WRITES {
                let (version, data) = client
                    .call_ok(&Request::AddEvidence {
                        parent: "country".to_string(),
                        child: format!("smoke-{n}"),
                        count: 1,
                    })
                    .expect("write succeeds");
                assert!(version > last_version, "each write must bump the version");
                last_version = version;
                assert!(
                    data.get("count").is_some(),
                    "write ack carries the new edge count"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    for h in handles {
        h.join().expect("reader thread clean");
    }
    writer.join().expect("writer thread clean");

    // After all writes: fresh queries must reflect the final graph (the
    // version in every cache key changed, so nothing stale can surface).
    let mut client = Client::connect(addr).expect("post connect");
    let (version, data) = client
        .call_ok(&Request::Isa {
            parent: "country".to_string(),
            child: format!("smoke-{}", WRITES - 1),
        })
        .expect("post-write isa");
    assert_eq!(version, WRITES, "exactly one bump per write");
    assert_eq!(data.get("isa").and_then(|v| v.as_bool()), Some(true));

    let state = server.state();
    assert_eq!(
        state.metrics().requests_total(),
        (READERS * ITERS) as u64 + WRITES + 1,
        "every request accounted for"
    );
    server.shutdown();
}

#[test]
fn pipelined_requests_are_matched_by_id() {
    // Fire a burst of requests down one raw socket without reading any
    // responses, then drain. With a multi-worker pool the responses may
    // come back in any order; the protocol contract is that each carries
    // the `id` of the request it answers, so a pipelining client can
    // match them up. Odd ids ask `isa`, even ids ping — the payload
    // shape proves each response really belongs to its id.
    let server = start_server();
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");

    const N: u64 = 16;
    let mut batch = String::new();
    for id in 1..=N {
        let req = if id % 2 == 1 {
            Request::Isa {
                parent: "country".to_string(),
                child: "China".to_string(),
            }
        } else {
            Request::Ping
        };
        batch.push_str(&req.to_json(id).to_string());
        batch.push('\n');
    }
    stream.write_all(batch.as_bytes()).expect("write burst");

    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut arrival = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..N {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("read response") > 0,
            "server closed before answering the whole burst"
        );
        let v = json::parse(line.trim()).expect("valid envelope");
        let id = v.get("id").and_then(Json::as_u64).expect("envelope id");
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "pipelined request {id} failed: {line}"
        );
        if id % 2 == 1 {
            assert_eq!(
                v.get("data")
                    .and_then(|d| d.get("isa"))
                    .and_then(Json::as_bool),
                Some(true),
                "response for id {id} must answer the isa request, got {line}"
            );
        }
        assert!(seen.insert(id), "duplicate response for id {id}");
        arrival.push(id);
    }
    assert!(
        (1..=N).all(|id| seen.contains(&id)),
        "every pipelined request answered exactly once (arrival order {arrival:?})"
    );
    server.shutdown();
}

/// Continuous ingestion end-to-end: an `add-evidence` write that
/// introduces a brand-new concept is queryable at ack time (the write
/// path applies it structurally), and after the next background
/// incremental fold — no restart, no full rebuild — the new edge
/// carries a plausibility score, ranks in `typicality`, and shows up
/// in `levels`.
#[test]
fn new_concept_is_served_after_the_next_incremental_fold() {
    let dir = std::env::temp_dir().join(format!("probase-smoke-fold-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 64,
        cache_capacity: 256,
        cache_shards: 4,
        deadline: Duration::from_secs(5),
        durability: Some(DurabilityConfig {
            snapshot_dir: dir.clone(),
            wal_sync: WalSync::Always,
            rebuild_after_writes: 2,
            rebuild_interval: None,
        }),
        ..ServeConfig::default()
    };
    let server = Server::start(seeded_store(), &config).expect("server binds");
    let d = server.state().durability().expect("configured").clone();
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // "vehicle" and both children are brand-new labels.
    for (child, count) in [("hovercraft", 4u32), ("gyrocopter", 2)] {
        client
            .call_ok(&Request::AddEvidence {
                parent: "vehicle".to_string(),
                child: child.to_string(),
                count,
            })
            .expect("write acked");
    }
    // Ack-time visibility: the edge exists before any fold ran.
    let (_, isa) = client
        .call_ok(&Request::Isa {
            parent: "vehicle".to_string(),
            child: "hovercraft".to_string(),
        })
        .expect("isa after ack");
    assert_eq!(isa.get("isa").and_then(Json::as_bool), Some(true));

    // Two writes hit the fold trigger; wait for the worker's cycle and
    // the model refresh that follows it.
    let runs_deadline = Instant::now() + Duration::from_secs(10);
    while d.rebuild_runs_total() == 0 {
        assert!(
            Instant::now() < runs_deadline,
            "incremental fold worker never ran"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let typ_req = Request::Typicality {
        term: "vehicle".to_string(),
        direction: Direction::Instances,
        k: 5,
    };
    let items = loop {
        let (_, t) = client.call_ok(&typ_req).expect("typicality");
        let items: Vec<String> = t
            .get("items")
            .and_then(Json::as_arr)
            .map(|a| {
                a.iter()
                    .filter_map(|i| Some(i.as_arr()?.first()?.as_str()?.to_string()))
                    .collect()
            })
            .unwrap_or_default();
        if !items.is_empty() {
            break items;
        }
        assert!(
            Instant::now() < runs_deadline,
            "model never refreshed after the fold"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        items.contains(&"hovercraft".to_string()),
        "new concept ranks its instances after the fold: {items:?}"
    );

    // The folded edge carries a plausibility score from the refit model.
    let (_, p) = client
        .call_ok(&Request::Plausibility {
            parent: "vehicle".to_string(),
            child: "hovercraft".to_string(),
        })
        .expect("plausibility after fold");
    assert_eq!(p.get("found").and_then(Json::as_bool), Some(true));
    assert!(
        p.get("plausibility").and_then(Json::as_f64).unwrap_or(0.0) > 0.0,
        "fold annotated the new edge: {p}"
    );

    // `levels` sees the new concept too.
    let (_, l) = client
        .call_ok(&Request::Levels {
            term: Some("vehicle".to_string()),
        })
        .expect("levels after fold");
    let senses = l.get("senses").and_then(Json::as_arr).expect("senses");
    assert!(
        !senses.is_empty(),
        "new concept has a level without a restart: {l}"
    );

    // All of that happened in one process: nothing was replayed.
    assert_eq!(d.wal_replayed_total(), 0, "no restart occurred");
    assert!(d.incremental_folds_total() >= 1, "a fold ran");
    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_is_clean_and_stops_accepting() {
    let server = start_server();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    client.call_ok(&Request::Ping).expect("ping");
    server.shutdown();

    // The listener is gone: either the connect fails outright or the
    // accepted-then-closed socket yields no response.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => {
            assert!(
                c.call(&Request::Ping).is_err(),
                "server must not answer after shutdown"
            );
        }
    }
    // The old connection is closed too.
    assert!(client.call(&Request::Ping).is_err());
}
