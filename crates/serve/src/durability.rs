//! Durable write path: evidence WAL, crash recovery, and background
//! rebuild.
//!
//! The paper's taxonomy is persistent — §2's iterative extraction grows
//! Γ across runs, and the serving layer of §5.3 fronts a store that
//! survives restarts. Before this module, `add-evidence` mutated the
//! in-memory [`SharedStore`] only: a crash threw away every acked write.
//! Durability closes that hole with a classic snapshot + write-ahead-log
//! protocol built on [`probase_store::wal`]:
//!
//! * **Logging.** Every `add-evidence` appends a [`WalEntry`] (with a
//!   *global monotone index*) to the current log generation before the
//!   store mutation is acked. The fsync policy is a [`WalSync`] knob:
//!   `Always` makes an ack imply the record is on disk, `EveryN`
//!   amortizes the fsync over batches, `Os` leaves it to the page cache.
//! * **Checkpoints.** Snapshot files are named
//!   `snapshot-<seq>-<upto>.pb`: generation `seq`, covering every write
//!   with index < `upto`. Log files are `wal-<seq>.log`. New checkpoints
//!   are written in the **packed (v2)** zero-copy format
//!   ([`probase_store::packed`]); legacy (v1) checkpoints left by older
//!   builds still decode (the format is sniffed per file).
//! * **Recovery.** On open: load the newest decodable snapshot — a
//!   packed checkpoint is validated and `mmap`ed straight into a
//!   [`GraphHandle::Packed`] with **no per-edge decode**, so restart cost
//!   is page-cache population rather than deserialization (and sibling
//!   shards of one host share those pages); a legacy checkpoint is
//!   decoded the old way — then union the records of *all* log
//!   generations, deduplicate by index, and replay exactly the suffix
//!   the snapshot does not already contain (stopping at a gap). The
//!   first replayed record thaws a packed base into the mutable
//!   representation; a clean restart (empty WAL suffix) never pays that
//!   cost. A crash anywhere between checkpoint persist and log rotation
//!   therefore neither loses nor double-applies a write. Recovery
//!   finishes by writing a fresh checkpoint and rotating to a new log
//!   generation, so the directory is always one snapshot + one active
//!   log plus whatever a crash left behind. `serve.startup.*` metrics
//!   (packed_open / legacy_decode counters, recovery_ms /
//!   snapshot_bytes gauges) record which path ran and what it cost.
//! * **Incremental rebuild.** Acked writes carry raw counts only; the
//!   derived plausibility annotations go stale. The rebuild worker
//!   (triggered after N writes or T seconds — see [`DurabilityConfig`])
//!   treats the WAL as a real-time evidence stream: a **fold cursor**
//!   marks how far the stream has been consumed, and each cycle folds
//!   only the un-consumed suffix — shifting a persistent edge-count
//!   histogram ([`probase_taxonomy::shift_count_histogram`]), refitting
//!   the urns model from that histogram
//!   ([`UrnsModel::fit_histogram`]), and rewriting only the edges whose
//!   plausibility actually changed
//!   ([`probase_prob::annotate_graph_urns_touched`]). Each WAL record is
//!   decoded into the fold exactly once; records an earlier cycle
//!   already consumed are counted as skips, never re-read. A checkpoint
//!   (snapshot encode under the read lock, rotation under the WAL
//!   mutex) then bounds replay. The old path cloned the graph, refit
//!   over every edge count, and re-annotated every edge on every
//!   trigger — O(graph) per cycle instead of O(delta).
//!
//! Lock order everywhere is **store lock → WAL mutex**; the WAL mutex is
//! never held while acquiring a store lock (taking it alone is fine).

use crate::json::Json;
use parking_lot::Mutex;
use probase_obs::{Counter, Gauge, Histogram, Registry};
use probase_prob::{annotate_graph_urns_touched, UrnsModel};
use probase_store::wal::{read_wal, WalEntry, WalOp, WalSync, WalWriter};
use probase_store::{merge_subgraph, remove_labels};
use probase_store::{
    pack, snapshot, sniff_format, ConceptGraph, GraphHandle, NodeId, PackedGraph, SharedStore,
    SnapshotFormat,
};
use probase_taxonomy::{count_histogram, shift_count_histogram};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fs::File;
use std::io::{Read, Write};
use std::path::{Component, Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tunables for the durable write path (`ServeConfig::durability`).
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding checkpoints and log generations. Created on
    /// open; also the sandbox root for `snapshot-load` paths.
    pub snapshot_dir: PathBuf,
    /// When WAL appends reach disk (see [`WalSync`]).
    pub wal_sync: WalSync,
    /// Rebuild after this many acked writes; `0` disables the
    /// write-count trigger.
    pub rebuild_after_writes: u64,
    /// Rebuild when the oldest un-checkpointed write is this old;
    /// `None` disables the timer trigger.
    pub rebuild_interval: Option<Duration>,
}

impl DurabilityConfig {
    /// Defaults for a directory: fsync every ack, rebuild after 1024
    /// writes or once a minute.
    pub fn new(snapshot_dir: impl Into<PathBuf>) -> Self {
        Self {
            snapshot_dir: snapshot_dir.into(),
            wal_sync: WalSync::Always,
            rebuild_after_writes: 1024,
            rebuild_interval: Some(Duration::from_secs(60)),
        }
    }
}

/// Append-side state, guarded by one mutex (acquired *after* the store
/// lock, never before).
#[derive(Debug)]
struct WalInner {
    writer: WalWriter,
    /// Current log generation.
    seq: u64,
    /// Index the next record will carry (global, never reused).
    next_index: u64,
    /// In-memory copy of the current generation's records (plus any
    /// older records the fold cursor has not consumed yet), so the
    /// incremental fold never re-reads a log file.
    mirror: Vec<WalEntry>,
    /// Index of the next record the incremental fold will consume.
    /// Everything below it is already reflected in `hist` and in the
    /// graph's plausibility annotations.
    fold_cursor: u64,
    /// Edge-count histogram of the store's graph (`count → edges`),
    /// maintained by [`shift_count_histogram`] as folds consume the
    /// stream. Sufficient statistic for the urns refit — the model is
    /// refit from here without rescanning the graph.
    hist: BTreeMap<u32, u64>,
    /// Set after an append error: the file may hold a torn record, so
    /// further writes are refused until a restart re-runs recovery.
    poisoned: bool,
}

/// What one incremental fold pass did (see [`Durability::fold_incremental`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FoldReport {
    /// WAL records consumed (the cursor advanced past them).
    pub records: u64,
    /// Mirror records passed over because an earlier fold already
    /// consumed them.
    pub skipped: u64,
    /// Edges whose plausibility changed bitwise under the refit model.
    pub edges_refit: u64,
}

/// The durable write path: owns the WAL, the checkpoint files, and the
/// rebuild bookkeeping. One per server; shared via `Arc` with the
/// router (append path) and the rebuild worker.
#[derive(Debug)]
pub struct Durability {
    dir: PathBuf,
    sync: WalSync,
    rebuild_after_writes: u64,
    rebuild_interval: Option<Duration>,
    wal: Mutex<WalInner>,
    /// Labels this shard imported via component migration, mapped to the
    /// WAL index of the import record — populated both at replay and at
    /// ack time, erased when a later drop drains the label away. The
    /// fleet reconciler uses this to decide which shard won a component
    /// when a crash interrupted a migration between import and drain.
    migrations: Mutex<HashMap<String, u64>>,
    /// Labels a drop record drained *off* this shard, mapped to the
    /// shard that received them — the durable side of the serving
    /// layer's migration tombstones. Re-populated from the WAL at
    /// replay so a restarted shard keeps redirecting stale readers
    /// instead of answering empty.
    dropped: Mutex<HashMap<String, u32>>,
    /// Acked writes not yet covered by a checkpoint.
    pending: AtomicU64,
    last_rebuild: Mutex<Instant>,
    wal_appends: Arc<Counter>,
    wal_syncs: Arc<Counter>,
    wal_replayed: Arc<Counter>,
    wal_rotations: Arc<Counter>,
    wal_append_errors: Arc<Counter>,
    rebuild_runs: Arc<Counter>,
    rebuild_failures: Arc<Counter>,
    rebuild_folded: Arc<Counter>,
    rebuild_snapshots: Arc<Counter>,
    rebuild_skipped: Arc<Counter>,
    rebuild_duration: Arc<Histogram>,
    inc_folds: Arc<Counter>,
    inc_records: Arc<Counter>,
    inc_edges_refit: Arc<Counter>,
    inc_model_refits: Arc<Counter>,
    startup_packed_open: Arc<Counter>,
    startup_legacy_decode: Arc<Counter>,
    startup_recovery_ms: Arc<Gauge>,
    startup_snapshot_bytes: Arc<Gauge>,
}

/// Identify a snapshot file by its magic number without reading the body.
fn sniff_snapshot_file(path: &Path) -> Option<SnapshotFormat> {
    let mut head = [0u8; 4];
    File::open(path).ok()?.read_exact(&mut head).ok()?;
    sniff_format(&head)
}

fn parse_snapshot_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("snapshot-")?.strip_suffix(".pb")?;
    let (seq, upto) = rest.split_once('-')?;
    Some((seq.parse().ok()?, upto.parse().ok()?))
}

fn parse_wal_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// Replay one logged operation onto a graph. The serve write path only
/// ever touches sense 0 for evidence, so replay does too. Migration
/// records re-run their component surgery: an import re-merges the
/// journaled payload, a drop re-removes. Replay is exactly-once by
/// construction (records covered by the checkpoint are never replayed),
/// so the merge cannot double-count. A payload that fails to validate
/// (impossible past the record CRC short of a targeted collision) is
/// skipped.
fn apply_op(g: &mut ConceptGraph, op: &WalOp) {
    match op {
        WalOp::AddEvidence {
            parent,
            child,
            count,
        } => {
            let p = g.ensure_node(parent, 0);
            let c = g.ensure_node(child, 0);
            g.add_evidence(p, c, *count);
        }
        WalOp::ImportComponent { payload, .. } => {
            if let Ok(packed) = PackedGraph::from_vec(payload.clone()) {
                merge_subgraph(g, &packed);
            }
        }
        WalOp::DropComponent { labels, .. } => {
            let set: HashSet<String> = labels.iter().cloned().collect();
            *g = remove_labels(g, &set);
        }
    }
}

/// Write a checkpoint durably: temp file, fsync, rename, fsync the
/// directory. Returns the final path.
fn write_snapshot_file(dir: &Path, seq: u64, upto: u64, bytes: &[u8]) -> Result<PathBuf, String> {
    let tmp = dir.join(format!("snapshot-{seq}-{upto}.pb.tmp"));
    let fin = dir.join(format!("snapshot-{seq}-{upto}.pb"));
    let io = (|| -> std::io::Result<()> {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, &fin)?;
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    })();
    io.map_err(|e| format!("cannot write snapshot {}: {e}", fin.display()))?;
    Ok(fin)
}

/// Best-effort removal of generations older than `keep_seq` (and stray
/// temp files). Only called after a newer checkpoint is durably in
/// place, so losing these files can no longer lose a write.
fn prune(dir: &Path, keep_seq: u64) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = match (parse_snapshot_name(name), parse_wal_name(name)) {
            (Some((seq, _)), _) => seq < keep_seq,
            (_, Some(seq)) => seq < keep_seq,
            _ => name.ends_with(".pb.tmp"),
        };
        if stale {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

impl Durability {
    /// Open (creating if necessary) the durability directory, run crash
    /// recovery, and install the recovered graph into `store`.
    ///
    /// Recovery: newest decodable checkpoint → base graph; union of all
    /// log generations, deduplicated by index, replayed in order from
    /// the checkpoint's coverage up to the first gap. Finishes with a
    /// fresh checkpoint + log rotation so acked state is consolidated.
    pub fn open(
        cfg: &DurabilityConfig,
        store: &SharedStore,
        registry: &Registry,
    ) -> Result<Self, String> {
        let started = Instant::now();
        let dir = cfg.snapshot_dir.clone();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create snapshot dir {}: {e}", dir.display()))?;

        // Scan the directory for checkpoint and log generations.
        let mut snaps: Vec<(u64, u64, PathBuf)> = Vec::new();
        let mut wals: Vec<PathBuf> = Vec::new();
        let mut max_seq = 0u64;
        let entries = std::fs::read_dir(&dir)
            .map_err(|e| format!("cannot read snapshot dir {}: {e}", dir.display()))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some((seq, upto)) = parse_snapshot_name(name) {
                max_seq = max_seq.max(seq);
                snaps.push((seq, upto, entry.path()));
            } else if let Some(seq) = parse_wal_name(name) {
                max_seq = max_seq.max(seq);
                wals.push(entry.path());
            }
        }

        // Newest decodable checkpoint wins; corrupt ones are skipped so
        // a torn checkpoint degrades to replaying a longer log suffix.
        snaps.sort_by_key(|&(seq, upto, _)| std::cmp::Reverse((upto, seq)));
        let mut base: Option<(GraphHandle, u64)> = None;
        for (_, upto, path) in &snaps {
            match sniff_snapshot_file(path) {
                Some(SnapshotFormat::Packed) => {
                    // Zero-copy path: validate and mmap in place. The
                    // node table, CSR adjacency, and string arena are
                    // then served straight from the page cache — no
                    // per-edge decode, and sibling shards on one host
                    // share the cached pages of their region files.
                    if let Ok(p) = PackedGraph::open(path) {
                        base = Some((GraphHandle::Packed(p), *upto));
                        break;
                    }
                }
                Some(SnapshotFormat::Legacy) => {
                    if let Ok(bytes) = std::fs::read(path) {
                        if let Ok(mut g) = snapshot::from_bytes(&bytes[..]) {
                            g.rebuild_indexes();
                            base = Some((GraphHandle::Mutable(g), *upto));
                            break;
                        }
                    }
                }
                None => {}
            }
        }
        let recovered_snapshot = base.is_some();
        let recovered_packed = matches!(base, Some((GraphHandle::Packed(_), _)));
        let (mut handle, upto) = base.unwrap_or_else(|| (store.clone_handle(), 0));

        // Union every log generation's records; dedup + gap-stop below.
        let mut all: Vec<WalEntry> = Vec::new();
        for path in &wals {
            if let Ok(read) = read_wal(path) {
                all.extend(read.entries);
            }
        }
        all.sort_by_key(|e| e.index);
        let mut expected = upto;
        let mut replayed = 0u64;
        let mut migrations: HashMap<String, u64> = HashMap::new();
        let mut dropped: HashMap<String, u32> = HashMap::new();
        for e in &all {
            if e.index < expected {
                continue; // covered by the checkpoint, or a duplicate
            }
            if e.index > expected {
                break; // gap: the log holding this range is gone
            }
            // The first un-covered record thaws a packed base; a clean
            // packed restart (empty suffix) never reaches this line.
            let (g, _) = handle.make_mutable();
            apply_op(g, &e.op);
            match &e.op {
                WalOp::ImportComponent { labels, .. } => {
                    for l in labels {
                        migrations.insert(l.clone(), e.index);
                        dropped.remove(l);
                    }
                }
                WalOp::DropComponent { target, labels } => {
                    for l in labels {
                        migrations.remove(l);
                        dropped.insert(l.clone(), *target);
                    }
                }
                WalOp::AddEvidence { .. } => {}
            }
            expected += 1;
            replayed += 1;
        }

        // Consolidate: one fresh checkpoint + one fresh log generation,
        // in the packed format. For an unreplayed packed base this is a
        // verbatim byte copy of the validated snapshot, not a re-encode.
        let newseq = max_seq + 1;
        let bytes = handle
            .to_packed_bytes()
            .map_err(|e| format!("cannot encode recovery snapshot: {e}"))?;
        write_snapshot_file(&dir, newseq, expected, &bytes)?;
        let wal_path = dir.join(format!("wal-{newseq}.log"));
        let writer = WalWriter::create(&wal_path, newseq, cfg.wal_sync)
            .map_err(|e| format!("cannot create wal {}: {e}", wal_path.display()))?;
        prune(&dir, newseq);

        // Seed the fold state from the recovered graph: the histogram is
        // the graph's current edge counts (a contiguous CSR walk on a
        // packed base), the cursor sits at the end of the replayed
        // stream.
        let hist = count_histogram(&handle);
        let snapshot_bytes = bytes.len();
        if recovered_snapshot || replayed > 0 {
            store.swap_snapshot(handle);
        }

        let d = Self {
            dir,
            sync: cfg.wal_sync,
            rebuild_after_writes: cfg.rebuild_after_writes,
            rebuild_interval: cfg.rebuild_interval,
            wal: Mutex::new(WalInner {
                writer,
                seq: newseq,
                next_index: expected,
                mirror: Vec::new(),
                fold_cursor: expected,
                hist,
                poisoned: false,
            }),
            migrations: Mutex::new(migrations),
            dropped: Mutex::new(dropped),
            pending: AtomicU64::new(0),
            last_rebuild: Mutex::new(Instant::now()),
            wal_appends: registry.counter("serve.wal.appends"),
            wal_syncs: registry.counter("serve.wal.syncs"),
            wal_replayed: registry.counter("serve.wal.replayed"),
            wal_rotations: registry.counter("serve.wal.rotations"),
            wal_append_errors: registry.counter("serve.wal.append_errors"),
            rebuild_runs: registry.counter("serve.rebuild.runs"),
            rebuild_failures: registry.counter("serve.rebuild.failures"),
            rebuild_folded: registry.counter("serve.rebuild.folded_writes"),
            rebuild_snapshots: registry.counter("serve.rebuild.snapshots_written"),
            rebuild_skipped: registry.counter("serve.rebuild.skipped_records"),
            rebuild_duration: registry.histogram("serve.rebuild.duration_us"),
            inc_folds: registry.counter("serve.rebuild.incremental.folds"),
            inc_records: registry.counter("serve.rebuild.incremental.records_folded"),
            inc_edges_refit: registry.counter("serve.rebuild.incremental.edges_refit"),
            inc_model_refits: registry.counter("serve.rebuild.incremental.model_refits"),
            startup_packed_open: registry.counter("serve.startup.packed_open"),
            startup_legacy_decode: registry.counter("serve.startup.legacy_decode"),
            startup_recovery_ms: registry.gauge("serve.startup.recovery_ms"),
            startup_snapshot_bytes: registry.gauge("serve.startup.snapshot_bytes"),
        };
        d.wal_replayed.add(replayed);
        d.wal_rotations.inc();
        d.rebuild_snapshots.inc();
        if recovered_packed {
            d.startup_packed_open.inc();
        } else if recovered_snapshot {
            d.startup_legacy_decode.inc();
        }
        d.startup_recovery_ms
            .set(started.elapsed().as_millis() as i64);
        d.startup_snapshot_bytes.set(snapshot_bytes as i64);
        Ok(d)
    }

    /// The sandbox root for `snapshot-load` and home of the log files.
    pub fn snapshot_dir(&self) -> &Path {
        &self.dir
    }

    /// Resolve a client-supplied `snapshot-load` path inside the
    /// sandbox. Absolute paths and any non-plain component (`..`, `.`,
    /// prefixes) are rejected — the serving layer must not become an
    /// arbitrary-file read oracle.
    pub fn resolve(&self, requested: &str) -> Result<PathBuf, String> {
        let path = Path::new(requested);
        if requested.is_empty() || path.is_absolute() {
            return Err(format!(
                "snapshot path {requested:?} must be relative to the snapshot directory"
            ));
        }
        for component in path.components() {
            match component {
                Component::Normal(_) => {}
                _ => {
                    return Err(format!(
                        "snapshot path {requested:?} escapes the snapshot directory"
                    ))
                }
            }
        }
        Ok(self.dir.join(path))
    }

    /// Append one evidence write to the log. Called by the router
    /// *while holding the store write lock*, before the graph mutation:
    /// an `Err` means nothing was acked and nothing may be applied.
    pub fn append_evidence(&self, parent: &str, child: &str, count: u32) -> Result<(), String> {
        self.append_op(WalOp::AddEvidence {
            parent: parent.to_string(),
            child: child.to_string(),
            count,
        })
        .map(|_| ())
    }

    /// Append any durable operation to the log, returning the WAL index
    /// it was assigned. Same contract as [`Durability::append_evidence`]:
    /// called under the store write lock, before the matching graph
    /// mutation; `Err` means nothing may be applied. Migration records
    /// additionally maintain the imported-labels map the fleet
    /// reconciler consults after a crash.
    pub fn append_op(&self, op: WalOp) -> Result<u64, String> {
        let mut inner = self.wal.lock();
        if inner.poisoned {
            return Err(
                "write-ahead log failed earlier; writes disabled until restart".to_string(),
            );
        }
        let entry = WalEntry {
            index: inner.next_index,
            op,
        };
        match inner.writer.append(&entry) {
            Ok(synced) => {
                let index = entry.index;
                inner.next_index += 1;
                match &entry.op {
                    WalOp::ImportComponent { labels, .. } => {
                        let mut m = self.migrations.lock();
                        let mut dr = self.dropped.lock();
                        for l in labels {
                            m.insert(l.clone(), index);
                            dr.remove(l);
                        }
                    }
                    WalOp::DropComponent { target, labels } => {
                        let mut m = self.migrations.lock();
                        let mut dr = self.dropped.lock();
                        for l in labels {
                            m.remove(l);
                            dr.insert(l.clone(), *target);
                        }
                    }
                    WalOp::AddEvidence { .. } => {}
                }
                inner.mirror.push(entry);
                self.wal_appends.inc();
                if synced {
                    self.wal_syncs.inc();
                }
                self.pending.fetch_add(1, Ordering::Relaxed);
                Ok(index)
            }
            Err(e) => {
                // The file may now hold a torn record; appending past it
                // would corrupt the scan for everything after. Fail
                // stop: recovery on restart truncates the torn tail.
                inner.poisoned = true;
                self.wal_append_errors.inc();
                Err(format!("wal append failed: {e}"))
            }
        }
    }

    /// Whether a rebuild is due (write-count or timer trigger).
    pub fn should_rebuild(&self) -> bool {
        let pending = self.pending.load(Ordering::Relaxed);
        if pending == 0 {
            return false;
        }
        if self.rebuild_after_writes > 0 && pending >= self.rebuild_after_writes {
            return true;
        }
        match self.rebuild_interval {
            Some(interval) => self.last_rebuild.lock().elapsed() >= interval,
            None => false,
        }
    }

    /// Whether any background trigger is configured (the server only
    /// spawns the rebuild worker when one is).
    pub fn has_background_trigger(&self) -> bool {
        self.rebuild_after_writes > 0 || self.rebuild_interval.is_some()
    }

    /// Fold the un-consumed WAL suffix into the live graph, in place:
    /// shift the edge-count histogram by the delta each record added,
    /// refit the urns model from the histogram, and rewrite only the
    /// edges whose plausibility changed bitwise. Advances the fold
    /// cursor so every record is consumed exactly once; records an
    /// earlier pass already consumed are counted as skips, never
    /// re-decoded.
    ///
    /// Runs under the store write lock (readers wait for the O(delta)
    /// shift + O(edges) changed-bits scan, not for a clone or an
    /// encode); a no-op when the cursor is already at the stream head —
    /// then the store version is not bumped and caches stay warm.
    pub fn fold_incremental(&self, store: &SharedStore) -> FoldReport {
        // Cheap emptiness probe off the store lock (taking the WAL mutex
        // alone respects the store → WAL order).
        {
            let inner = self.wal.lock();
            if inner.fold_cursor >= inner.next_index {
                return FoldReport::default();
            }
        }
        store.update(|g| {
            let mut inner = self.wal.lock();
            let cursor = inner.fold_cursor;
            if cursor >= inner.next_index {
                return FoldReport::default(); // raced with another fold
            }
            // The mirror is index-sorted; the prefix below the cursor
            // was folded by an earlier pass and is only retained until
            // the next rotation.
            let start = inner.mirror.partition_point(|e| e.index < cursor);
            let skipped = start as u64;
            // Migration records restructure the graph wholesale (grafts
            // and removals were applied to the store at ack time, not
            // deferred to the fold), so an incremental histogram shift
            // cannot describe them. When the suffix holds one, consume
            // the whole suffix and re-derive the histogram from the live
            // graph instead of shifting — same O(edges) as the refit
            // scan that follows, and bit-identical to a fresh restart.
            let structural = inner.mirror[start..]
                .iter()
                .any(|e| !matches!(e.op, WalOp::AddEvidence { .. }));
            let mut records = 0u64;
            if structural {
                records = inner.mirror[start..].len() as u64;
                inner.hist = count_histogram(&*g);
            } else {
                // Group the suffix by edge so a multi-record burst on one
                // edge shifts its histogram bucket once, by the total
                // delta.
                let mut by_edge: BTreeMap<(String, String), u32> = BTreeMap::new();
                for e in &inner.mirror[start..] {
                    if let WalOp::AddEvidence {
                        parent,
                        child,
                        count,
                    } = &e.op
                    {
                        *by_edge.entry((parent.clone(), child.clone())).or_insert(0) += *count;
                    }
                    records += 1;
                }
                let touched: Vec<((NodeId, NodeId), u32)> = by_edge
                    .iter()
                    .filter_map(|((p, c), &delta)| {
                        let pn = g.find_node(p, 0)?;
                        let cn = g.find_node(c, 0)?;
                        Some(((pn, cn), delta))
                    })
                    .collect();
                shift_count_histogram(g, touched, &mut inner.hist);
            }
            let next = inner.next_index;
            let edges_refit = if inner.hist.values().any(|&w| w > 0) {
                let model = UrnsModel::fit_histogram(&inner.hist, 200);
                self.inc_model_refits.inc();
                annotate_graph_urns_touched(g, &model) as u64
            } else {
                0
            };
            inner.fold_cursor = next;
            self.inc_folds.inc();
            self.inc_records.add(records);
            self.inc_edges_refit.add(edges_refit);
            self.rebuild_skipped.add(skipped);
            FoldReport {
                records,
                skipped,
                edges_refit,
            }
        })
    }

    /// One rebuild cycle: incrementally fold the pending WAL suffix into
    /// the live graph (histogram shift + urns refit + changed-edge
    /// annotation — see [`Durability::fold_incremental`]), then
    /// checkpoint and rotate the log. Returns the number of writes that
    /// raced past the checkpoint capture (carried into the new
    /// generation), or `Ok(None)` when a concurrent `snapshot-load`
    /// superseded the captured state.
    pub fn rebuild(&self, store: &SharedStore) -> Result<Option<u64>, String> {
        let started = Instant::now();
        // Phase A: consume the evidence stream. The graph is annotated
        // in place and the store version bumps, so the serving model
        // refreshes without a snapshot swap.
        self.fold_incremental(store);

        // Phase B: checkpoint. Capture bytes + coverage atomically
        // (store read lock, then the WAL mutex — the canonical order);
        // writers wait for the encode, readers do not. Checkpoints are
        // packed (v2): the next open mmaps them with no per-edge decode.
        let (encoded, upto, cap_seq) = store.read(|g| {
            let inner = self.wal.lock();
            (g.to_packed_bytes(), inner.next_index, inner.seq)
        });
        let bytes = encoded.map_err(|e| {
            self.rebuild_failures.inc();
            format!("cannot encode rebuild snapshot: {e}")
        })?;
        let newseq = cap_seq + 1;
        let tmp = self.dir.join(format!("snapshot-{newseq}-{upto}.pb.tmp"));
        let fin = self.dir.join(format!("snapshot-{newseq}-{upto}.pb"));
        if let Err(e) = std::fs::write(&tmp, &bytes).and_then(|()| File::open(&tmp)?.sync_all()) {
            self.rebuild_failures.inc();
            return Err(format!("cannot write {}: {e}", tmp.display()));
        }

        // Commit: rotate the log under the WAL mutex alone — the fold
        // already applied every record to the graph, so no store lock is
        // needed. The checkpoint rename happens *after* — safe, because
        // until the old generations are pruned the union of old
        // checkpoint + old log + new log still reconstructs every write.
        let raced = {
            let mut inner = self.wal.lock();
            if inner.seq != cap_seq {
                drop(inner);
                let _ = std::fs::remove_file(&tmp);
                return Ok(None); // superseded; the rebase checkpointed for us
            }
            // Records the checkpoint covers but the fold has not
            // consumed yet must stay in the mirror (they still owe a
            // histogram shift); only records past the checkpoint also
            // go into the new log generation.
            let keep_from = inner.fold_cursor.min(upto);
            let mirror: Vec<WalEntry> = inner
                .mirror
                .iter()
                .filter(|e| e.index >= keep_from)
                .cloned()
                .collect();
            let wal_path = self.dir.join(format!("wal-{newseq}.log"));
            let commit = (|| -> Result<WalWriter, String> {
                let mut writer = WalWriter::create(&wal_path, newseq, self.sync)
                    .map_err(|e| format!("cannot rotate wal: {e}"))?;
                for e in mirror.iter().filter(|e| e.index >= upto) {
                    writer
                        .append(e)
                        .map_err(|e2| format!("cannot carry delta into new wal: {e2}"))?;
                }
                writer
                    .sync()
                    .map_err(|e2| format!("cannot sync rotated wal: {e2}"))?;
                Ok(writer)
            })();
            let writer = match commit {
                Ok(w) => w,
                Err(err) => {
                    drop(inner);
                    self.rebuild_failures.inc();
                    let _ = std::fs::remove_file(&tmp);
                    let _ = std::fs::remove_file(&wal_path);
                    return Err(err);
                }
            };
            let raced = mirror.iter().filter(|e| e.index >= upto).count() as u64;
            inner.writer = writer;
            inner.seq = newseq;
            inner.mirror = mirror;
            self.pending.store(0, Ordering::Relaxed);
            raced
        };

        if let Err(e) = std::fs::rename(&tmp, &fin) {
            // The rotation already happened; the write set is still
            // fully recoverable from the previous checkpoint plus both
            // log generations, so just report and skip the prune.
            self.rebuild_failures.inc();
            return Err(format!("cannot publish {}: {e}", fin.display()));
        }
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        prune(&self.dir, newseq);
        *self.last_rebuild.lock() = Instant::now();
        self.rebuild_runs.inc();
        self.rebuild_folded.add(raced);
        self.rebuild_snapshots.inc();
        self.wal_rotations.inc();
        self.rebuild_duration.record_duration(started.elapsed());
        Ok(Some(raced))
    }

    /// Durably replace the whole taxonomy (the `snapshot-load`
    /// endpoint): checkpoint the new graph and rotate to an empty log
    /// *inside* the store write lock, so the ack implies the loaded
    /// state survives a crash and stale log entries can never be
    /// replayed over it. Returns the post-swap store version.
    pub fn rebase(&self, store: &SharedStore, graph: ConceptGraph) -> Result<u64, String> {
        let mut err: Option<String> = None;
        let version = store.swap_snapshot_patched(graph, |g| {
            let mut inner = self.wal.lock();
            if inner.poisoned {
                err = Some("write-ahead log failed earlier; writes disabled".to_string());
                return false;
            }
            let newseq = inner.seq + 1;
            let upto = inner.next_index;
            let bytes = match pack(g) {
                Ok(b) => b,
                Err(e) => {
                    err = Some(format!("cannot encode snapshot: {e}"));
                    return false;
                }
            };
            // Rotate the log before publishing the checkpoint: if the
            // rename below fails, disk still reconstructs the *old*
            // state, matching the store we are about to leave untouched.
            let wal_path = self.dir.join(format!("wal-{newseq}.log"));
            let writer = match WalWriter::create(&wal_path, newseq, self.sync) {
                Ok(w) => w,
                Err(e) => {
                    err = Some(format!("cannot rotate wal: {e}"));
                    return false;
                }
            };
            match write_snapshot_file(&self.dir, newseq, upto, &bytes) {
                Ok(_) => {}
                Err(e) => {
                    err = Some(e);
                    let _ = std::fs::remove_file(&wal_path);
                    return false;
                }
            }
            inner.writer = writer;
            inner.seq = newseq;
            inner.mirror.clear();
            // The loaded graph replaces everything the fold state
            // described: rebuild the histogram from it and park the
            // cursor at the stream head.
            inner.hist = count_histogram(g);
            inner.fold_cursor = inner.next_index;
            self.pending.store(0, Ordering::Relaxed);
            true
        });
        match version {
            Some(v) => {
                // The loaded snapshot supersedes any half-finished
                // migration bookkeeping along with the graph itself.
                self.migrations.lock().clear();
                self.dropped.lock().clear();
                let keep = self.wal.lock().seq;
                prune(&self.dir, keep);
                *self.last_rebuild.lock() = Instant::now();
                self.wal_rotations.inc();
                self.rebuild_snapshots.inc();
                Ok(v)
            }
            None => Err(err.unwrap_or_else(|| "snapshot rebase aborted".to_string())),
        }
    }

    /// Flush batched appends (rotation and shutdown call this so
    /// `WalSync::EveryN` never leaves acked records unsynced at exit).
    pub fn sync_all(&self) {
        let mut inner = self.wal.lock();
        if !inner.poisoned {
            let _ = inner.writer.sync();
        }
    }

    /// Acked writes not yet covered by a checkpoint.
    pub fn pending_writes(&self) -> u64 {
        self.pending.load(Ordering::Relaxed)
    }

    /// Labels this shard imported via component migration that have not
    /// since been drained away, with the WAL index of the import record.
    /// The fleet reconciler treats an entry here as proof this shard
    /// won the component (the importer journals before the drainer
    /// drops, so after a crash between the two, exactly the importing
    /// side still holds a record).
    pub fn imported_labels(&self) -> HashMap<String, u64> {
        self.migrations.lock().clone()
    }

    /// Labels drained off this shard by drop records still present in
    /// the replayable WAL suffix, with the shard that received them.
    /// The serving layer seeds its migration tombstones from this at
    /// startup so redirects survive a restart (until a checkpoint
    /// retires the drop record — by then the routing layer has
    /// converged on the new owner).
    pub fn dropped_labels(&self) -> HashMap<String, u32> {
        self.dropped.lock().clone()
    }

    /// WAL appends so far.
    pub fn wal_appends_total(&self) -> u64 {
        self.wal_appends.get()
    }

    /// WAL fsyncs so far.
    pub fn wal_syncs_total(&self) -> u64 {
        self.wal_syncs.get()
    }

    /// Records replayed by recovery at open.
    pub fn wal_replayed_total(&self) -> u64 {
        self.wal_replayed.get()
    }

    /// Log rotations (open, rebuilds, rebases).
    pub fn wal_rotations_total(&self) -> u64 {
        self.wal_rotations.get()
    }

    /// Failed WAL appends (each one poisons the log until restart).
    pub fn wal_append_errors_total(&self) -> u64 {
        self.wal_append_errors.get()
    }

    /// Completed background rebuilds.
    pub fn rebuild_runs_total(&self) -> u64 {
        self.rebuild_runs.get()
    }

    /// Failed rebuild attempts.
    pub fn rebuild_failures_total(&self) -> u64 {
        self.rebuild_failures.get()
    }

    /// Writes folded into rebuild checkpoints while they were running.
    pub fn rebuild_folded_total(&self) -> u64 {
        self.rebuild_folded.get()
    }

    /// Incremental fold passes that consumed at least the cursor check.
    pub fn incremental_folds_total(&self) -> u64 {
        self.inc_folds.get()
    }

    /// WAL records consumed by incremental folds (each exactly once).
    pub fn incremental_records_total(&self) -> u64 {
        self.inc_records.get()
    }

    /// Already-consumed mirror records passed over by later folds.
    pub fn skipped_records_total(&self) -> u64 {
        self.rebuild_skipped.get()
    }

    /// Checkpoints written (open, rebuilds, rebases).
    pub fn snapshots_written_total(&self) -> u64 {
        self.rebuild_snapshots.get()
    }

    /// Packed (v2) checkpoints opened zero-copy by recovery (0 or 1).
    pub fn packed_opens_total(&self) -> u64 {
        self.startup_packed_open.get()
    }

    /// Legacy (v1) checkpoints decoded edge-by-edge by recovery (0 or 1).
    pub fn legacy_decodes_total(&self) -> u64 {
        self.startup_legacy_decode.get()
    }

    /// Wall-clock milliseconds recovery took at open.
    pub fn recovery_ms(&self) -> i64 {
        self.startup_recovery_ms.get()
    }

    /// Size in bytes of the consolidated checkpoint recovery wrote.
    pub fn startup_snapshot_bytes(&self) -> i64 {
        self.startup_snapshot_bytes.get()
    }

    /// The durability section of the `stats` endpoint dump.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "wal",
                Json::obj(vec![
                    ("appends", Json::num(self.wal_appends.get() as f64)),
                    ("syncs", Json::num(self.wal_syncs.get() as f64)),
                    ("replayed", Json::num(self.wal_replayed.get() as f64)),
                    ("rotations", Json::num(self.wal_rotations.get() as f64)),
                    (
                        "append_errors",
                        Json::num(self.wal_append_errors.get() as f64),
                    ),
                    ("pending", Json::num(self.pending_writes() as f64)),
                ]),
            ),
            (
                "rebuild",
                Json::obj(vec![
                    ("runs", Json::num(self.rebuild_runs.get() as f64)),
                    ("failures", Json::num(self.rebuild_failures.get() as f64)),
                    ("folded_writes", Json::num(self.rebuild_folded.get() as f64)),
                    (
                        "snapshots_written",
                        Json::num(self.rebuild_snapshots.get() as f64),
                    ),
                    (
                        "skipped_records",
                        Json::num(self.rebuild_skipped.get() as f64),
                    ),
                    ("mean_duration_us", Json::num(self.rebuild_duration.mean())),
                ]),
            ),
            (
                "incremental",
                Json::obj(vec![
                    ("folds", Json::num(self.inc_folds.get() as f64)),
                    ("records_folded", Json::num(self.inc_records.get() as f64)),
                    ("edges_refit", Json::num(self.inc_edges_refit.get() as f64)),
                    (
                        "model_refits",
                        Json::num(self.inc_model_refits.get() as f64),
                    ),
                ]),
            ),
            (
                "startup",
                Json::obj(vec![
                    (
                        "packed_open",
                        Json::num(self.startup_packed_open.get() as f64),
                    ),
                    (
                        "legacy_decode",
                        Json::num(self.startup_legacy_decode.get() as f64),
                    ),
                    (
                        "recovery_ms",
                        Json::num(self.startup_recovery_ms.get() as f64),
                    ),
                    (
                        "snapshot_bytes",
                        Json::num(self.startup_snapshot_bytes.get() as f64),
                    ),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("probase-dur-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn seeded_store() -> SharedStore {
        let mut g = ConceptGraph::new();
        let country = g.ensure_node("country", 0);
        for (label, count) in [("China", 8u32), ("India", 5)] {
            let n = g.ensure_node(label, 0);
            g.add_evidence(country, n, count);
        }
        g.rebuild_indexes();
        SharedStore::new(g)
    }

    fn cfg(dir: &Path) -> DurabilityConfig {
        DurabilityConfig {
            snapshot_dir: dir.to_path_buf(),
            wal_sync: WalSync::Always,
            rebuild_after_writes: 0,
            rebuild_interval: None,
        }
    }

    /// Mimic the router's write path: log first, then mutate the store.
    fn write_through(d: &Durability, store: &SharedStore, parent: &str, child: &str, count: u32) {
        d.append_evidence(parent, child, count).expect("append");
        store.update(|g| {
            let p = g.ensure_node(parent, 0);
            let c = g.ensure_node(child, 0);
            g.add_evidence(p, c, count);
        });
    }

    fn edge_count(store: &SharedStore, parent: &str, child: &str) -> Option<u32> {
        store.read(|g| {
            let p = g.find_node(parent, 0)?;
            let c = g.find_node(child, 0)?;
            g.edge(p, c).map(|e| e.count)
        })
    }

    #[test]
    fn fresh_open_checkpoints_the_seed_graph() {
        let dir = tempdir("fresh");
        let store = seeded_store();
        let d = Durability::open(&cfg(&dir), &store, &Registry::new()).unwrap();
        assert_eq!(store.version(), 0, "nothing recovered, no swap");
        assert_eq!(d.wal_replayed_total(), 0);
        assert!(dir.join("snapshot-1-0.pb").exists());
        assert!(dir.join("wal-1.log").exists());
    }

    #[test]
    fn acked_writes_replay_after_reopen() {
        let dir = tempdir("replay");
        let store = seeded_store();
        let d = Durability::open(&cfg(&dir), &store, &Registry::new()).unwrap();
        write_through(&d, &store, "country", "Brazil", 7);
        write_through(&d, &store, "country", "Japan", 2);
        assert_eq!(d.wal_appends_total(), 2);
        assert_eq!(d.pending_writes(), 2);
        drop((d, store)); // no checkpoint — simulates an abrupt exit

        let store2 = seeded_store();
        let d2 = Durability::open(&cfg(&dir), &store2, &Registry::new()).unwrap();
        assert_eq!(d2.wal_replayed_total(), 2);
        assert_eq!(edge_count(&store2, "country", "Brazil"), Some(7));
        assert_eq!(edge_count(&store2, "country", "Japan"), Some(2));
        // Recovery consolidated into generation 2 covering both writes.
        assert!(dir.join("snapshot-2-2.pb").exists());
        assert!(dir.join("wal-2.log").exists());
        assert!(!dir.join("wal-1.log").exists(), "old generation pruned");
    }

    #[test]
    fn snapshot_coverage_is_not_double_applied() {
        let dir = tempdir("dedup");
        // Hand-craft a crash between checkpoint persist and log
        // rotation: the checkpoint covers entries 0 and 1, and the only
        // log generation still holds entries 0..4.
        let mut covered = ConceptGraph::new();
        let a = covered.ensure_node("a", 0);
        let b = covered.ensure_node("b", 0);
        covered.add_evidence(a, b, 2); // entries 0 and 1, one count each
        let bytes = snapshot::to_bytes(&covered).unwrap();
        std::fs::write(dir.join("snapshot-2-2.pb"), &bytes).unwrap();
        let mut w = WalWriter::create(&dir.join("wal-1.log"), 1, WalSync::Always).unwrap();
        for index in 0..4u64 {
            w.append(&WalEntry {
                index,
                op: WalOp::AddEvidence {
                    parent: "a".to_string(),
                    child: "b".to_string(),
                    count: 1,
                },
            })
            .unwrap();
        }
        drop(w);

        let store = SharedStore::new(ConceptGraph::new());
        let d = Durability::open(&cfg(&dir), &store, &Registry::new()).unwrap();
        assert_eq!(d.wal_replayed_total(), 2, "only the uncovered suffix");
        assert_eq!(
            edge_count(&store, "a", "b"),
            Some(4),
            "2 covered + 2 replayed"
        );
    }

    #[test]
    fn a_gap_stops_replay() {
        let dir = tempdir("gap");
        let mut w = WalWriter::create(&dir.join("wal-1.log"), 1, WalSync::Always).unwrap();
        for index in [0u64, 1, 3] {
            w.append(&WalEntry {
                index,
                op: WalOp::AddEvidence {
                    parent: "a".to_string(),
                    child: "b".to_string(),
                    count: 1,
                },
            })
            .unwrap();
        }
        drop(w);
        let store = SharedStore::new(ConceptGraph::new());
        let d = Durability::open(&cfg(&dir), &store, &Registry::new()).unwrap();
        assert_eq!(d.wal_replayed_total(), 2, "stop before the missing index 2");
        assert_eq!(edge_count(&store, "a", "b"), Some(2));
    }

    #[test]
    fn resolve_sandboxes_snapshot_paths() {
        let dir = tempdir("sandbox");
        let store = seeded_store();
        let d = Durability::open(&cfg(&dir), &store, &Registry::new()).unwrap();
        assert_eq!(d.resolve("x.pb").unwrap(), dir.join("x.pb"));
        assert_eq!(d.resolve("sub/x.pb").unwrap(), dir.join("sub/x.pb"));
        assert!(d.resolve("/etc/passwd").is_err());
        assert!(d.resolve("../x.pb").is_err());
        assert!(d.resolve("sub/../../x.pb").is_err());
        assert!(d.resolve("").is_err());
    }

    #[test]
    fn rebuild_checkpoints_annotates_and_rotates() {
        let dir = tempdir("rebuild");
        let store = seeded_store();
        let registry = Registry::new();
        let d = Durability::open(&cfg(&dir), &store, &registry).unwrap();
        write_through(&d, &store, "country", "Brazil", 7);
        write_through(&d, &store, "country", "Japan", 2);
        let v_before = store.version();

        let folded = d.rebuild(&store).expect("rebuild succeeds");
        assert_eq!(folded, Some(0), "no writes landed during the rebuild");
        assert!(store.version() > v_before, "hot swap bumps the version");
        assert_eq!(d.pending_writes(), 0);
        assert_eq!(d.rebuild_runs_total(), 1);
        assert!(dir.join("snapshot-2-2.pb").exists());
        assert!(dir.join("wal-2.log").exists());
        assert!(!dir.join("wal-1.log").exists(), "old generation pruned");
        // The swapped graph carries fresh plausibility annotations.
        let annotated = store.read(|g| {
            let p = g.find_node("country", 0).unwrap();
            let c = g.find_node("Brazil", 0).unwrap();
            g.edge(p, c).unwrap().plausibility
        });
        assert!(annotated > 0.0, "urns model annotated the new edge");

        // The checkpoint alone now reconstructs everything.
        let store2 = seeded_store();
        let d2 = Durability::open(&cfg(&dir), &store2, &Registry::new()).unwrap();
        assert_eq!(d2.wal_replayed_total(), 0, "log was empty after rotation");
        assert_eq!(edge_count(&store2, "country", "Brazil"), Some(7));
    }

    #[test]
    fn rebase_rotates_and_supersedes_old_log() {
        let dir = tempdir("rebase");
        let store = seeded_store();
        let d = Durability::open(&cfg(&dir), &store, &Registry::new()).unwrap();
        write_through(&d, &store, "country", "Brazil", 7);

        let mut fresh = ConceptGraph::new();
        let animal = fresh.ensure_node("animal", 0);
        let cat = fresh.ensure_node("cat", 0);
        fresh.add_evidence(animal, cat, 3);
        fresh.rebuild_indexes();
        let v = d.rebase(&store, fresh).expect("rebase succeeds");
        assert!(v > 0);
        assert_eq!(edge_count(&store, "animal", "cat"), Some(3));
        assert_eq!(edge_count(&store, "country", "Brazil"), None);

        // Reopen: the rebased state is what recovers; the pre-rebase
        // write must NOT leak back in.
        let store2 = SharedStore::new(ConceptGraph::new());
        let d2 = Durability::open(&cfg(&dir), &store2, &Registry::new()).unwrap();
        assert_eq!(d2.wal_replayed_total(), 0);
        assert_eq!(edge_count(&store2, "animal", "cat"), Some(3));
        assert_eq!(edge_count(&store2, "country", "Brazil"), None);
    }

    #[test]
    fn writes_after_rebuild_keep_their_global_indices() {
        let dir = tempdir("monotone");
        let store = seeded_store();
        let d = Durability::open(&cfg(&dir), &store, &Registry::new()).unwrap();
        write_through(&d, &store, "country", "Brazil", 1);
        d.rebuild(&store).unwrap();
        write_through(&d, &store, "country", "Japan", 1);
        drop((d, store));

        // The post-rebuild write sits in generation 2 with index 1; the
        // generation-2 checkpoint covers index < 1. Recovery must apply
        // exactly the one record.
        let store2 = seeded_store();
        let d2 = Durability::open(&cfg(&dir), &store2, &Registry::new()).unwrap();
        assert_eq!(d2.wal_replayed_total(), 1);
        assert_eq!(edge_count(&store2, "country", "Brazil"), Some(1));
        assert_eq!(edge_count(&store2, "country", "Japan"), Some(1));
    }

    #[test]
    fn should_rebuild_honors_both_triggers() {
        let dir = tempdir("triggers");
        let store = seeded_store();
        let mut c = cfg(&dir);
        c.rebuild_after_writes = 2;
        c.rebuild_interval = None;
        let d = Durability::open(&c, &store, &Registry::new()).unwrap();
        assert!(!d.should_rebuild(), "nothing pending");
        write_through(&d, &store, "country", "Brazil", 1);
        assert!(!d.should_rebuild(), "below the write threshold");
        write_through(&d, &store, "country", "Japan", 1);
        assert!(d.should_rebuild(), "write threshold reached");
        d.rebuild(&store).unwrap();
        assert!(!d.should_rebuild(), "pending reset by the rebuild");

        let mut c2 = cfg(&dir);
        c2.rebuild_after_writes = 0;
        c2.rebuild_interval = Some(Duration::ZERO);
        let store2 = seeded_store();
        let d2 = Durability::open(&c2, &store2, &Registry::new()).unwrap();
        assert!(
            !d2.should_rebuild(),
            "timer alone never fires with no writes"
        );
        write_through(&d2, &store2, "country", "Brazil", 1);
        assert!(d2.should_rebuild(), "elapsed timer with pending writes");
    }

    #[test]
    fn fold_cursor_consumes_each_record_once() {
        let dir = tempdir("cursor");
        let store = seeded_store();
        let d = Durability::open(&cfg(&dir), &store, &Registry::new()).unwrap();
        write_through(&d, &store, "country", "Brazil", 7);
        write_through(&d, &store, "country", "Japan", 2);
        write_through(&d, &store, "country", "Brazil", 1);

        let first = d.fold_incremental(&store);
        assert_eq!(first.records, 3, "all three records consumed");
        assert_eq!(first.skipped, 0);
        assert!(first.edges_refit > 0, "stale annotations rewritten");

        // Nothing new: the cheap probe returns without touching the
        // store (no version bump, caches stay warm).
        let v = store.version();
        assert_eq!(d.fold_incremental(&store), FoldReport::default());
        assert_eq!(store.version(), v, "no-op fold must not bump the version");

        // One more write: the mirror still holds the three consumed
        // records (no rotation yet) — they are skipped, not re-folded.
        write_through(&d, &store, "country", "India", 4);
        let second = d.fold_incremental(&store);
        assert_eq!(second.records, 1, "only the new record");
        assert_eq!(second.skipped, 3, "consumed prefix passed over");
        assert_eq!(d.incremental_records_total(), 4);
        assert_eq!(d.skipped_records_total(), 3);
        assert_eq!(d.incremental_folds_total(), 2);
    }

    #[test]
    fn fold_histogram_matches_full_rescan() {
        let dir = tempdir("hist");
        let store = seeded_store();
        let d = Durability::open(&cfg(&dir), &store, &Registry::new()).unwrap();
        // Mix of new edges and repeat bumps on existing edges.
        write_through(&d, &store, "country", "Brazil", 7);
        write_through(&d, &store, "country", "China", 2); // 8 -> 10
        write_through(&d, &store, "country", "Brazil", 1); // 7 -> 8
        write_through(&d, &store, "fruit", "apple", 3);
        d.fold_incremental(&store);
        let maintained = d.wal.lock().hist.clone();
        let rescanned = store.read(count_histogram);
        assert_eq!(maintained, rescanned, "shifted histogram drifted");

        // Rebuild rotates; a later fold over fresh writes still agrees.
        d.rebuild(&store).unwrap();
        write_through(&d, &store, "fruit", "pear", 1);
        d.fold_incremental(&store);
        assert_eq!(d.wal.lock().hist.clone(), store.read(count_histogram));
    }

    #[test]
    fn fold_annotations_match_histogram_model() {
        let dir = tempdir("foldfit");
        let store = seeded_store();
        let d = Durability::open(&cfg(&dir), &store, &Registry::new()).unwrap();
        write_through(&d, &store, "country", "Brazil", 7);
        write_through(&d, &store, "country", "Japan", 2);
        let v_before = store.version();
        d.fold_incremental(&store);
        assert!(
            store.version() > v_before,
            "in-place fold bumps the version"
        );
        let hist = d.wal.lock().hist.clone();
        let model = UrnsModel::fit_histogram(&hist, 200);
        store.read(|g| {
            for (f, t, e) in g.edges() {
                assert_eq!(
                    e.plausibility.to_bits(),
                    model.plausibility(e.count).to_bits(),
                    "edge {}->{} not annotated from the maintained histogram",
                    g.label(f),
                    g.label(t),
                );
            }
        });
        // A second rebuild cycle with nothing pending changes no edges.
        let again = d.fold_incremental(&store);
        assert_eq!(again.edges_refit, 0);
    }

    #[test]
    fn rebuild_keeps_unfolded_records_for_the_next_fold() {
        let dir = tempdir("carry");
        let store = seeded_store();
        let registry = Registry::new();
        let d = Durability::open(&cfg(&dir), &store, &registry).unwrap();
        write_through(&d, &store, "country", "Brazil", 7);
        // rebuild = fold + checkpoint: the record is consumed exactly
        // once even though it is also checkpointed.
        d.rebuild(&store).unwrap();
        assert_eq!(d.incremental_records_total(), 1);
        write_through(&d, &store, "country", "Japan", 2);
        d.rebuild(&store).unwrap();
        assert_eq!(d.incremental_records_total(), 2);
        assert_eq!(d.wal.lock().hist.clone(), store.read(count_histogram));

        // Recovery from the final checkpoint alone sees both writes.
        drop((d, store));
        let store2 = seeded_store();
        let d2 = Durability::open(&cfg(&dir), &store2, &Registry::new()).unwrap();
        assert_eq!(d2.wal_replayed_total(), 0, "log empty after rotation");
        assert_eq!(edge_count(&store2, "country", "Brazil"), Some(7));
        assert_eq!(edge_count(&store2, "country", "Japan"), Some(2));
    }

    /// The acceptance check of the packed-snapshot work: a restart from
    /// a packed checkpoint with an empty WAL must mmap the file and skip
    /// the per-edge decode entirely, observable through the
    /// `serve.startup.*` counters and the installed representation.
    #[test]
    fn packed_checkpoint_recovers_without_per_edge_decode() {
        let dir = tempdir("packedopen");
        let store = seeded_store();
        let d = Durability::open(&cfg(&dir), &store, &Registry::new()).unwrap();
        // Fresh open wrote a packed consolidation checkpoint.
        assert_eq!(d.packed_opens_total(), 0, "nothing recovered yet");
        assert_eq!(d.legacy_decodes_total(), 0);
        assert!(d.startup_snapshot_bytes() > 0, "checkpoint size recorded");
        drop((d, store));

        let store2 = SharedStore::new(ConceptGraph::new());
        let d2 = Durability::open(&cfg(&dir), &store2, &Registry::new()).unwrap();
        assert_eq!(d2.packed_opens_total(), 1, "base opened zero-copy");
        assert_eq!(d2.legacy_decodes_total(), 0, "no per-edge decode ran");
        assert_eq!(d2.wal_replayed_total(), 0);
        assert!(
            store2.is_packed(),
            "the mmap-backed representation is what serves"
        );
        assert!(d2.recovery_ms() >= 0);
        assert!(d2.startup_snapshot_bytes() > 0);
        assert_eq!(edge_count(&store2, "country", "China"), Some(8));
        assert_eq!(edge_count(&store2, "country", "India"), Some(5));
    }

    /// A legacy (v1) checkpoint from an older deployment still recovers
    /// through the edge-by-edge decoder — counted as such — and the
    /// consolidation pass auto-migrates it to the packed format, so the
    /// *next* restart is zero-copy.
    #[test]
    fn legacy_checkpoint_recovers_and_migrates_to_packed() {
        let dir = tempdir("legacymigrate");
        let mut old = ConceptGraph::new();
        let a = old.ensure_node("a", 0);
        let b = old.ensure_node("b", 0);
        old.add_evidence(a, b, 3);
        std::fs::write(
            dir.join("snapshot-1-0.pb"),
            snapshot::to_bytes(&old).unwrap(),
        )
        .unwrap();
        drop(WalWriter::create(&dir.join("wal-1.log"), 1, WalSync::Always).unwrap());

        let store = SharedStore::new(ConceptGraph::new());
        let d = Durability::open(&cfg(&dir), &store, &Registry::new()).unwrap();
        assert_eq!(d.legacy_decodes_total(), 1, "old format decoded");
        assert_eq!(d.packed_opens_total(), 0);
        assert!(!store.is_packed(), "legacy decode installs mutable");
        assert_eq!(edge_count(&store, "a", "b"), Some(3));
        drop((d, store));

        // The consolidation checkpoint was re-encoded packed: the next
        // restart takes the zero-copy path.
        let store2 = SharedStore::new(ConceptGraph::new());
        let d2 = Durability::open(&cfg(&dir), &store2, &Registry::new()).unwrap();
        assert_eq!(d2.packed_opens_total(), 1, "migrated to packed");
        assert_eq!(d2.legacy_decodes_total(), 0);
        assert!(store2.is_packed());
        assert_eq!(edge_count(&store2, "a", "b"), Some(3));
    }

    /// A packed base with a non-empty WAL suffix thaws exactly once and
    /// replays on the mutable representation.
    #[test]
    fn packed_base_with_wal_suffix_thaws_and_replays() {
        let dir = tempdir("thawreplay");
        let store = seeded_store();
        let d = Durability::open(&cfg(&dir), &store, &Registry::new()).unwrap();
        write_through(&d, &store, "country", "Brazil", 7);
        drop((d, store)); // crash before any checkpoint of the write

        let store2 = seeded_store();
        let d2 = Durability::open(&cfg(&dir), &store2, &Registry::new()).unwrap();
        assert_eq!(d2.packed_opens_total(), 1, "base still opened packed");
        assert_eq!(d2.wal_replayed_total(), 1);
        assert!(
            !store2.is_packed(),
            "replay thaws to the mutable representation"
        );
        assert_eq!(edge_count(&store2, "country", "Brazil"), Some(7));
        assert_eq!(edge_count(&store2, "country", "China"), Some(8));
    }
}
