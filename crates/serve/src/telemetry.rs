//! Serving telemetry: the server's view onto the shared
//! [`probase_obs`] registry.
//!
//! Every number the server tracks — per-endpoint request counts and
//! latency histograms, cache hit/miss rates, queue depth, backpressure
//! rejections — is an ordinary [`probase_obs`] metric registered under
//! `serve.*`. That means one registry (and one `--metrics-out` report)
//! covers the pipeline *and* the serving layer when `probase-cli serve`
//! passes the process-global registry in; tests construct servers with
//! isolated registries instead and read exact deltas.
//!
//! [`ServeTelemetry`] pre-resolves every handle at construction so the
//! hot path never touches the registry's name map — recording is a
//! handful of relaxed atomic stores, same cost as the hand-rolled
//! registry this module replaced. The `stats` endpoint dump
//! ([`ServeTelemetry::to_json`]) keeps its original shape.

use crate::json::Json;
use crate::proto::ENDPOINTS;
use probase_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;
use std::time::Duration;

/// Pre-resolved handles for one endpoint.
#[derive(Debug)]
struct EndpointHandles {
    /// Completed requests (including errored ones).
    requests: Arc<Counter>,
    /// Requests that produced an error envelope.
    errors: Arc<Counter>,
    /// End-to-end handler latency in microseconds (queue wait excluded).
    latency: Arc<Histogram>,
}

/// The server's metric handles, all registered in one
/// [`probase_obs::Registry`]. See the module docs.
#[derive(Debug)]
pub struct ServeTelemetry {
    registry: Arc<Registry>,
    endpoints: Vec<EndpointHandles>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    rejected: Arc<Counter>,
    deadline_expired: Arc<Counter>,
    bad_requests: Arc<Counter>,
    malformed_lines: Arc<Counter>,
    oversize_lines: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    connections_open: Arc<Gauge>,
    connections_total: Arc<Counter>,
    connections_rejected: Arc<Counter>,
}

impl Default for ServeTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeTelemetry {
    /// Telemetry backed by a fresh, private registry (what tests want:
    /// exact counter deltas with no cross-server pollution).
    pub fn new() -> Self {
        Self::with_registry(Arc::new(Registry::new()))
    }

    /// Telemetry recording into an existing registry — `probase-cli`
    /// passes [`probase_obs::global`] so endpoint metrics land in the
    /// same `--metrics-out` report as the pipeline stages.
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        let endpoints = ENDPOINTS
            .iter()
            .map(|name| EndpointHandles {
                requests: registry.counter(&format!("serve.{name}.requests")),
                errors: registry.counter(&format!("serve.{name}.errors")),
                latency: registry.histogram(&format!("serve.{name}.latency_us")),
            })
            .collect();
        Self {
            endpoints,
            cache_hits: registry.counter("serve.cache.hits"),
            cache_misses: registry.counter("serve.cache.misses"),
            rejected: registry.counter("serve.queue.rejected"),
            deadline_expired: registry.counter("serve.queue.deadline_expired"),
            bad_requests: registry.counter("serve.bad_requests"),
            malformed_lines: registry.counter("serve.malformed_lines"),
            oversize_lines: registry.counter("serve.oversize_lines"),
            queue_depth: registry.gauge("serve.queue.depth"),
            connections_open: registry.gauge("serve.connections.open"),
            connections_total: registry.counter("serve.connections.total"),
            connections_rejected: registry.counter("serve.connections.rejected"),
            registry,
        }
    }

    /// The backing registry (snapshot it for a full report).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Record a completed request for endpoint `idx`.
    pub fn record_request(&self, idx: usize, latency: Duration, errored: bool) {
        let e = &self.endpoints[idx];
        e.requests.inc();
        if errored {
            e.errors.inc();
        }
        e.latency.record_duration(latency);
    }

    /// Response served from the cache.
    pub fn cache_hit(&self) {
        self.cache_hits.inc();
    }

    /// Response had to be computed.
    pub fn cache_miss(&self) {
        self.cache_misses.inc();
    }

    /// Request rejected because the bounded queue was full.
    pub fn rejected(&self) {
        self.rejected.inc();
    }

    /// Request expired in the queue before a worker picked it up.
    pub fn deadline_expired(&self) {
        self.deadline_expired.inc();
    }

    /// Unparseable line or invalid parameters.
    pub fn bad_request(&self) {
        self.bad_requests.inc();
    }

    /// A line that never became a request: unparseable JSON or invalid
    /// UTF-8 (a strict subset of [`ServeTelemetry::bad_request`], which
    /// also counts well-formed JSON with bad parameters).
    pub fn malformed_line(&self) {
        self.malformed_lines.inc();
    }

    /// A request line exceeded the per-line byte limit and was dropped.
    pub fn oversize_line(&self) {
        self.oversize_lines.inc();
    }

    /// A connection was shed at accept time (connection limit reached).
    pub fn connection_rejected(&self) {
        self.connections_rejected.inc();
    }

    /// Malformed lines so far.
    pub fn malformed_lines_total(&self) -> u64 {
        self.malformed_lines.get()
    }

    /// Oversize lines so far.
    pub fn oversize_lines_total(&self) -> u64 {
        self.oversize_lines.get()
    }

    /// Connections shed at accept time so far.
    pub fn connections_rejected_total(&self) -> u64 {
        self.connections_rejected.get()
    }

    /// Requests shed because the queue was full, so far.
    pub fn rejected_total(&self) -> u64 {
        self.rejected.get()
    }

    /// Requests shed because they expired in the queue, so far.
    pub fn deadline_expired_total(&self) -> u64 {
        self.deadline_expired.get()
    }

    /// Open connections right now (floored at 0).
    pub fn connections_open_now(&self) -> u64 {
        self.connections_open.get().max(0) as u64
    }

    /// A job entered the queue.
    pub fn enqueued(&self) {
        self.queue_depth.inc();
    }

    /// A worker took a job off the queue.
    pub fn dequeued(&self) {
        self.queue_depth.dec();
    }

    /// Current queue depth (floored at 0 — racy reads can transiently
    /// observe inc/dec out of order).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.get().max(0) as u64
    }

    /// A client connected.
    pub fn connection_opened(&self) {
        self.connections_open.inc();
        self.connections_total.inc();
    }

    /// A client disconnected.
    pub fn connection_closed(&self) {
        self.connections_open.dec();
    }

    /// Cache hits so far.
    pub fn cache_hits_total(&self) -> u64 {
        self.cache_hits.get()
    }

    /// Completed requests summed over all endpoints.
    pub fn requests_total(&self) -> u64 {
        self.endpoints.iter().map(|e| e.requests.get()).sum()
    }

    /// Dump the serving metrics as JSON (`cache_entries` is supplied by
    /// the caller because the cache is a sibling object).
    pub fn to_json(&self, cache_entries: usize) -> Json {
        let mut per_endpoint = Vec::new();
        for (name, e) in ENDPOINTS.iter().zip(&self.endpoints) {
            let requests = e.requests.get();
            if requests == 0 {
                continue;
            }
            per_endpoint.push((
                name.to_string(),
                Json::obj(vec![
                    ("requests", Json::num(requests as f64)),
                    ("errors", Json::num(e.errors.get() as f64)),
                    ("p50_us", Json::num(e.latency.quantile(0.50) as f64)),
                    ("p99_us", Json::num(e.latency.quantile(0.99) as f64)),
                    ("p999_us", Json::num(e.latency.quantile(0.999) as f64)),
                    ("max_us", Json::num(e.latency.max() as f64)),
                    (
                        "mean_us",
                        Json::num((e.latency.mean() * 10.0).round() / 10.0),
                    ),
                ]),
            ));
        }
        let hits = self.cache_hits.get();
        let misses = self.cache_misses.get();
        let hit_rate = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        Json::obj(vec![
            ("endpoints", Json::Obj(per_endpoint)),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::num(hits as f64)),
                    ("misses", Json::num(misses as f64)),
                    ("hit_rate", Json::num(hit_rate)),
                    ("entries", Json::num(cache_entries as f64)),
                ]),
            ),
            (
                "queue",
                Json::obj(vec![
                    ("depth", Json::num(self.queue_depth() as f64)),
                    ("rejected", Json::num(self.rejected.get() as f64)),
                    (
                        "deadline_expired",
                        Json::num(self.deadline_expired.get() as f64),
                    ),
                ]),
            ),
            (
                "connections",
                Json::obj(vec![
                    ("open", Json::num(self.connections_open.get().max(0) as f64)),
                    ("total", Json::num(self.connections_total.get() as f64)),
                    (
                        "rejected",
                        Json::num(self.connections_rejected.get() as f64),
                    ),
                ]),
            ),
            ("bad_requests", Json::num(self.bad_requests.get() as f64)),
            (
                "malformed_lines",
                Json::num(self.malformed_lines.get() as f64),
            ),
            (
                "oversize_lines",
                Json::num(self.oversize_lines.get() as f64),
            ),
        ])
    }
}

/// Client-side retry telemetry: counters for retries attempted,
/// reconnects performed, and calls that exhausted their retry budget.
/// Registered as `serve.client.*` so a chaos test (or `probase-loadgen`)
/// that shares one registry with the server gets both sides of every
/// fault in a single snapshot.
#[derive(Debug)]
pub struct ClientTelemetry {
    retries: Arc<Counter>,
    reconnects: Arc<Counter>,
    exhausted: Arc<Counter>,
}

impl Default for ClientTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl ClientTelemetry {
    /// Telemetry backed by a fresh, private registry.
    pub fn new() -> Self {
        Self::with_registry(&Registry::new())
    }

    /// Telemetry recording into an existing registry.
    pub fn with_registry(registry: &Registry) -> Self {
        Self {
            retries: registry.counter("serve.client.retries"),
            reconnects: registry.counter("serve.client.reconnects"),
            exhausted: registry.counter("serve.client.retries_exhausted"),
        }
    }

    /// A request attempt is being retried.
    pub fn retry(&self) {
        self.retries.inc();
    }

    /// The client re-established its connection.
    pub fn reconnect(&self) {
        self.reconnects.inc();
    }

    /// A call gave up after exhausting its retries or budget.
    pub fn exhausted(&self) {
        self.exhausted.inc();
    }

    /// Retries attempted so far.
    pub fn retries_total(&self) -> u64 {
        self.retries.get()
    }

    /// Reconnects performed so far.
    pub fn reconnects_total(&self) -> u64 {
        self.reconnects.get()
    }

    /// Calls that exhausted retries so far.
    pub fn exhausted_total(&self) -> u64 {
        self.exhausted.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_flow_into_dump() {
        let m = ServeTelemetry::new();
        m.record_request(1, Duration::from_micros(5), false); // isa
        m.record_request(1, Duration::from_micros(7), true);
        m.cache_hit();
        m.cache_hit();
        m.cache_miss();
        m.rejected();
        m.deadline_expired();
        m.bad_request();
        m.enqueued();
        m.connection_opened();
        let dump = m.to_json(3);
        let isa = dump
            .get("endpoints")
            .and_then(|e| e.get("isa"))
            .expect("isa present");
        assert_eq!(isa.get("requests").and_then(Json::as_u64), Some(2));
        assert_eq!(isa.get("errors").and_then(Json::as_u64), Some(1));
        assert!(isa.get("p50_us").and_then(Json::as_u64).unwrap() >= 5);
        assert!(isa.get("p99_us").is_some());
        let cache = dump.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(2));
        assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
        assert!((cache.get("hit_rate").and_then(Json::as_f64).unwrap() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(3));
        let queue = dump.get("queue").unwrap();
        assert_eq!(queue.get("depth").and_then(Json::as_u64), Some(1));
        assert_eq!(queue.get("rejected").and_then(Json::as_u64), Some(1));
        assert_eq!(
            queue.get("deadline_expired").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(dump.get("bad_requests").and_then(Json::as_u64), Some(1));
        // Endpoints with zero traffic are omitted from the dump.
        assert!(dump.get("endpoints").unwrap().get("stats").is_none());
        assert_eq!(m.requests_total(), 2);
    }

    #[test]
    fn queue_depth_never_negative() {
        let m = ServeTelemetry::new();
        m.dequeued();
        assert_eq!(m.queue_depth(), 0);
    }

    #[test]
    fn metrics_surface_in_the_registry_snapshot() {
        let m = ServeTelemetry::new();
        m.record_request(1, Duration::from_micros(5), false); // isa
        m.cache_hit();
        let snap = m.registry().snapshot();
        assert_eq!(
            snap.get("counters")
                .and_then(|c| c.get("serve.isa.requests"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            snap.get("counters")
                .and_then(|c| c.get("serve.cache.hits"))
                .and_then(Json::as_u64),
            Some(1)
        );
        let lat = snap
            .get("histograms")
            .and_then(|h| h.get("serve.isa.latency_us"))
            .expect("latency histogram registered");
        assert_eq!(lat.get("count").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn robustness_counters_flow_into_dump() {
        let m = ServeTelemetry::new();
        m.malformed_line();
        m.malformed_line();
        m.oversize_line();
        m.connection_rejected();
        let dump = m.to_json(0);
        assert_eq!(dump.get("malformed_lines").and_then(Json::as_u64), Some(2));
        assert_eq!(dump.get("oversize_lines").and_then(Json::as_u64), Some(1));
        assert_eq!(
            dump.get("connections")
                .and_then(|c| c.get("rejected"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(m.malformed_lines_total(), 2);
        assert_eq!(m.oversize_lines_total(), 1);
        assert_eq!(m.connections_rejected_total(), 1);
    }

    #[test]
    fn client_telemetry_shares_the_registry() {
        let registry = Arc::new(Registry::new());
        let c = ClientTelemetry::with_registry(&registry);
        c.retry();
        c.retry();
        c.reconnect();
        c.exhausted();
        assert_eq!(c.retries_total(), 2);
        assert_eq!(c.reconnects_total(), 1);
        assert_eq!(c.exhausted_total(), 1);
        let snap = registry.snapshot();
        assert_eq!(
            snap.get("counters")
                .and_then(|c| c.get("serve.client.retries"))
                .and_then(Json::as_u64),
            Some(2)
        );
    }

    #[test]
    fn shared_registry_is_observed_by_both_handles() {
        let registry = Arc::new(Registry::new());
        let a = ServeTelemetry::with_registry(registry.clone());
        let b = ServeTelemetry::with_registry(registry);
        a.cache_hit();
        b.cache_hit();
        assert_eq!(a.cache_hits_total(), 2);
        assert_eq!(b.cache_hits_total(), 2);
    }
}
