//! Request dispatch: typed [`Request`]s → JSON payloads over a
//! [`SharedStore`].
//!
//! The router owns three things the worker pool shares:
//!
//! * a **versioned model cache** — `ProbaseModel` (reach + typicality
//!   tables) is derived data; it is rebuilt lazily whenever the store
//!   version moves, and every read request is answered from a model
//!   pinned to one exact version;
//! * the **response cache** ([`ResponseCache`]) keyed on
//!   `(endpoint, args, version)`, so writes invalidate implicitly;
//! * the **telemetry handles** ([`ServeTelemetry`]) recording into a
//!   [`probase_obs::Registry`] — private by default, shared when the
//!   caller wants server metrics in a process-wide report.
//!
//! Reads never take the store's write lock; writes (`add-evidence`,
//! `snapshot-load`) go through [`SharedStore::update_versioned`] and
//! report the post-write version, which is what makes the smoke test's
//! "no stale responses" assertion meaningful: response versions are
//! monotone per connection.

use crate::cache::ResponseCache;
use crate::client::{Client, ClientConfig};
use crate::durability::Durability;
use crate::json::Json;
use crate::proto::{b64_decode, b64_encode, Direction, ErrorCode, LabelKind, Request};
use crate::telemetry::ServeTelemetry;
use parking_lot::{Mutex, RwLock};
use probase_apps::{rewrite_query, Association};
use probase_obs::{Counter, Registry};
use probase_prob::ProbaseModel;
use probase_store::query::ancestors;
use probase_store::wal::WalOp;
use probase_store::{
    component_labels, export_component, merge_subgraph, pack, remove_labels, snapshot,
    sniff_format, ConceptGraph, GraphHandle, GraphStats, LevelMap, NodeId, PackedGraph,
    SharedStore, SnapshotFormat,
};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::Arc;

/// Largest packed component the `export-component` endpoint will put on
/// the wire. Base64 inflates by 4/3 and the request line budget is
/// `ServeConfig::max_line_bytes` (256 KiB by default), so 160 KiB of
/// packed bytes keeps the resulting `import-component` line comfortably
/// under the cap (and well under the WAL's 1 MiB record cap). A
/// component too large to migrate fails the bridge write cleanly; the
/// operator repartitions offline.
pub const MAX_MIGRATION_PAYLOAD: usize = 160 * 1024;

/// A model pinned to the store version it was built from.
struct VersionedModel {
    version: u64,
    model: ProbaseModel,
}

/// Everything a worker needs to answer requests. Shared via `Arc`.
pub struct ServeState {
    store: SharedStore,
    cache: ResponseCache,
    metrics: ServeTelemetry,
    model: RwLock<Arc<VersionedModel>>,
    /// Co-occurrence association for `search-rewrite`. The server fronts
    /// a store, not a corpus, so this is empty unless a future endpoint
    /// feeds it; rewrites then rank purely by typicality.
    assoc: Association,
    /// The durable write path, when the server was started with a
    /// snapshot directory. `None` keeps writes memory-only (and disables
    /// `snapshot-load`, which would otherwise read arbitrary files).
    durability: Option<Arc<Durability>>,
    /// Migration tombstones: labels whose component was drained off this
    /// shard, mapped to the shard that owns them now. Label-keyed reads
    /// on a tombstoned label answer [`ErrorCode::Moved`] with the new
    /// owner in the detail, so a stale routing table redirects instead
    /// of silently serving pre-migration data.
    moved: RwLock<HashMap<String, u32>>,
    /// Write replication to this shard's replica set, when configured.
    replicator: RwLock<Option<Arc<Replicator>>>,
}

/// Ships acked writes to a shard's replicas, synchronously and
/// best-effort: a dead replica costs a reconnect attempt per write (and
/// a `serve.replication.ship_failures` tick), never the primary's ack.
/// Connections are cached per replica and re-dialed once on failure.
pub struct Replicator {
    addrs: Vec<SocketAddr>,
    clients: Mutex<Vec<Option<Client>>>,
    shipped: Arc<Counter>,
    failures: Arc<Counter>,
}

impl Replicator {
    fn new(addrs: Vec<SocketAddr>, registry: &Registry) -> Self {
        let n = addrs.len();
        Self {
            addrs,
            clients: Mutex::new((0..n).map(|_| None).collect()),
            shipped: registry.counter("serve.replication.shipped"),
            failures: registry.counter("serve.replication.ship_failures"),
        }
    }

    /// The replica addresses this shard ships to.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Writes successfully acknowledged by a replica.
    pub fn shipped_total(&self) -> u64 {
        self.shipped.get()
    }

    /// Ship attempts that failed (replica down or rejected the write).
    pub fn failures_total(&self) -> u64 {
        self.failures.get()
    }

    /// Forward one already-acked write to every replica. Holding the
    /// mutex across the calls keeps the ship order equal to the local
    /// ack order for callers that ship immediately after their store
    /// update.
    fn ship(&self, req: &Request) {
        let mut clients = self.clients.lock();
        for (i, addr) in self.addrs.iter().enumerate() {
            let attempt = |slot: &mut Option<Client>| -> bool {
                if slot.is_none() {
                    *slot = Client::connect_with(*addr, ClientConfig::default()).ok();
                }
                let Some(client) = slot.as_mut() else {
                    return false;
                };
                // Default config = one wire attempt, no internal retry.
                match client.call(req) {
                    Ok(env) if env.error.is_none() => true,
                    _ => {
                        *slot = None;
                        false
                    }
                }
            };
            // One retry on a fresh connection: the common failure is a
            // replica restart having closed the cached socket.
            if attempt(&mut clients[i]) || attempt(&mut clients[i]) {
                self.shipped.inc();
            } else {
                self.failures.inc();
            }
        }
    }
}

/// A handler failure to be wrapped in an error envelope.
pub type HandlerError = (ErrorCode, String);

impl ServeState {
    /// Build the state with a private metric registry (tests want exact
    /// counter deltas), eagerly deriving the model at the current
    /// version so the first request does not pay the rebuild.
    pub fn new(store: SharedStore, cache_capacity: usize, cache_shards: usize) -> Self {
        Self::with_registry(
            store,
            cache_capacity,
            cache_shards,
            Arc::new(Registry::new()),
        )
    }

    /// Like [`ServeState::new`] but recording `serve.*` metrics into an
    /// existing registry — `probase-cli serve` passes the process-global
    /// one so endpoint metrics join the pipeline's `--metrics-out` report.
    pub fn with_registry(
        store: SharedStore,
        cache_capacity: usize,
        cache_shards: usize,
        registry: Arc<Registry>,
    ) -> Self {
        Self::with_durability(store, cache_capacity, cache_shards, registry, None)
    }

    /// Like [`ServeState::with_registry`] plus a durable write path:
    /// `add-evidence` then logs before acking and `snapshot-load` is
    /// enabled, sandboxed to the durability directory.
    pub fn with_durability(
        store: SharedStore,
        cache_capacity: usize,
        cache_shards: usize,
        registry: Arc<Registry>,
        durability: Option<Arc<Durability>>,
    ) -> Self {
        let (graph, version) = store.read_versioned(GraphHandle::clone);
        let model = RwLock::new(Arc::new(VersionedModel {
            version,
            model: ProbaseModel::new(graph),
        }));
        // Re-arm migration tombstones from the WAL's surviving drop
        // records, so a restarted shard keeps redirecting stale readers.
        let moved = durability
            .as_ref()
            .map(|d| d.dropped_labels())
            .unwrap_or_default();
        Self {
            store,
            cache: ResponseCache::new(cache_capacity, cache_shards),
            metrics: ServeTelemetry::with_registry(registry),
            model,
            assoc: Association::default(),
            durability,
            moved: RwLock::new(moved),
            replicator: RwLock::new(None),
        }
    }

    /// The underlying store (tests use this to write out-of-band).
    pub fn store(&self) -> &SharedStore {
        &self.store
    }

    /// The durable write path, if one is configured.
    pub fn durability(&self) -> Option<&Arc<Durability>> {
        self.durability.as_ref()
    }

    /// Configure write replication: every acked write is forwarded to
    /// these replicas (best-effort, after the local ack). Counters land
    /// in `registry` as `serve.replication.*`.
    pub fn set_replicas(&self, addrs: Vec<SocketAddr>, registry: &Registry) {
        *self.replicator.write() = Some(Arc::new(Replicator::new(addrs, registry)));
    }

    /// The replica shipper, when replication is configured.
    pub fn replicator(&self) -> Option<Arc<Replicator>> {
        self.replicator.read().clone()
    }

    /// Current migration tombstones: drained label → owning shard.
    pub fn tombstones(&self) -> HashMap<String, u32> {
        self.moved.read().clone()
    }

    /// Forward one acked write to the replica set, if one is configured.
    fn ship_to_replicas(&self, req: &Request) {
        if let Some(r) = self.replicator.read().clone() {
            r.ship(req);
        }
    }

    /// Eagerly re-derive the model at the current store version. The
    /// background rebuild worker calls this right after hot-swapping an
    /// annotated graph so the first post-swap reader does not pay the
    /// model rebuild on the request path.
    pub fn refresh_model(&self) {
        let _ = self.current_model();
    }

    /// The telemetry handles.
    pub fn metrics(&self) -> &ServeTelemetry {
        &self.metrics
    }

    /// Cached entry count (for the stats dump).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The model for the store's *current* version, rebuilding if a
    /// write moved the version since the last rebuild.
    fn current_model(&self) -> Arc<VersionedModel> {
        let current = self.store.version();
        {
            let guard = self.model.read();
            if guard.version == current {
                return guard.clone();
            }
        }
        let mut guard = self.model.write();
        // Double-check: another worker may have rebuilt while we waited,
        // and the version may have moved again — always rebuild to the
        // version captured atomically with the graph clone.
        if guard.version != self.store.version() {
            let (graph, version) = self.store.read_versioned(GraphHandle::clone);
            *guard = Arc::new(VersionedModel {
                version,
                model: ProbaseModel::new(graph),
            });
        }
        guard.clone()
    }

    /// Handle one request. Returns the store version the answer reflects
    /// plus the payload (or an error to wrap in an error envelope).
    pub fn handle(&self, req: &Request) -> (u64, Result<Json, HandlerError>) {
        match req {
            Request::Ping => (
                self.store.version(),
                Ok(Json::obj(vec![("pong", Json::Bool(true))])),
            ),
            Request::AddEvidence {
                parent,
                child,
                count,
            } => self.add_evidence(parent, child, *count),
            Request::SnapshotLoad { path } => self.snapshot_load(path),
            Request::ExportComponent {
                label,
                drain,
                target,
                labels_only,
            } => self.export_component(label, *drain, *target, *labels_only),
            Request::ImportComponent { source, payload } => self.import_component(*source, payload),
            _ => {
                // A label-keyed read on a migrated-away component must
                // redirect, not answer from pre-migration leftovers. The
                // error is never cached, so lifting the tombstone (a
                // later import back) un-blocks the label immediately.
                if let Some((label, shard)) = self.moved_to(req) {
                    return (
                        self.store.version(),
                        Err((
                            ErrorCode::Moved,
                            format!("{label:?} moved to shard {shard}"),
                        )),
                    );
                }
                let vm = self.current_model();
                let key = req.cache_key();
                if let Some(k) = &key {
                    if let Some(hit) = self.cache.get(k, vm.version) {
                        self.metrics.cache_hit();
                        return (vm.version, Ok(hit));
                    }
                    self.metrics.cache_miss();
                }
                let payload = self.answer(&vm.model, req);
                if let (Some(k), Ok(data)) = (key, &payload) {
                    self.cache.insert(k, vm.version, data.clone());
                }
                (vm.version, payload)
            }
        }
    }

    /// Pure read dispatch against a pinned model.
    fn answer(&self, model: &ProbaseModel, req: &Request) -> Result<Json, HandlerError> {
        let g = model.graph();
        match req {
            Request::Isa { parent, child } => Ok(isa(g, parent, child)),
            Request::Typicality { term, direction, k } => {
                let items = match direction {
                    Direction::Instances => model.typical_instances(term, *k),
                    Direction::Concepts => model.typical_concepts(term, *k),
                };
                Ok(Json::obj(vec![("items", ranked(items))]))
            }
            Request::Plausibility { parent, child } => Ok(direct_edge(g, parent, child)),
            Request::Conceptualize { terms, k } => {
                let refs: Vec<&str> = terms.iter().map(String::as_str).collect();
                Ok(Json::obj(vec![(
                    "items",
                    ranked(model.conceptualize(&refs, *k)),
                )]))
            }
            Request::SearchRewrite { query, k } => {
                let rewrites = rewrite_query(model, &self.assoc, query, 4, *k);
                let arr = rewrites
                    .into_iter()
                    .map(|rw| {
                        Json::obj(vec![
                            ("text", Json::str(rw.text)),
                            (
                                "substitutions",
                                Json::Arr(rw.substitutions.into_iter().map(Json::Str).collect()),
                            ),
                            ("score", Json::num(rw.score)),
                        ])
                    })
                    .collect();
                Ok(Json::obj(vec![("rewrites", Json::Arr(arr))]))
            }
            Request::Stats => {
                let s = GraphStats::compute(g);
                let mut pairs = vec![
                    (
                        "graph",
                        Json::obj(vec![
                            ("concepts", Json::num(s.concepts as f64)),
                            ("instances", Json::num(s.instances as f64)),
                            (
                                "concept_subconcept_pairs",
                                Json::num(s.concept_subconcept_pairs as f64),
                            ),
                            (
                                "concept_instance_pairs",
                                Json::num(s.concept_instance_pairs as f64),
                            ),
                            ("avg_children", Json::num(s.avg_children)),
                            ("avg_parents", Json::num(s.avg_parents)),
                            ("avg_level", Json::num(s.avg_level)),
                            ("max_level", Json::num(s.max_level as f64)),
                        ]),
                    ),
                    ("serve", self.metrics.to_json(self.cache.len())),
                ];
                if let Some(d) = &self.durability {
                    pairs.push(("durability", d.to_json()));
                }
                Ok(Json::obj(pairs))
            }
            Request::Levels { term } => Ok(levels(g, term.as_deref())),
            Request::Labels { kind, k } => Ok(labels(g, *kind, *k)),
            // Handled in `handle`; unreachable here.
            Request::Ping
            | Request::AddEvidence { .. }
            | Request::SnapshotLoad { .. }
            | Request::ExportComponent { .. }
            | Request::ImportComponent { .. } => Err((
                ErrorCode::Internal,
                "write endpoint routed as read".to_string(),
            )),
        }
    }

    fn add_evidence(
        &self,
        parent: &str,
        child: &str,
        count: u32,
    ) -> (u64, Result<Json, HandlerError>) {
        if parent == child {
            return (
                self.store.version(),
                Err((
                    ErrorCode::BadRequest,
                    "parent and child must differ".to_string(),
                )),
            );
        }
        let (result, version) = self.store.update_versioned(|g| {
            // Reject cycles while holding the write lock (a cyclic
            // taxonomy would make `isa` answer true in both directions).
            if creates_label_cycle(g, parent, child) {
                return Err((
                    ErrorCode::BadRequest,
                    format!("edge {parent:?} -> {child:?} would create a cycle"),
                ));
            }
            // Log before mutating: an append failure means the write is
            // not durable, so it must not be acked or applied. Still
            // under the store write lock, so replay order == apply order.
            if let Some(d) = &self.durability {
                if let Err(e) = d.append_evidence(parent, child, count) {
                    return Err((ErrorCode::Internal, e));
                }
            }
            let p = g.ensure_node(parent, 0);
            let c = g.ensure_node(child, 0);
            let total = g.add_evidence(p, c, count);
            Ok(Json::obj(vec![
                ("count", Json::num(total as f64)),
                ("nodes", Json::num(g.node_count() as f64)),
            ]))
        });
        if result.is_ok() {
            self.ship_to_replicas(&Request::AddEvidence {
                parent: parent.to_string(),
                child: child.to_string(),
                count,
            });
        }
        (version, result)
    }

    /// Which shard owns `req`'s label, when that label was drained away.
    fn moved_to(&self, req: &Request) -> Option<(String, u32)> {
        let moved = self.moved.read();
        if moved.is_empty() {
            return None;
        }
        let hit = |l: &String| moved.get(l).map(|&s| (l.clone(), s));
        match req {
            Request::Isa { parent, child } | Request::Plausibility { parent, child } => {
                hit(parent).or_else(|| hit(child))
            }
            Request::Typicality { term, .. } => hit(term),
            Request::Levels { term: Some(term) } => hit(term),
            _ => None,
        }
    }

    /// The `export-component` endpoint. Peek mode (`drain: false`) is an
    /// idempotent read: the connected component of `label` as a sorted
    /// label list, its edge count, and — unless `labels_only` — the
    /// packed (v2) subgraph bytes, base64-encoded for the wire. Drain
    /// mode (`drain: true`, `target` required) journals a drop record,
    /// removes the component from the graph, and tombstones every
    /// removed label so stale readers redirect to `target`. An unknown
    /// label is an empty component, not an error — the router probes
    /// both sides of a bridge write with peeks.
    fn export_component(
        &self,
        label: &str,
        drain: bool,
        target: Option<u32>,
        labels_only: bool,
    ) -> (u64, Result<Json, HandlerError>) {
        if drain {
            let Some(target) = target else {
                return (
                    self.store.version(),
                    Err((
                        ErrorCode::BadRequest,
                        "drain requires a target shard".to_string(),
                    )),
                );
            };
            let labels = self.store.read(|g| component_labels(g, label));
            let (version, result) = self.drain_labels(labels, target);
            if result.is_ok() {
                self.ship_to_replicas(&Request::ExportComponent {
                    label: label.to_string(),
                    drain: true,
                    target: Some(target),
                    labels_only: false,
                });
            }
            return (version, result);
        }
        let (result, version) = self.store.read_versioned(|g| {
            let labels = component_labels(g, label);
            let set: HashSet<String> = labels.iter().cloned().collect();
            let sub = export_component(g, &set);
            let edges = sub.edge_count();
            let mut pairs = vec![
                ("labels", Json::Arr(labels.iter().map(Json::str).collect())),
                ("edges", Json::num(edges as f64)),
            ];
            if !labels_only && !labels.is_empty() {
                let bytes = match pack(&sub) {
                    Ok(b) => b,
                    Err(e) => {
                        return Err((
                            ErrorCode::Internal,
                            format!("cannot pack component of {label:?}: {e}"),
                        ))
                    }
                };
                if bytes.len() > MAX_MIGRATION_PAYLOAD {
                    return Err((
                        ErrorCode::Internal,
                        format!(
                            "component of {label:?} is {} bytes packed, over the {} byte \
                             migration cap — repartition offline instead",
                            bytes.len(),
                            MAX_MIGRATION_PAYLOAD
                        ),
                    ));
                }
                pairs.push(("payload", Json::str(b64_encode(&bytes))));
            }
            Ok(Json::obj(pairs))
        });
        (version, result)
    }

    /// Remove `labels` from this shard: journal a drop record (when
    /// durable), rebuild the graph without them, and tombstone each
    /// label → `target`. Shared by the drain path and the fleet
    /// reconciler ([`ServeState::drop_labels`]).
    fn drain_labels(&self, labels: Vec<String>, target: u32) -> (u64, Result<Json, HandlerError>) {
        if labels.is_empty() {
            // Nothing to drain — idempotent success (a crashed retry may
            // re-ask for a component the first attempt already removed).
            return (
                self.store.version(),
                Ok(Json::obj(vec![
                    ("labels", Json::Arr(Vec::new())),
                    ("dropped_edges", Json::num(0.0)),
                    ("target", Json::num(target as f64)),
                ])),
            );
        }
        let set: HashSet<String> = labels.iter().cloned().collect();
        let (result, version) = self.store.update_versioned(|g| {
            // Log before mutating, same contract as add-evidence: an
            // append failure acks nothing and applies nothing.
            if let Some(d) = &self.durability {
                if let Err(e) = d.append_op(WalOp::DropComponent {
                    target,
                    labels: labels.clone(),
                }) {
                    return Err((ErrorCode::Internal, e));
                }
            }
            let before = g.edge_count();
            *g = remove_labels(g, &set);
            Ok(Json::obj(vec![
                ("labels", Json::Arr(labels.iter().map(Json::str).collect())),
                ("dropped_edges", Json::num((before - g.edge_count()) as f64)),
                ("target", Json::num(target as f64)),
            ]))
        });
        if result.is_ok() {
            let mut moved = self.moved.write();
            for l in &labels {
                moved.insert(l.clone(), target);
            }
        }
        (version, result)
    }

    /// Drop `labels` from this shard in favor of `target` — the fleet
    /// reconciler's entry point for healing a crash that left a
    /// component on two shards. Journals and tombstones exactly like a
    /// drain, and ships the drop to replicas.
    pub fn drop_labels(&self, labels: Vec<String>, target: u32) -> Result<(), String> {
        if labels.is_empty() {
            return Ok(());
        }
        let seed = labels[0].clone();
        let (_, result) = self.drain_labels(labels, target);
        match result {
            Ok(_) => {
                self.ship_to_replicas(&Request::ExportComponent {
                    label: seed,
                    drain: true,
                    target: Some(target),
                    labels_only: false,
                });
                Ok(())
            }
            Err((_, detail)) => Err(detail),
        }
    }

    /// The `import-component` endpoint: validate the base64 packed
    /// payload, journal it (when durable — the import record is the
    /// migration's commit point, written *before* the graft so a crash
    /// replays it), and merge the subgraph into this shard's graph.
    /// Tombstones on the imported labels are lifted — the component is
    /// home again.
    fn import_component(&self, source: u32, payload: &str) -> (u64, Result<Json, HandlerError>) {
        let Some(bytes) = b64_decode(payload) else {
            return (
                self.store.version(),
                Err((
                    ErrorCode::BadRequest,
                    "payload is not valid base64".to_string(),
                )),
            );
        };
        let packed = match PackedGraph::from_vec(bytes.clone()) {
            Ok(p) => p,
            Err(e) => {
                return (
                    self.store.version(),
                    Err((
                        ErrorCode::BadRequest,
                        format!("payload is not a packed snapshot: {e}"),
                    )),
                )
            }
        };
        let sub = packed.unpack();
        let labels: Vec<String> = sub
            .nodes()
            .map(|n| sub.label(n).to_string())
            .collect::<BTreeSet<String>>()
            .into_iter()
            .collect();
        let (result, version) = self.store.update_versioned(|g| {
            if let Some(d) = &self.durability {
                if let Err(e) = d.append_op(WalOp::ImportComponent {
                    source,
                    labels: labels.clone(),
                    payload: bytes.clone(),
                }) {
                    return Err((ErrorCode::Internal, e));
                }
            }
            merge_subgraph(g, &sub);
            Ok(Json::obj(vec![
                ("merged_nodes", Json::num(sub.node_count() as f64)),
                ("merged_edges", Json::num(sub.edge_count() as f64)),
                ("nodes", Json::num(g.node_count() as f64)),
            ]))
        });
        if result.is_ok() {
            {
                let mut moved = self.moved.write();
                for l in &labels {
                    moved.remove(l);
                }
            }
            self.ship_to_replicas(&Request::ImportComponent {
                source,
                payload: payload.to_string(),
            });
        }
        (version, result)
    }

    fn snapshot_load(&self, path: &str) -> (u64, Result<Json, HandlerError>) {
        // A replicated shard must not wholesale-replace its graph out
        // from under the ship stream: replicas would silently diverge
        // from the primary on every later write.
        if self.replicator.read().is_some() {
            return (
                self.store.version(),
                Err((
                    ErrorCode::BadRequest,
                    "snapshot-load is disabled on a replicated shard".to_string(),
                )),
            );
        }
        // Without a durability directory there is no sandbox root, and a
        // network endpoint that reads whatever path a client names is an
        // arbitrary-file oracle — so the endpoint is simply off.
        let Some(d) = &self.durability else {
            return (
                self.store.version(),
                Err((
                    ErrorCode::BadRequest,
                    "snapshot-load is disabled: server started without a snapshot directory"
                        .to_string(),
                )),
            );
        };
        let resolved = match d.resolve(path) {
            Ok(p) => p,
            Err(e) => return (self.store.version(), Err((ErrorCode::BadRequest, e))),
        };
        let bytes = match std::fs::read(&resolved) {
            Ok(b) => b,
            Err(e) => {
                return (
                    self.store.version(),
                    Err((ErrorCode::Internal, format!("cannot read {path:?}: {e}"))),
                )
            }
        };
        // Accept either snapshot format: legacy (v1) decodes edge by
        // edge, packed (v2) validates the zero-copy layout and thaws.
        // Both feed the same rebase below, which re-checkpoints in the
        // packed format.
        let graph = match sniff_format(&bytes) {
            Some(SnapshotFormat::Packed) => match PackedGraph::open(&resolved) {
                Ok(p) => p.unpack(),
                Err(e) => {
                    return (
                        self.store.version(),
                        Err((ErrorCode::Internal, format!("cannot decode {path:?}: {e}"))),
                    )
                }
            },
            _ => match snapshot::from_bytes(&bytes[..]) {
                Ok(mut g) => {
                    g.rebuild_indexes();
                    g
                }
                Err(e) => {
                    return (
                        self.store.version(),
                        Err((ErrorCode::Internal, format!("cannot decode {path:?}: {e}"))),
                    )
                }
            },
        };
        let nodes = graph.node_count();
        let edges = graph.edge_count();
        // Rebase: checkpoint the loaded graph and rotate the log inside
        // the swap, so stale pre-load WAL entries can never replay over
        // the loaded state after a crash.
        match d.rebase(&self.store, graph) {
            Ok(version) => (
                version,
                Ok(Json::obj(vec![
                    ("nodes", Json::num(nodes as f64)),
                    ("edges", Json::num(edges as f64)),
                ])),
            ),
            Err(e) => (self.store.version(), Err((ErrorCode::Internal, e))),
        }
    }
}

/// Would adding `parent -> child` create a cycle at the *label* level?
///
/// A node-level ancestor check is not enough once a label has several
/// senses: with `a#0 → b#0` and `b#1 → c#0`, adding `c → a` closes the
/// label cycle a ⊐ b ⊐ c ⊐ a even though no NodeId path does — and the
/// `isa` endpoint, which unions senses, would then answer true in both
/// directions. Walk the label graph upward from `parent`, collapsing
/// every sense of each label reached; reject when `child` shows up.
fn creates_label_cycle(g: &ConceptGraph, parent: &str, child: &str) -> bool {
    let mut seen: HashSet<&str> = HashSet::new();
    let mut stack: Vec<NodeId> = g.senses_of(parent);
    seen.insert(parent);
    while let Some(n) = stack.pop() {
        for (p, _) in g.parents(n) {
            let label = g.label(p);
            if label == child {
                return true;
            }
            if seen.insert(label) {
                stack.extend(g.senses_of(label));
            }
        }
    }
    false
}

fn ranked(items: Vec<(String, f64)>) -> Json {
    Json::Arr(
        items
            .into_iter()
            .map(|(label, score)| Json::Arr(vec![Json::Str(label), Json::num(score)]))
            .collect(),
    )
}

/// Transitive isA over all sense pairs, plus the best direct edge.
fn isa(g: &GraphHandle, parent: &str, child: &str) -> Json {
    let parents: Vec<NodeId> = g.senses_of(parent);
    let children: Vec<NodeId> = g.senses_of(child);
    let mut is_a = false;
    let mut direct = false;
    let mut count = 0u32;
    let mut plausibility = 0.0f64;
    if !parents.is_empty() && !children.is_empty() {
        let parent_set: HashSet<NodeId> = parents.iter().copied().collect();
        for &c in &children {
            if ancestors(g, c).iter().any(|a| parent_set.contains(a)) {
                is_a = true;
                break;
            }
        }
        for &p in &parents {
            for &c in &children {
                if let Some(e) = g.edge(p, c) {
                    direct = true;
                    is_a = true;
                    if e.count > count {
                        count = e.count;
                        plausibility = e.plausibility;
                    }
                }
            }
        }
    }
    Json::obj(vec![
        ("isa", Json::Bool(is_a)),
        ("direct", Json::Bool(direct)),
        ("count", Json::num(count as f64)),
        ("plausibility", Json::num(plausibility)),
    ])
}

/// The best direct edge between any sense pair.
fn direct_edge(g: &GraphHandle, parent: &str, child: &str) -> Json {
    let mut found = false;
    let mut count = 0u32;
    let mut plausibility = 0.0f64;
    for &p in &g.senses_of(parent) {
        for &c in &g.senses_of(child) {
            if let Some(e) = g.edge(p, c) {
                if !found || e.count > count {
                    count = e.count;
                    plausibility = e.plausibility;
                }
                found = true;
            }
        }
    }
    Json::obj(vec![
        ("found", Json::Bool(found)),
        ("count", Json::num(count as f64)),
        ("plausibility", Json::num(plausibility)),
    ])
}

fn levels(g: &GraphHandle, term: Option<&str>) -> Json {
    let map = LevelMap::compute(g);
    match term {
        None => {
            let concepts: Vec<NodeId> = g.concepts().collect();
            let avg = if concepts.is_empty() {
                0.0
            } else {
                concepts.iter().map(|&c| map.level(c) as f64).sum::<f64>() / concepts.len() as f64
            };
            Json::obj(vec![
                ("max_level", Json::num(map.max_level() as f64)),
                ("avg_level", Json::num(avg)),
                ("concepts", Json::num(concepts.len() as f64)),
                (
                    "instances",
                    Json::num((g.node_count() - concepts.len()) as f64),
                ),
            ])
        }
        Some(t) => {
            let senses = g
                .senses_of(t)
                .into_iter()
                .map(|n| {
                    Json::obj(vec![
                        ("sense", Json::num(g.sense(n) as f64)),
                        ("level", Json::num(map.level(n) as f64)),
                        ("is_instance", Json::Bool(g.is_instance(n))),
                    ])
                })
                .collect();
            Json::obj(vec![("term", Json::str(t)), ("senses", Json::Arr(senses))])
        }
    }
}

/// Deduplicated labels in byte order, truncated to `k`. Sorting before
/// truncating (rather than emitting the first `k` in node order) makes
/// the answer independent of insertion history — and therefore
/// shardable: the sorted-merge of per-shard top-`k` slices equals the
/// global top-`k`, which node order can never guarantee.
fn labels(g: &GraphHandle, kind: LabelKind, k: usize) -> Json {
    let mut seen = HashSet::new();
    let mut all: Vec<&str> = Vec::new();
    let nodes: Vec<NodeId> = match kind {
        LabelKind::Concepts => g.concepts().collect(),
        LabelKind::Instances => g.instances().collect(),
    };
    for n in nodes {
        let label = g.label(n);
        if seen.insert(label) {
            all.push(label);
        }
    }
    all.sort_unstable();
    all.truncate(k);
    Json::obj(vec![(
        "labels",
        Json::Arr(all.into_iter().map(Json::str).collect()),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::DurabilityConfig;
    use probase_store::WalSync;
    use std::path::{Path, PathBuf};

    /// country ⊃ {bric country ⊃ {China, India, Brazil, Russia}}, plus USA.
    fn seeded_graph() -> ConceptGraph {
        let mut g = ConceptGraph::new();
        let country = g.ensure_node("country", 0);
        let bric = g.ensure_node("bric country", 0);
        let china = g.ensure_node("China", 0);
        let india = g.ensure_node("India", 0);
        let brazil = g.ensure_node("Brazil", 0);
        let russia = g.ensure_node("Russia", 0);
        let usa = g.ensure_node("USA", 0);
        g.add_evidence(country, bric, 3);
        g.add_evidence(country, china, 20);
        g.add_evidence(country, india, 15);
        g.add_evidence(country, brazil, 10);
        g.add_evidence(country, usa, 30);
        g.add_evidence(bric, china, 5);
        g.add_evidence(bric, india, 5);
        g.add_evidence(bric, brazil, 5);
        g.add_evidence(bric, russia, 5);
        g
    }

    fn seeded_state() -> ServeState {
        ServeState::new(SharedStore::new(seeded_graph()), 256, 4)
    }

    fn tempdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("probase-router-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A seeded state with the durable write path enabled (no background
    /// triggers — these tests drive everything synchronously).
    fn durable_state(dir: &Path) -> ServeState {
        let store = SharedStore::new(seeded_graph());
        let registry = Arc::new(Registry::new());
        let cfg = DurabilityConfig {
            snapshot_dir: dir.to_path_buf(),
            wal_sync: WalSync::Always,
            rebuild_after_writes: 0,
            rebuild_interval: None,
        };
        let d = Durability::open(&cfg, &store, &registry).expect("durability opens");
        ServeState::with_durability(store, 256, 4, registry, Some(Arc::new(d)))
    }

    fn ok(state: &ServeState, req: Request) -> (u64, Json) {
        let (v, r) = state.handle(&req);
        (v, r.expect("handler succeeds"))
    }

    #[test]
    fn ping_reports_version() {
        let s = seeded_state();
        let (v, data) = ok(&s, Request::Ping);
        assert_eq!(v, 0);
        assert_eq!(data.get("pong").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn isa_direct_and_transitive() {
        let s = seeded_state();
        let (_, d) = ok(
            &s,
            Request::Isa {
                parent: "country".into(),
                child: "China".into(),
            },
        );
        assert_eq!(d.get("isa").and_then(Json::as_bool), Some(true));
        assert_eq!(d.get("direct").and_then(Json::as_bool), Some(true));
        assert_eq!(d.get("count").and_then(Json::as_u64), Some(20));
        // Russia is under country only via bric country.
        let (_, d) = ok(
            &s,
            Request::Isa {
                parent: "country".into(),
                child: "Russia".into(),
            },
        );
        assert_eq!(d.get("isa").and_then(Json::as_bool), Some(true));
        assert_eq!(d.get("direct").and_then(Json::as_bool), Some(false));
        let (_, d) = ok(
            &s,
            Request::Isa {
                parent: "China".into(),
                child: "country".into(),
            },
        );
        assert_eq!(d.get("isa").and_then(Json::as_bool), Some(false));
        let (_, d) = ok(
            &s,
            Request::Isa {
                parent: "country".into(),
                child: "wombat".into(),
            },
        );
        assert_eq!(d.get("isa").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn typicality_both_directions() {
        let s = seeded_state();
        let (_, d) = ok(
            &s,
            Request::Typicality {
                term: "country".into(),
                direction: Direction::Instances,
                k: 3,
            },
        );
        let items = d.get("items").and_then(Json::as_arr).unwrap();
        assert_eq!(items[0].as_arr().unwrap()[0].as_str(), Some("USA"));
        let (_, d) = ok(
            &s,
            Request::Typicality {
                term: "China".into(),
                direction: Direction::Concepts,
                k: 5,
            },
        );
        let items = d.get("items").and_then(Json::as_arr).unwrap();
        assert!(!items.is_empty());
        // Unknown terms are an empty answer, not a protocol error.
        let (_, d) = ok(
            &s,
            Request::Typicality {
                term: "wombat".into(),
                direction: Direction::Instances,
                k: 5,
            },
        );
        assert_eq!(
            d.get("items").and_then(Json::as_arr).map(<[Json]>::len),
            Some(0)
        );
    }

    #[test]
    fn conceptualize_and_stats_and_levels_and_labels() {
        let s = seeded_state();
        let (_, d) = ok(
            &s,
            Request::Conceptualize {
                terms: vec!["China".into(), "India".into()],
                k: 3,
            },
        );
        assert!(!d.get("items").and_then(Json::as_arr).unwrap().is_empty());

        let (_, d) = ok(&s, Request::Stats);
        assert_eq!(
            d.get("graph")
                .unwrap()
                .get("concepts")
                .and_then(Json::as_u64),
            Some(2)
        );
        assert!(d.get("serve").unwrap().get("cache").is_some());

        let (_, d) = ok(&s, Request::Levels { term: None });
        assert_eq!(d.get("max_level").and_then(Json::as_u64), Some(2));
        let (_, d) = ok(
            &s,
            Request::Levels {
                term: Some("bric country".into()),
            },
        );
        let senses = d.get("senses").and_then(Json::as_arr).unwrap();
        assert_eq!(senses[0].get("level").and_then(Json::as_u64), Some(1));

        let (_, d) = ok(
            &s,
            Request::Labels {
                kind: LabelKind::Concepts,
                k: 10,
            },
        );
        let labels = d.get("labels").and_then(Json::as_arr).unwrap();
        assert_eq!(labels.len(), 2);
        let (_, d) = ok(
            &s,
            Request::Labels {
                kind: LabelKind::Instances,
                k: 3,
            },
        );
        assert_eq!(
            d.get("labels").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn plausibility_direct_edge_only() {
        let s = seeded_state();
        let (_, d) = ok(
            &s,
            Request::Plausibility {
                parent: "country".into(),
                child: "USA".into(),
            },
        );
        assert_eq!(d.get("found").and_then(Json::as_bool), Some(true));
        assert_eq!(d.get("count").and_then(Json::as_u64), Some(30));
        let (_, d) = ok(
            &s,
            Request::Plausibility {
                parent: "country".into(),
                child: "Russia".into(),
            },
        );
        assert_eq!(d.get("found").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn search_rewrite_substitutes_instances() {
        let s = seeded_state();
        let (_, d) = ok(
            &s,
            Request::SearchRewrite {
                query: "country exports".into(),
                k: 4,
            },
        );
        let rewrites = d.get("rewrites").and_then(Json::as_arr).unwrap();
        assert!(!rewrites.is_empty());
        let first = rewrites[0].get("text").and_then(Json::as_str).unwrap();
        assert!(first.contains("exports"), "{first:?}");
        assert!(
            !first.contains("country"),
            "concept should be substituted: {first:?}"
        );
    }

    #[test]
    fn write_bumps_version_and_invalidates() {
        let s = seeded_state();
        let req = Request::Typicality {
            term: "country".into(),
            direction: Direction::Instances,
            k: 10,
        };
        let (v0, first) = ok(&s, req.clone());
        assert_eq!(v0, 0);
        // Second identical request is a cache hit at the same version.
        let hits_before = s.metrics().cache_hits_total();
        let (_, second) = ok(&s, req.clone());
        assert_eq!(first, second);
        assert_eq!(s.metrics().cache_hits_total(), hits_before + 1);

        // A write moves the version; the next read reflects the new edge.
        let (v1, d) = ok(
            &s,
            Request::AddEvidence {
                parent: "country".into(),
                child: "Atlantis".into(),
                count: 999,
            },
        );
        assert_eq!(v1, 1);
        assert_eq!(d.get("nodes").and_then(Json::as_u64), Some(8));
        let (v2, after) = ok(&s, req);
        assert_eq!(v2, 1);
        let items = after.get("items").and_then(Json::as_arr).unwrap();
        assert_eq!(
            items[0].as_arr().unwrap()[0].as_str(),
            Some("Atlantis"),
            "{items:?}"
        );
    }

    #[test]
    fn add_evidence_rejects_cycles_and_self_edges() {
        let s = seeded_state();
        let (_, r) = s.handle(&Request::AddEvidence {
            parent: "China".into(),
            child: "country".into(),
            count: 1,
        });
        let (code, _) = r.expect_err("cycle must be rejected");
        assert_eq!(code, ErrorCode::BadRequest);
        let (_, r) = s.handle(&Request::AddEvidence {
            parent: "country".into(),
            child: "country".into(),
            count: 1,
        });
        assert!(r.is_err());
        // The graph still answers levels (no cycle crept in).
        let (_, r) = s.handle(&Request::Levels { term: None });
        assert!(r.is_ok());
    }

    /// Regression: a node-level ancestor walk misses cycles that only
    /// close once senses are collapsed (a#0 → b#0, b#1 → c#0: no NodeId
    /// path from c up to a, but `isa` would report a ⊐ c *and* c ⊐ a).
    #[test]
    fn add_evidence_rejects_cross_sense_label_cycles() {
        let mut g = ConceptGraph::new();
        let a0 = g.ensure_node("a", 0);
        let b0 = g.ensure_node("b", 0);
        let b1 = g.ensure_node("b", 1);
        let c0 = g.ensure_node("c", 0);
        g.add_evidence(a0, b0, 1);
        g.add_evidence(b1, c0, 1);
        let s = ServeState::new(SharedStore::new(g), 16, 1);
        let (_, r) = s.handle(&Request::AddEvidence {
            parent: "c".into(),
            child: "a".into(),
            count: 1,
        });
        let (code, _) = r.expect_err("label-level cycle must be rejected");
        assert_eq!(code, ErrorCode::BadRequest);
        // The safe direction is still writable.
        let (_, r) = s.handle(&Request::AddEvidence {
            parent: "a".into(),
            child: "c".into(),
            count: 1,
        });
        assert!(r.is_ok(), "forward edge is not a cycle: {r:?}");
    }

    #[test]
    fn snapshot_load_without_durability_is_disabled() {
        let s = seeded_state();
        let (_, r) = s.handle(&Request::SnapshotLoad {
            path: "x.pb".into(),
        });
        let (code, detail) = r.expect_err("endpoint must be off");
        assert_eq!(code, ErrorCode::BadRequest);
        assert!(detail.contains("disabled"), "{detail:?}");
        assert_eq!(
            s.store().version(),
            0,
            "rejected load must not bump the version"
        );
    }

    #[test]
    fn snapshot_load_is_sandboxed_to_the_snapshot_dir() {
        let dir = tempdir("sandbox");
        let s = durable_state(&dir);
        for path in ["/etc/passwd", "../escape.pb", "sub/../../escape.pb"] {
            let (_, r) = s.handle(&Request::SnapshotLoad { path: path.into() });
            let (code, _) = r.expect_err("escaping path must be rejected");
            assert_eq!(code, ErrorCode::BadRequest, "{path:?}");
        }
        // A relative path that stays inside but does not exist is an
        // internal error (the old missing-file contract, sandboxed).
        let (_, r) = s.handle(&Request::SnapshotLoad {
            path: "nonexistent.pb".into(),
        });
        let (code, detail) = r.expect_err("missing file");
        assert_eq!(code, ErrorCode::Internal);
        assert!(detail.contains("cannot read"), "{detail:?}");
    }

    #[test]
    fn snapshot_load_round_trips_through_the_sandbox() {
        let dir = tempdir("load");
        let s = durable_state(&dir);
        let mut g = ConceptGraph::new();
        let animal = g.ensure_node("animal", 0);
        let cat = g.ensure_node("cat", 0);
        g.add_evidence(animal, cat, 4);
        std::fs::write(dir.join("fresh.pb"), snapshot::to_bytes(&g).unwrap()).unwrap();
        let (v, r) = s.handle(&Request::SnapshotLoad {
            path: "fresh.pb".into(),
        });
        let data = r.expect("load succeeds");
        assert!(v > 0, "load bumps the version");
        assert_eq!(data.get("nodes").and_then(Json::as_u64), Some(2));
        let (_, d) = s.handle(&Request::Isa {
            parent: "animal".into(),
            child: "cat".into(),
        });
        let d = d.unwrap();
        assert_eq!(d.get("isa").and_then(Json::as_bool), Some(true));
    }

    fn label_list(d: &Json) -> Vec<String> {
        d.get("labels")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter_map(|l| l.as_str().map(str::to_string))
            .collect()
    }

    /// Satellite regression: `labels` answers in byte order with the
    /// truncation applied *after* the sort, so the answer no longer
    /// depends on node-insertion history (and per-shard top-k slices
    /// merge to the global top-k).
    #[test]
    fn labels_answer_in_byte_order_regardless_of_insertion() {
        let mut g = ConceptGraph::new();
        let zebra = g.ensure_node("zebra", 0);
        let animal = g.ensure_node("animal", 0);
        let mammal = g.ensure_node("mammal", 0);
        let cat = g.ensure_node("cat", 0);
        g.add_evidence(animal, mammal, 1);
        g.add_evidence(mammal, cat, 1);
        g.add_evidence(animal, zebra, 1);
        let s = ServeState::new(SharedStore::new(g), 16, 1);
        let (_, d) = ok(
            &s,
            Request::Labels {
                kind: LabelKind::Concepts,
                k: 10,
            },
        );
        assert_eq!(label_list(&d), ["animal", "mammal"]);
        // "zebra" was inserted first, but "cat" sorts first — the k=1
        // slice must be the sorted prefix, not the insertion prefix.
        let (_, d) = ok(
            &s,
            Request::Labels {
                kind: LabelKind::Instances,
                k: 1,
            },
        );
        assert_eq!(label_list(&d), ["cat"]);
    }

    #[test]
    fn export_drain_import_round_trips_a_component() {
        let s = seeded_state();
        // Peek: idempotent read of the component, labels byte-sorted.
        let (_, d) = ok(
            &s,
            Request::ExportComponent {
                label: "country".into(),
                drain: false,
                target: None,
                labels_only: false,
            },
        );
        assert_eq!(
            label_list(&d),
            [
                "Brazil",
                "China",
                "India",
                "Russia",
                "USA",
                "bric country",
                "country"
            ]
        );
        assert_eq!(d.get("edges").and_then(Json::as_u64), Some(9));
        let payload = d.get("payload").and_then(Json::as_str).unwrap().to_string();
        assert_eq!(s.store().version(), 0, "peek is a read");
        // labels_only skips the packing work.
        let (_, d) = ok(
            &s,
            Request::ExportComponent {
                label: "country".into(),
                drain: false,
                target: None,
                labels_only: true,
            },
        );
        assert!(d.get("payload").is_none());
        // An unknown label is an empty component, not an error.
        let (_, d) = ok(
            &s,
            Request::ExportComponent {
                label: "wombat".into(),
                drain: false,
                target: None,
                labels_only: false,
            },
        );
        assert!(label_list(&d).is_empty());
        assert!(d.get("payload").is_none());

        // Import into a fresh shard: the component comes up whole.
        let dst = ServeState::new(SharedStore::new(ConceptGraph::new()), 16, 1);
        let (_, d) = ok(
            &dst,
            Request::ImportComponent {
                source: 0,
                payload: payload.clone(),
            },
        );
        assert_eq!(d.get("merged_nodes").and_then(Json::as_u64), Some(7));
        assert_eq!(d.get("merged_edges").and_then(Json::as_u64), Some(9));
        let (_, d) = ok(
            &dst,
            Request::Isa {
                parent: "country".into(),
                child: "Russia".into(),
            },
        );
        assert_eq!(d.get("isa").and_then(Json::as_bool), Some(true));

        // Drain the source: the component is gone and label reads
        // redirect to the new owner instead of answering empty.
        let (_, d) = ok(
            &s,
            Request::ExportComponent {
                label: "country".into(),
                drain: true,
                target: Some(2),
                labels_only: false,
            },
        );
        assert_eq!(d.get("dropped_edges").and_then(Json::as_u64), Some(9));
        let redirected = [
            Request::Typicality {
                term: "country".into(),
                direction: Direction::Instances,
                k: 3,
            },
            Request::Isa {
                parent: "country".into(),
                child: "Russia".into(),
            },
            Request::Plausibility {
                parent: "bric country".into(),
                child: "China".into(),
            },
            Request::Levels {
                term: Some("USA".into()),
            },
        ];
        for req in &redirected {
            let (_, r) = s.handle(req);
            let (code, detail) = r.expect_err("tombstoned label must redirect");
            assert_eq!(code, ErrorCode::Moved);
            assert!(detail.ends_with("moved to shard 2"), "{detail:?}");
        }
        // Whole-graph reads still answer (they see the drained graph).
        let (_, r) = s.handle(&Request::Levels { term: None });
        assert!(r.is_ok());
        // A second drain of the same label is an idempotent no-op.
        let (_, d) = ok(
            &s,
            Request::ExportComponent {
                label: "country".into(),
                drain: true,
                target: Some(2),
                labels_only: false,
            },
        );
        assert_eq!(d.get("dropped_edges").and_then(Json::as_u64), Some(0));

        // Importing the component back lifts the tombstones.
        let (_, _) = ok(&s, Request::ImportComponent { source: 2, payload });
        let (_, d) = ok(
            &s,
            Request::Typicality {
                term: "country".into(),
                direction: Direction::Instances,
                k: 3,
            },
        );
        let items = d.get("items").and_then(Json::as_arr).unwrap();
        assert_eq!(items[0].as_arr().unwrap()[0].as_str(), Some("USA"));
        assert!(s.tombstones().is_empty());
    }

    #[test]
    fn import_rejects_garbage_payloads() {
        let s = seeded_state();
        let (_, r) = s.handle(&Request::ImportComponent {
            source: 1,
            payload: "!!!not base64!!!".into(),
        });
        assert_eq!(r.expect_err("bad base64").0, ErrorCode::BadRequest);
        let (_, r) = s.handle(&Request::ImportComponent {
            source: 1,
            payload: crate::proto::b64_encode(b"not a packed snapshot"),
        });
        assert_eq!(r.expect_err("bad snapshot").0, ErrorCode::BadRequest);
        assert_eq!(s.store().version(), 0, "rejected imports apply nothing");
    }

    /// Crash-consistency of the migration records: an import replays
    /// after a restart, a drain replays *and re-arms its tombstones*,
    /// and the durability bookkeeping (`imported_labels`) survives for
    /// the fleet reconciler.
    #[test]
    fn migration_ops_replay_and_reseed_tombstones_after_restart() {
        let dir = tempdir("migrate");
        let payload = {
            let s = durable_state(&dir);
            let mut g = ConceptGraph::new();
            let animal = g.ensure_node("animal", 0);
            let cat = g.ensure_node("cat", 0);
            g.add_evidence(animal, cat, 4);
            g.rebuild_indexes();
            let payload = crate::proto::b64_encode(&pack(&g).unwrap());
            ok(
                &s,
                Request::ImportComponent {
                    source: 3,
                    payload: payload.clone(),
                },
            );
            let imported = s.durability().unwrap().imported_labels();
            assert!(imported.contains_key("animal") && imported.contains_key("cat"));
            payload
            // Drop without a checkpoint: the import must replay.
        };
        {
            let s = durable_state(&dir);
            let (_, d) = ok(
                &s,
                Request::Isa {
                    parent: "animal".into(),
                    child: "cat".into(),
                },
            );
            assert_eq!(d.get("isa").and_then(Json::as_bool), Some(true));
            assert!(
                s.durability()
                    .unwrap()
                    .imported_labels()
                    .contains_key("cat"),
                "import record survives the restart"
            );
            // Drain it away again, then "crash".
            ok(
                &s,
                Request::ExportComponent {
                    label: "cat".into(),
                    drain: true,
                    target: Some(1),
                    labels_only: false,
                },
            );
            let (_, r) = s.handle(&Request::Typicality {
                term: "cat".into(),
                direction: Direction::Concepts,
                k: 3,
            });
            assert_eq!(r.expect_err("drained").0, ErrorCode::Moved);
        }
        {
            let s = durable_state(&dir);
            // The drop replayed: the component is gone and the tombstone
            // is re-armed from the WAL, so stale readers still redirect.
            let (_, r) = s.handle(&Request::Typicality {
                term: "cat".into(),
                direction: Direction::Concepts,
                k: 3,
            });
            let (code, detail) = r.expect_err("tombstone survives restart");
            assert_eq!(code, ErrorCode::Moved);
            assert!(detail.ends_with("moved to shard 1"), "{detail:?}");
            assert!(s.durability().unwrap().imported_labels().is_empty());
            // The original data is untouched.
            let (_, d) = ok(
                &s,
                Request::Isa {
                    parent: "country".into(),
                    child: "China".into(),
                },
            );
            assert_eq!(d.get("isa").and_then(Json::as_bool), Some(true));
            // And the component can come home: import lifts everything.
            ok(&s, Request::ImportComponent { source: 1, payload });
            let (_, r) = s.handle(&Request::Typicality {
                term: "cat".into(),
                direction: Direction::Concepts,
                k: 3,
            });
            assert!(r.is_ok());
        }
    }

    #[test]
    fn durable_add_evidence_appends_to_the_wal() {
        let dir = tempdir("wal");
        let s = durable_state(&dir);
        let d = s.durability().expect("configured").clone();
        assert_eq!(d.wal_appends_total(), 0);
        let (_, r) = s.handle(&Request::AddEvidence {
            parent: "country".into(),
            child: "Atlantis".into(),
            count: 2,
        });
        r.expect("write succeeds");
        assert_eq!(d.wal_appends_total(), 1);
        assert_eq!(d.pending_writes(), 1);
        // Rejected writes must not reach the log.
        let (_, r) = s.handle(&Request::AddEvidence {
            parent: "China".into(),
            child: "country".into(),
            count: 1,
        });
        assert!(r.is_err());
        assert_eq!(d.wal_appends_total(), 1, "rejected write not logged");
        // The stats dump now carries the durability section.
        let (_, stats) = s.handle(&Request::Stats);
        let stats = stats.unwrap();
        let wal = stats.get("durability").unwrap().get("wal").unwrap();
        assert_eq!(wal.get("appends").and_then(Json::as_u64), Some(1));
    }
}
