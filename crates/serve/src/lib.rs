//! # probase-serve
//!
//! The concurrent query-serving subsystem: what turns the reproduction
//! from a library into a system. The paper hosts Probase in the Trinity
//! graph engine and serves many applications concurrently (§5.3);
//! [`SharedStore`](probase_store::SharedStore) already reproduces the
//! many-readers/one-writer shape, and this crate puts a network front
//! end on it:
//!
//! * a **multi-threaded TCP server** ([`server::Server`]) speaking
//!   newline-delimited JSON — std::net listener, per-connection reader
//!   threads, a bounded crossbeam job queue with backpressure, a worker
//!   pool, per-request deadlines, and graceful draining shutdown;
//! * a **typed protocol** ([`proto::Request`]) covering the existing
//!   query surface: `isa`, `typicality`, `plausibility`,
//!   `conceptualize`, `search-rewrite`, `stats`, `levels`, `labels`,
//!   plus the writes `add-evidence` and `snapshot-load` (hot-swapping a
//!   whole graph);
//! * a **sharded LRU response cache** ([`cache::ResponseCache`]) keyed
//!   on `(endpoint, args, store version)` so writes invalidate
//!   implicitly through the store's version counter;
//! * **telemetry** ([`telemetry::ServeTelemetry`]) — per-endpoint
//!   request counts and latency histograms, cache hit rate, queue depth,
//!   backpressure rejections — all registered as `serve.*` metrics in a
//!   [`probase_obs::Registry`] and dumped by the `stats` endpoint;
//! * a **blocking client** ([`client::Client`]) used by
//!   `probase-loadgen`, the benches, and the tests — with configurable
//!   retries (exponential backoff, jitter, a lifetime retry budget,
//!   idempotent-reads-only; see [`client::ClientConfig`]).
//!
//! The server side is hardened against hostile or broken peers: a
//! max-connections admission guard, per-connection oversize-line limits,
//! and strike-based shedding of garbage-spewing connections — each shed
//! or malformed event is counted in telemetry and answered with a proper
//! error envelope. `crates/testkit` plus `tests/chaos.rs` replay seeded
//! fault schedules against all of it; see DESIGN.md §11.
//!
//! When started with a snapshot directory, the write path becomes
//! **durable** ([`durability::Durability`]): every `add-evidence` is
//! appended to a checksummed write-ahead log before it is acked, crash
//! recovery replays the log over the newest checkpoint at startup, and a
//! background worker consumes the log as a real-time evidence stream —
//! incrementally folding the un-consumed suffix (histogram shift, urns
//! refit, changed-edge annotation) behind a fold cursor so each record
//! is processed once, then checkpointing. `snapshot-load` paths are
//! then sandboxed to that directory. See DESIGN.md §13 and §16.
//!
//! The dependency-free JSON codec lives in [`probase_obs::json`]
//! (re-exported here as [`json`], where it originally lived); see its
//! docs for why the workspace carries no `serde_json`.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod durability;
pub mod proto;
pub mod router;
pub mod server;
pub mod telemetry;

pub use probase_obs::json;

pub use cache::ResponseCache;
pub use client::{Client, ClientConfig, ClientError, Envelope};
pub use durability::{Durability, DurabilityConfig, FoldReport};
pub use json::Json;
pub use probase_store::WalSync;
pub use proto::{Direction, ErrorCode, LabelKind, Request, ENDPOINTS};
pub use router::ServeState;
pub use server::{ServeConfig, Server};
pub use telemetry::{ClientTelemetry, ServeTelemetry};
