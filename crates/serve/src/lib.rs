//! # probase-serve
//!
//! The concurrent query-serving subsystem: what turns the reproduction
//! from a library into a system. The paper hosts Probase in the Trinity
//! graph engine and serves many applications concurrently (§5.3);
//! [`SharedStore`](probase_store::SharedStore) already reproduces the
//! many-readers/one-writer shape, and this crate puts a network front
//! end on it:
//!
//! * a **multi-threaded TCP server** ([`server::Server`]) speaking
//!   newline-delimited JSON — std::net listener, per-connection reader
//!   threads, a bounded crossbeam job queue with backpressure, a worker
//!   pool, per-request deadlines, and graceful draining shutdown;
//! * a **typed protocol** ([`proto::Request`]) covering the existing
//!   query surface: `isa`, `typicality`, `plausibility`,
//!   `conceptualize`, `search-rewrite`, `stats`, `levels`, `labels`,
//!   plus the writes `add-evidence` and `snapshot-load` (hot-swapping a
//!   whole graph);
//! * a **sharded LRU response cache** ([`cache::ResponseCache`]) keyed
//!   on `(endpoint, args, store version)` so writes invalidate
//!   implicitly through the store's version counter;
//! * a **metrics registry** ([`metrics::ServeMetrics`]) — per-endpoint
//!   request counts and latency histograms, cache hit rate, queue depth,
//!   backpressure rejections — dumped by the `stats` endpoint;
//! * a **blocking client** ([`client::Client`]) used by
//!   `probase-loadgen`, the benches, and the tests.
//!
//! The dependency-free JSON codec lives in [`json`]; see its docs for
//! why the workspace carries no `serde_json`.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod json;
pub mod metrics;
pub mod proto;
pub mod router;
pub mod server;

pub use cache::ResponseCache;
pub use client::{Client, ClientError, Envelope};
pub use json::Json;
pub use metrics::ServeMetrics;
pub use proto::{Direction, ErrorCode, LabelKind, Request, ENDPOINTS};
pub use router::ServeState;
pub use server::{ServeConfig, Server};
