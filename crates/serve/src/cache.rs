//! Sharded, versioned LRU response cache.
//!
//! Entries are keyed on `(canonical request key, store version)`. The
//! version comes from [`probase_store::SharedStore::version`], captured
//! atomically with the graph read ([`SharedStore::read_versioned`]), so a
//! write implicitly invalidates every cached answer: lookups after the
//! write carry the new version and simply miss, while the stale entries
//! age out through normal LRU eviction. No explicit flush, no
//! cross-thread epoch protocol.
//!
//! Sharding splits the key space over `N` independent mutexes so that
//! worker threads probing the cache under load do not serialize on one
//! lock. Each shard is a classic map + access-ordered queue LRU; the
//! queue uses lazy invalidation (stale positions are skipped at eviction
//! time) and is compacted when it outgrows the live entry count.

use crate::json::Json;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};

type Key = (String, u64);

struct Entry {
    value: Json,
    /// Monotone access stamp; an `order` queue slot is live only if its
    /// recorded tick equals this.
    tick: u64,
}

struct LruShard {
    map: HashMap<Key, Entry>,
    /// Access order, oldest first, with lazy invalidation.
    order: VecDeque<(Key, u64)>,
    tick: u64,
    capacity: usize,
}

impl LruShard {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity.min(1024)),
            order: VecDeque::with_capacity(capacity.min(1024)),
            tick: 0,
            capacity,
        }
    }

    fn touch(&mut self, key: &Key) -> u64 {
        self.tick += 1;
        self.order.push_back((key.clone(), self.tick));
        self.tick
    }

    fn get(&mut self, key: &Key) -> Option<Json> {
        // Split borrow: compute the new tick before mutating the entry.
        if !self.map.contains_key(key) {
            return None;
        }
        let tick = self.touch(key);
        let entry = self.map.get_mut(key).expect("checked above");
        entry.tick = tick;
        let value = entry.value.clone();
        self.maybe_compact();
        Some(value)
    }

    fn insert(&mut self, key: Key, value: Json) {
        let tick = self.touch(&key);
        self.map.insert(key, Entry { value, tick });
        while self.map.len() > self.capacity {
            match self.order.pop_front() {
                Some((k, t)) => {
                    if self.map.get(&k).is_some_and(|e| e.tick == t) {
                        self.map.remove(&k);
                    }
                }
                None => break, // unreachable: map non-empty ⇒ queue non-empty
            }
        }
        self.maybe_compact();
    }

    /// Keep the lazily-invalidated queue within a constant factor of the
    /// live entry count (hit-heavy workloads push without popping).
    fn maybe_compact(&mut self) {
        if self.order.len() <= 8 * self.capacity.max(8) {
            return;
        }
        let map = &self.map;
        self.order
            .retain(|(k, t)| map.get(k).is_some_and(|e| e.tick == *t));
    }
}

/// The concurrent response cache. See the module docs.
pub struct ResponseCache {
    shards: Vec<Mutex<LruShard>>,
}

impl ResponseCache {
    /// A cache holding at most `capacity` entries total, spread over
    /// `shards` locks (both floored at 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = (capacity.max(1)).div_ceil(shards);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
        }
    }

    fn shard(&self, key: &Key) -> &Mutex<LruShard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look up a cached response for `key` computed at `version`.
    pub fn get(&self, key: &str, version: u64) -> Option<Json> {
        let k = (key.to_string(), version);
        self.shard(&k).lock().get(&k)
    }

    /// Cache a response computed at `version`.
    pub fn insert(&self, key: String, version: u64, value: Json) {
        let k = (key, version);
        self.shard(&k).lock().insert(k, value);
    }

    /// Total live entries (for the stats dump; takes every shard lock).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u64) -> Json {
        Json::num(n as f64)
    }

    #[test]
    fn hit_after_insert_same_version() {
        let c = ResponseCache::new(16, 2);
        c.insert("isa|a|b".into(), 0, v(1));
        assert_eq!(c.get("isa|a|b", 0), Some(v(1)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn version_bump_misses() {
        let c = ResponseCache::new(16, 2);
        c.insert("k".into(), 0, v(1));
        assert_eq!(c.get("k", 1), None, "new version must not see old answers");
        c.insert("k".into(), 1, v(2));
        assert_eq!(c.get("k", 1), Some(v(2)));
        // The old-version entry still exists until evicted, but is
        // unreachable through any current-version lookup.
        assert_eq!(c.get("k", 0), Some(v(1)));
    }

    #[test]
    fn lru_evicts_oldest() {
        let c = ResponseCache::new(3, 1);
        c.insert("a".into(), 0, v(1));
        c.insert("b".into(), 0, v(2));
        c.insert("c".into(), 0, v(3));
        // Touch "a" so "b" is now the least recently used.
        assert!(c.get("a", 0).is_some());
        c.insert("d".into(), 0, v(4));
        assert_eq!(c.get("b", 0), None, "LRU entry evicted");
        assert!(c.get("a", 0).is_some());
        assert!(c.get("c", 0).is_some());
        assert!(c.get("d", 0).is_some());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn reinsert_updates_value() {
        let c = ResponseCache::new(4, 1);
        c.insert("k".into(), 0, v(1));
        c.insert("k".into(), 0, v(2));
        assert_eq!(c.get("k", 0), Some(v(2)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_respected_under_churn() {
        let c = ResponseCache::new(8, 4);
        for i in 0..1000u64 {
            c.insert(format!("key-{i}"), i % 3, v(i));
            // Interleave hits to exercise queue compaction.
            let _ = c.get(&format!("key-{}", i / 2), (i / 2) % 3);
        }
        // Per-shard capacity is ceil(8/4)=2 → at most 8 total.
        assert!(c.len() <= 8, "len {} exceeds capacity", c.len());
    }

    #[test]
    fn hit_heavy_workload_bounded_queue() {
        let c = ResponseCache::new(2, 1);
        c.insert("a".into(), 0, v(1));
        for _ in 0..10_000 {
            assert!(c.get("a", 0).is_some());
        }
        let shard = c.shards[0].lock();
        assert!(
            shard.order.len() <= 8 * 8 + 1,
            "queue grew unboundedly: {}",
            shard.order.len()
        );
    }

    #[test]
    fn eviction_order_under_pressure_is_exact_lru() {
        // Single shard, capacity 4, then a scripted access pattern; the
        // eviction sequence must follow recency exactly, not insertion
        // order and not approximate it.
        let c = ResponseCache::new(4, 1);
        for k in ["a", "b", "c", "d"] {
            c.insert(k.into(), 0, v(1));
        }
        // Recency now (oldest→newest): a b c d. Touch a, then c:
        // oldest→newest becomes b d a c.
        assert!(c.get("a", 0).is_some());
        assert!(c.get("c", 0).is_some());

        c.insert("e".into(), 0, v(2)); // evicts b
        assert_eq!(c.get("b", 0), None, "b was least recently used");
        assert_eq!(c.len(), 4);

        c.insert("f".into(), 0, v(3)); // evicts d
        assert_eq!(c.get("d", 0), None, "d was next in LRU order");

        // a and c survived both evictions because of the touches; the
        // two newest inserts are of course present.
        for k in ["a", "c", "e", "f"] {
            assert!(c.get(k, 0).is_some(), "{k} should have survived");
        }
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn stale_versions_never_served_after_snapshot_swap() {
        // A snapshot-load bumps the store version; every subsequent
        // lookup carries the new version and must never see an answer
        // computed against the old graph, even for identical keys.
        // One shard so eviction pressure is deterministic regardless of
        // how the hasher spreads (key, version) pairs.
        let c = ResponseCache::new(8, 1);
        let keys: Vec<String> = (0..8).map(|i| format!("isa|x{i}|y")).collect();
        for k in &keys {
            c.insert(k.clone(), 3, v(10));
        }
        // "Swap": the store version is now 4. Same keys, new version —
        // all lookups must miss.
        for k in &keys {
            assert_eq!(c.get(k, 4), None, "stale answer served for {k}");
        }
        // Repopulate at the new version and keep hammering it; the old
        // generation must age out entirely rather than pinning capacity.
        for round in 0..4 {
            for k in &keys {
                c.insert(k.clone(), 4, v(20 + round));
                assert_eq!(c.get(k, 4), Some(v(20 + round)));
            }
        }
        let stale_left = keys.iter().filter(|k| c.get(k, 3).is_some()).count();
        assert_eq!(
            stale_left, 0,
            "old-version entries must be fully evicted under pressure"
        );
        assert!(c.len() <= 8);
    }

    #[test]
    fn zero_capacity_floored() {
        let c = ResponseCache::new(0, 0);
        c.insert("a".into(), 0, v(1));
        assert!(c.len() <= 1);
    }

    #[test]
    fn concurrent_access() {
        let c = std::sync::Arc::new(ResponseCache::new(64, 8));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let key = format!("k{}", (t * 31 + i) % 100);
                    let ver = i % 4;
                    if i % 3 == 0 {
                        c.insert(key, ver, v(i));
                    } else {
                        let _ = c.get(&key, ver);
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("no panics");
        }
        assert!(c.len() <= 64 + 8, "len {}", c.len());
    }
}
