//! Serving metrics: per-endpoint counters and latency histograms,
//! cache hit/miss rates, queue depth, and backpressure rejections.
//!
//! Everything is lock-free atomics so the hot path costs a handful of
//! relaxed stores. Latencies go into power-of-two microsecond buckets
//! (bucket `i` covers `[2^(i-1), 2^i)` µs), which answers p50/p99 with
//! one-bucket resolution — the same shape Prometheus client histograms
//! use, minus the dependency. The whole registry dumps to JSON through
//! the `stats` endpoint.

use crate::json::Json;
use crate::proto::ENDPOINTS;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::time::Duration;

const BUCKETS: usize = 40; // 2^39 µs ≈ 6.4 days: more than any deadline

/// A power-of-two-bucketed latency histogram (microseconds).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    sum_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        // `[T; N]: Default` stops at N = 32, so build the 40 slots by hand.
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn record(&self, d: Duration) {
        let micros = d.as_micros().min(u64::MAX as u128) as u64;
        let idx = if micros == 0 {
            0
        } else {
            (64 - micros.leading_zeros() as usize).min(BUCKETS - 1)
        };
        self.buckets[idx].fetch_add(1, Relaxed);
        self.sum_micros.fetch_add(micros, Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Relaxed)).sum()
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_micros.load(Relaxed) as f64 / n as f64
        }
    }

    /// Approximate `q`-quantile in microseconds: the upper bound of the
    /// bucket containing the target rank (0 when empty).
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return 1u64 << i; // bucket i upper bound: 2^i µs
            }
        }
        1u64 << (BUCKETS - 1)
    }
}

/// Counters for one endpoint.
#[derive(Debug, Default)]
pub struct EndpointMetrics {
    /// Completed requests (including errored ones).
    pub requests: AtomicU64,
    /// Requests that produced an error envelope.
    pub errors: AtomicU64,
    /// End-to-end handler latency (queue wait excluded).
    pub latency: LatencyHistogram,
}

/// The registry shared by the whole server. See the module docs.
#[derive(Debug)]
pub struct ServeMetrics {
    endpoints: Vec<EndpointMetrics>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    rejected: AtomicU64,
    deadline_expired: AtomicU64,
    bad_requests: AtomicU64,
    queue_depth: AtomicI64,
    connections_open: AtomicI64,
    connections_total: AtomicU64,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self {
            endpoints: (0..ENDPOINTS.len())
                .map(|_| EndpointMetrics::default())
                .collect(),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            queue_depth: AtomicI64::new(0),
            connections_open: AtomicI64::new(0),
            connections_total: AtomicU64::new(0),
        }
    }
}

impl ServeMetrics {
    /// Fresh registry with one slot per [`ENDPOINTS`] entry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a completed request for endpoint `idx`.
    pub fn record_request(&self, idx: usize, latency: Duration, errored: bool) {
        let e = &self.endpoints[idx];
        e.requests.fetch_add(1, Relaxed);
        if errored {
            e.errors.fetch_add(1, Relaxed);
        }
        e.latency.record(latency);
    }

    /// Response served from the cache.
    pub fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Relaxed);
    }

    /// Response had to be computed.
    pub fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Relaxed);
    }

    /// Request rejected because the bounded queue was full.
    pub fn rejected(&self) {
        self.rejected.fetch_add(1, Relaxed);
    }

    /// Request expired in the queue before a worker picked it up.
    pub fn deadline_expired(&self) {
        self.deadline_expired.fetch_add(1, Relaxed);
    }

    /// Unparseable line or invalid parameters.
    pub fn bad_request(&self) {
        self.bad_requests.fetch_add(1, Relaxed);
    }

    /// A job entered the queue.
    pub fn enqueued(&self) {
        self.queue_depth.fetch_add(1, Relaxed);
    }

    /// A worker took a job off the queue.
    pub fn dequeued(&self) {
        self.queue_depth.fetch_sub(1, Relaxed);
    }

    /// Current queue depth (floored at 0 — racy reads can transiently
    /// observe inc/dec out of order).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Relaxed).max(0) as u64
    }

    /// A client connected.
    pub fn connection_opened(&self) {
        self.connections_open.fetch_add(1, Relaxed);
        self.connections_total.fetch_add(1, Relaxed);
    }

    /// A client disconnected.
    pub fn connection_closed(&self) {
        self.connections_open.fetch_sub(1, Relaxed);
    }

    /// Cache hits so far.
    pub fn cache_hits_total(&self) -> u64 {
        self.cache_hits.load(Relaxed)
    }

    /// Completed requests summed over all endpoints.
    pub fn requests_total(&self) -> u64 {
        self.endpoints
            .iter()
            .map(|e| e.requests.load(Relaxed))
            .sum()
    }

    /// Dump the registry as JSON (`cache_entries` is supplied by the
    /// caller because the cache is a sibling object).
    pub fn to_json(&self, cache_entries: usize) -> Json {
        let mut per_endpoint = Vec::new();
        for (name, e) in ENDPOINTS.iter().zip(&self.endpoints) {
            let requests = e.requests.load(Relaxed);
            if requests == 0 {
                continue;
            }
            per_endpoint.push((
                name.to_string(),
                Json::obj(vec![
                    ("requests", Json::num(requests as f64)),
                    ("errors", Json::num(e.errors.load(Relaxed) as f64)),
                    ("p50_us", Json::num(e.latency.quantile_micros(0.50) as f64)),
                    ("p99_us", Json::num(e.latency.quantile_micros(0.99) as f64)),
                    (
                        "mean_us",
                        Json::num((e.latency.mean_micros() * 10.0).round() / 10.0),
                    ),
                ]),
            ));
        }
        let hits = self.cache_hits.load(Relaxed);
        let misses = self.cache_misses.load(Relaxed);
        let hit_rate = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        Json::obj(vec![
            ("endpoints", Json::Obj(per_endpoint)),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::num(hits as f64)),
                    ("misses", Json::num(misses as f64)),
                    ("hit_rate", Json::num(hit_rate)),
                    ("entries", Json::num(cache_entries as f64)),
                ]),
            ),
            (
                "queue",
                Json::obj(vec![
                    ("depth", Json::num(self.queue_depth() as f64)),
                    ("rejected", Json::num(self.rejected.load(Relaxed) as f64)),
                    (
                        "deadline_expired",
                        Json::num(self.deadline_expired.load(Relaxed) as f64),
                    ),
                ]),
            ),
            (
                "connections",
                Json::obj(vec![
                    (
                        "open",
                        Json::num(self.connections_open.load(Relaxed).max(0) as f64),
                    ),
                    (
                        "total",
                        Json::num(self.connections_total.load(Relaxed) as f64),
                    ),
                ]),
            ),
            (
                "bad_requests",
                Json::num(self.bad_requests.load(Relaxed) as f64),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_micros(10)); // bucket upper bound 16
        }
        h.record(Duration::from_millis(100)); // ~1e5 µs, upper bound 131072
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_micros(0.50), 16);
        assert_eq!(h.quantile_micros(0.95), 16);
        assert_eq!(h.quantile_micros(1.0), 131072);
        assert!((h.mean_micros() - (99.0 * 10.0 + 100_000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_empty_and_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_micros(0.5), 0);
        assert_eq!(h.mean_micros(), 0.0);
        h.record(Duration::from_nanos(10)); // rounds to 0 µs → bucket 0
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_micros(0.5), 1);
    }

    #[test]
    fn histogram_huge_latency_clamped() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_secs(60 * 60 * 24 * 30)); // a month
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_micros(0.99), 1u64 << (BUCKETS - 1));
    }

    #[test]
    fn registry_counters_flow_into_dump() {
        let m = ServeMetrics::new();
        m.record_request(1, Duration::from_micros(5), false); // isa
        m.record_request(1, Duration::from_micros(7), true);
        m.cache_hit();
        m.cache_hit();
        m.cache_miss();
        m.rejected();
        m.deadline_expired();
        m.bad_request();
        m.enqueued();
        m.connection_opened();
        let dump = m.to_json(3);
        let isa = dump
            .get("endpoints")
            .and_then(|e| e.get("isa"))
            .expect("isa present");
        assert_eq!(isa.get("requests").and_then(Json::as_u64), Some(2));
        assert_eq!(isa.get("errors").and_then(Json::as_u64), Some(1));
        assert!(isa.get("p50_us").and_then(Json::as_u64).unwrap() >= 5);
        assert!(isa.get("p99_us").is_some());
        let cache = dump.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(2));
        assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
        assert!((cache.get("hit_rate").and_then(Json::as_f64).unwrap() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(3));
        let queue = dump.get("queue").unwrap();
        assert_eq!(queue.get("depth").and_then(Json::as_u64), Some(1));
        assert_eq!(queue.get("rejected").and_then(Json::as_u64), Some(1));
        assert_eq!(
            queue.get("deadline_expired").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(dump.get("bad_requests").and_then(Json::as_u64), Some(1));
        // Endpoints with zero traffic are omitted from the dump.
        assert!(dump.get("endpoints").unwrap().get("stats").is_none());
        assert_eq!(m.requests_total(), 2);
    }

    #[test]
    fn queue_depth_never_negative() {
        let m = ServeMetrics::new();
        m.dequeued();
        assert_eq!(m.queue_depth(), 0);
    }
}
