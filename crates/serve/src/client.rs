//! A small blocking client for the newline-delimited JSON protocol.
//!
//! One request, one response, in order — the closed-loop shape
//! `probase-loadgen` and the tests use. (The server supports pipelining
//! via response `id`s; this client simply doesn't need it.)

use crate::json::{self, Json};
use crate::proto::Request;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent something that is not a valid response.
    Protocol(String),
    /// A well-formed error envelope: `(code, detail)`.
    Server(String, String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(d) => write!(f, "protocol error: {d}"),
            ClientError::Server(code, detail) => write!(f, "server error [{code}]: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A parsed response envelope.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Echo of the request id.
    pub id: u64,
    /// Store version the answer reflects (success only).
    pub version: u64,
    /// The `data` payload (success) or the whole envelope (error).
    pub data: Json,
    /// `Some((code, detail))` when the server answered an error.
    pub error: Option<(String, String)>,
}

impl Envelope {
    fn parse(v: &Json) -> Result<Envelope, String> {
        let id = v.get("id").and_then(Json::as_u64).ok_or("missing id")?;
        let ok = v.get("ok").and_then(Json::as_bool).ok_or("missing ok")?;
        if ok {
            Ok(Envelope {
                id,
                version: v
                    .get("version")
                    .and_then(Json::as_u64)
                    .ok_or("missing version")?,
                data: v.get("data").cloned().ok_or("missing data")?,
                error: None,
            })
        } else {
            let code = v
                .get("error")
                .and_then(Json::as_str)
                .ok_or("missing error code")?;
            let detail = v.get("detail").and_then(Json::as_str).unwrap_or("");
            Ok(Envelope {
                id,
                version: 0,
                data: v.clone(),
                error: Some((code.to_string(), detail.to_string())),
            })
        }
    }
}

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connect to a running `probase-serve`.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
        })
    }

    /// Send one request and wait for its response envelope (which may be
    /// a server-side error — that is a *successful* call here).
    pub fn call(&mut self, req: &Request) -> Result<Envelope, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut line = req.to_json(id).to_string();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;

        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "server closed the connection".to_string(),
            ));
        }
        let v = json::parse(response.trim())
            .map_err(|e| ClientError::Protocol(format!("bad response JSON: {e}")))?;
        let envelope = Envelope::parse(&v).map_err(|d| ClientError::Protocol(d.to_string()))?;
        if envelope.id != id {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {id}",
                envelope.id
            )));
        }
        Ok(envelope)
    }

    /// Like [`Client::call`], but turns server error envelopes into
    /// `Err` and returns `(version, data)` on success.
    pub fn call_ok(&mut self, req: &Request) -> Result<(u64, Json), ClientError> {
        let envelope = self.call(req)?;
        match envelope.error {
            None => Ok((envelope.version, envelope.data)),
            Some((code, detail)) => Err(ClientError::Server(code, detail)),
        }
    }
}
