//! A small blocking client for the newline-delimited JSON protocol,
//! with configurable retries.
//!
//! One request, one response, in order — the closed-loop shape
//! `probase-loadgen` and the tests use. (The server supports pipelining
//! via response `id`s; this client simply doesn't need it.)
//!
//! ## Retry model
//!
//! A [`ClientConfig`] turns on bounded retries with exponential backoff
//! and jitter. The rules, enforced here rather than left to callers:
//!
//! * **Only idempotent reads retry** ([`Request::is_idempotent`]) — a
//!   retried `add-evidence` would double-count evidence, so writes fail
//!   fast and the caller decides.
//! * **Transport failures** (socket errors, truncated or garbled
//!   responses) tear down the connection and retry on a fresh one; the
//!   old stream's state is unknowable after a desync.
//! * **Load-shedding envelopes** (`overloaded`, `deadline-exceeded`,
//!   `too-many-connections` — [`ErrorCode::retryable`]) retry on the
//!   same connection after backing off.
//! * A **retry budget** caps retries across the client's lifetime, so a
//!   dying server makes a busy client fail fast instead of amplifying
//!   the outage with coordinated retry storms; per-call attempts are
//!   separately capped by `max_retries`.
//! * Exhaustion is surfaced as [`ClientError::RetriesExhausted`] with
//!   the final underlying error, so callers can tell "failed once" from
//!   "failed after the client did everything it could".
//!
//! Backoff after attempt `n` is `base_delay * multiplier^n`, capped at
//! `max_delay`, then shrunk by up to `jitter` uniformly at random —
//! jitter is seeded ([`ClientConfig::seed`]) with the same xorshift64*
//! generator `probase-testkit` uses, so chaos runs replay exactly.

use crate::json::{self, Json};
use crate::proto::{ErrorCode, Request};
use crate::telemetry::ClientTelemetry;
use probase_obs::Registry;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent something that is not a valid response.
    Protocol(String),
    /// A well-formed error envelope: `(code, detail)`.
    Server(String, String),
    /// The call kept failing until its retries (or the client's budget)
    /// ran out; `last` is the final attempt's error.
    RetriesExhausted {
        /// Total attempts made, including the first.
        attempts: u32,
        /// The error the final attempt died with.
        last: Box<ClientError>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(d) => write!(f, "protocol error: {d}"),
            ClientError::Server(code, detail) => write!(f, "server error [{code}]: {detail}"),
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Retry and transport tunables for [`Client::connect_with`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Retries per call beyond the first attempt (0 disables retrying —
    /// the default, matching the pre-retry client exactly).
    pub max_retries: u32,
    /// Lifetime cap on retries across all calls (the retry budget).
    pub retry_budget: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Exponential growth factor per retry.
    pub multiplier: f64,
    /// Fraction of the delay randomly shaved off, in `[0, 1]`
    /// (decorrelates retry storms across clients).
    pub jitter: f64,
    /// Seed for the jitter stream — fix it to make a test replayable.
    pub seed: u64,
    /// Socket read timeout; a blackholed request surfaces as an
    /// [`ClientError::Io`] timeout (retryable) instead of hanging
    /// forever. `None` blocks indefinitely (the default).
    pub read_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            max_retries: 0,
            retry_budget: 0,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            multiplier: 2.0,
            jitter: 0.5,
            seed: 0x9E37_79B9_7F4A_7C15,
            read_timeout: None,
        }
    }
}

impl ClientConfig {
    /// A sensible retrying profile: 4 retries per call, a budget of 64,
    /// 10ms → 500ms exponential backoff with 50% jitter, 5s read
    /// timeout.
    pub fn retrying() -> Self {
        Self {
            max_retries: 4,
            retry_budget: 64,
            read_timeout: Some(Duration::from_secs(5)),
            ..Self::default()
        }
    }
}

/// A parsed response envelope.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Echo of the request id.
    pub id: u64,
    /// Store version the answer reflects (success only).
    pub version: u64,
    /// The `data` payload (success) or the whole envelope (error).
    pub data: Json,
    /// `Some((code, detail))` when the server answered an error.
    pub error: Option<(String, String)>,
    /// `true` when a sharded deployment answered from a subset of shards
    /// (single-node servers never set this).
    pub degraded: bool,
    /// `true` when the answer was clipped by a server-side cap (e.g. a
    /// conceptualize slice hit `MAX_K`) and may be missing entries.
    pub truncated: bool,
}

impl Envelope {
    fn parse(v: &Json) -> Result<Envelope, String> {
        let id = v.get("id").and_then(Json::as_u64).ok_or("missing id")?;
        let ok = v.get("ok").and_then(Json::as_bool).ok_or("missing ok")?;
        if ok {
            Ok(Envelope {
                id,
                version: v
                    .get("version")
                    .and_then(Json::as_u64)
                    .ok_or("missing version")?,
                data: v.get("data").cloned().ok_or("missing data")?,
                error: None,
                degraded: v.get("degraded").and_then(Json::as_bool).unwrap_or(false),
                truncated: v.get("truncated").and_then(Json::as_bool).unwrap_or(false),
            })
        } else {
            let code = v
                .get("error")
                .and_then(Json::as_str)
                .ok_or("missing error code")?;
            let detail = v.get("detail").and_then(Json::as_str).unwrap_or("");
            Ok(Envelope {
                id,
                version: 0,
                data: v.clone(),
                error: Some((code.to_string(), detail.to_string())),
                degraded: false,
                truncated: false,
            })
        }
    }
}

/// A connected client.
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    rng_state: u64,
    retries_spent: u32,
    telemetry: ClientTelemetry,
}

impl Client {
    /// Connect to a running `probase-serve` with retries disabled (the
    /// historical behavior).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect with an explicit [`ClientConfig`].
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> std::io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidInput, "no address resolved"))?;
        let (reader, writer) = open_stream(addr, &config)?;
        Ok(Client {
            addr,
            // Mix the seed exactly like testkit's SplitMix64 so a zero
            // seed still jitters.
            rng_state: splitmix64(config.seed).max(1),
            config,
            reader,
            writer,
            next_id: 1,
            retries_spent: 0,
            telemetry: ClientTelemetry::new(),
        })
    }

    /// Record `serve.client.*` retry metrics into `registry` (pass the
    /// server's registry in tests to see both sides of a fault in one
    /// snapshot).
    pub fn with_telemetry(mut self, registry: &Registry) -> Client {
        self.telemetry = ClientTelemetry::with_registry(registry);
        self
    }

    /// Retries spent so far against [`ClientConfig::retry_budget`].
    pub fn retries_spent(&self) -> u32 {
        self.retries_spent
    }

    /// The retry telemetry handles.
    pub fn telemetry(&self) -> &ClientTelemetry {
        &self.telemetry
    }

    /// Send one request and wait for its response envelope (which may be
    /// a server-side error — that is a *successful* call here). Applies
    /// the configured retry policy; see the module docs for the rules.
    pub fn call(&mut self, req: &Request) -> Result<Envelope, ClientError> {
        let idempotent = req.is_idempotent();
        let mut attempt: u32 = 0;
        let mut broken = false;
        loop {
            if broken {
                match self.reconnect() {
                    Ok(()) => {
                        broken = false;
                        self.telemetry.reconnect();
                    }
                    Err(e) => {
                        // A failed reconnect consumes a retry like any
                        // other transport failure.
                        let err = ClientError::Io(e);
                        if idempotent && self.may_retry(attempt) {
                            self.spend_retry(attempt);
                            attempt += 1;
                            continue;
                        }
                        return self.give_up(attempt, err);
                    }
                }
            }
            match self.call_once(req) {
                Ok(envelope) => {
                    if idempotent {
                        if let Some((code, _)) = &envelope.error {
                            let retryable =
                                ErrorCode::parse(code).is_some_and(ErrorCode::retryable);
                            if retryable && self.may_retry(attempt) {
                                // The server answered; the connection is
                                // fine — just shed. Back off and retry
                                // in place.
                                self.spend_retry(attempt);
                                attempt += 1;
                                continue;
                            }
                        }
                    }
                    return Ok(envelope);
                }
                Err(err) => {
                    let transient = matches!(err, ClientError::Io(_) | ClientError::Protocol(_));
                    if idempotent && transient && self.may_retry(attempt) {
                        self.spend_retry(attempt);
                        attempt += 1;
                        broken = true; // desynced stream: reconnect
                        continue;
                    }
                    return self.give_up(attempt, err);
                }
            }
        }
    }

    /// Like [`Client::call`], but turns server error envelopes into
    /// `Err` and returns `(version, data)` on success.
    pub fn call_ok(&mut self, req: &Request) -> Result<(u64, Json), ClientError> {
        let envelope = self.call(req)?;
        match envelope.error {
            None => Ok((envelope.version, envelope.data)),
            Some((code, detail)) => Err(ClientError::Server(code, detail)),
        }
    }

    /// One wire round trip, no retry logic.
    fn call_once(&mut self, req: &Request) -> Result<Envelope, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut line = req.to_json(id).to_string();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;

        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "server closed the connection".to_string(),
            ));
        }
        let v = json::parse(response.trim())
            .map_err(|e| ClientError::Protocol(format!("bad response JSON: {e}")))?;
        let envelope = Envelope::parse(&v).map_err(|d| ClientError::Protocol(d.to_string()))?;
        if envelope.id != id {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {id}",
                envelope.id
            )));
        }
        Ok(envelope)
    }

    fn reconnect(&mut self) -> std::io::Result<()> {
        let (reader, writer) = open_stream(self.addr, &self.config)?;
        self.reader = reader;
        self.writer = writer;
        Ok(())
    }

    fn may_retry(&self, attempt: u32) -> bool {
        attempt < self.config.max_retries && self.retries_spent < self.config.retry_budget
    }

    /// Count the retry and sleep the backoff for `attempt`.
    fn spend_retry(&mut self, attempt: u32) {
        self.retries_spent += 1;
        self.telemetry.retry();
        let exp = self.config.base_delay.as_secs_f64()
            * self.config.multiplier.max(1.0).powi(attempt as i32);
        let capped = exp.min(self.config.max_delay.as_secs_f64());
        let jittered = capped * (1.0 - self.config.jitter.clamp(0.0, 1.0) * self.next_unit());
        if jittered > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(jittered));
        }
    }

    fn give_up(&mut self, attempt: u32, err: ClientError) -> Result<Envelope, ClientError> {
        if attempt > 0 {
            self.telemetry.exhausted();
            return Err(ClientError::RetriesExhausted {
                attempts: attempt + 1,
                last: Box::new(err),
            });
        }
        Err(err)
    }

    /// Next jitter value in `[0, 1)` — xorshift64*, mirroring
    /// `probase-testkit` so seeded chaos runs replay byte-for-byte.
    fn next_unit(&mut self) -> f64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn open_stream(
    addr: SocketAddr,
    config: &ClientConfig,
) -> std::io::Result<(BufReader<TcpStream>, TcpStream)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(config.read_timeout)?;
    let writer = stream.try_clone()?;
    Ok((BufReader::new(stream), writer))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_disables_retries() {
        let c = ClientConfig::default();
        assert_eq!(c.max_retries, 0);
        assert_eq!(c.retry_budget, 0);
        assert!(c.read_timeout.is_none());
    }

    #[test]
    fn retrying_profile_is_bounded() {
        let c = ClientConfig::retrying();
        assert!(c.max_retries > 0);
        assert!(c.retry_budget >= c.max_retries);
        assert!(c.base_delay <= c.max_delay);
        assert!((0.0..=1.0).contains(&c.jitter));
    }

    #[test]
    fn exhausted_error_formats_with_cause() {
        let err = ClientError::RetriesExhausted {
            attempts: 3,
            last: Box::new(ClientError::Protocol("truncated".to_string())),
        };
        let text = err.to_string();
        assert!(text.contains("3 attempts"), "{text}");
        assert!(text.contains("truncated"), "{text}");
    }

    #[test]
    fn envelope_parse_reads_degraded_flag() {
        let ok = json::parse(r#"{"id":1,"ok":true,"version":4,"data":{}}"#).unwrap();
        assert!(!Envelope::parse(&ok).unwrap().degraded);
        let partial =
            json::parse(r#"{"id":1,"ok":true,"version":4,"degraded":true,"data":{}}"#).unwrap();
        assert!(Envelope::parse(&partial).unwrap().degraded);
        let err = json::parse(r#"{"id":1,"ok":false,"error":"internal","detail":"x"}"#).unwrap();
        assert!(!Envelope::parse(&err).unwrap().degraded);
    }

    /// Regression guard: a reconnect after a transport failure must
    /// re-apply the configured read timeout instead of reverting to the
    /// default (no timeout) — otherwise a blackholed server would hang
    /// the retried call forever.
    #[test]
    fn reconnect_preserves_configured_read_timeout() {
        use crate::proto::{ok_envelope, Request};
        use std::io::BufRead;

        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // First connection: accept and slam the door, forcing the
            // client onto its reconnect path.
            drop(listener.accept().unwrap());
            // Second connection: answer one request properly.
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let v = json::parse(line.trim()).unwrap();
            let id = v.get("id").and_then(Json::as_u64).unwrap();
            let reply = ok_envelope(id, 1, Json::obj(vec![("pong", Json::Bool(true))]));
            use std::io::Write;
            let mut w = &stream;
            writeln!(w, "{reply}").unwrap();
        });

        let timeout = Some(Duration::from_millis(1234));
        let config = ClientConfig {
            max_retries: 2,
            retry_budget: 4,
            base_delay: Duration::ZERO,
            jitter: 0.0,
            read_timeout: timeout,
            ..ClientConfig::default()
        };
        let mut client = Client::connect_with(addr, config).unwrap();
        // The kernel may round SO_RCVTIMEO up to its tick granularity, so
        // compare against what the first connection reports rather than
        // the raw configured value.
        let fresh = client.reader.get_ref().read_timeout().unwrap();
        assert!(fresh.is_some(), "configured timeout applied on connect");
        let envelope = client.call(&Request::Ping).expect("retried call succeeds");
        assert!(envelope.error.is_none());
        // White-box: the live stream after reconnect still carries the
        // configured timeout.
        assert_eq!(client.reader.get_ref().read_timeout().unwrap(), fresh);
        server.join().unwrap();
    }
}
