//! The TCP server: listener, per-connection readers, bounded job queue,
//! crossbeam worker pool, and graceful shutdown.
//!
//! Thread shape (no async runtime — plain std::net + threads, per the
//! workspace's no-heavy-deps policy):
//!
//! ```text
//! accept thread ──► connection reader threads (1 per client)
//!                        │  parse line → Job
//!                        ▼  try_send (bounded queue → backpressure)
//!                   crossbeam channel (capacity = queue_capacity)
//!                        │
//!                        ▼
//!                   worker pool (N threads) ──► router ──► socket write
//! ```
//!
//! * **Backpressure**: the queue is bounded; when it is full the reader
//!   answers `overloaded` immediately instead of buffering unboundedly.
//! * **Admission control**: at most `max_connections` reader threads;
//!   further connects are shed with a `too-many-connections` envelope.
//! * **Garbage tolerance**: request lines are read as bytes, so invalid
//!   UTF-8 or unparseable JSON is answered with `bad-request` instead of
//!   killing the connection; lines over `max_line_bytes` are dropped
//!   with `line-too-large` (bounded buffer memory), and a connection
//!   exceeding `max_line_strikes` garbage lines is closed with a final
//!   envelope — the chaos suite (`tests/chaos.rs`) drives all of these
//!   through real sockets.
//! * **Deadlines**: each job records its enqueue instant; a worker that
//!   dequeues an already-expired job answers `deadline-exceeded` without
//!   doing the work (shedding load exactly when it is oldest).
//! * **Out-of-order completion**: workers write responses directly to
//!   the client socket (one write mutex per connection); the echoed `id`
//!   lets pipelining clients match responses to requests.
//! * **Graceful shutdown**: [`Server::shutdown`] stops accepting, lets
//!   connection readers wind down, then drops the queue sender so
//!   workers drain every in-flight job before exiting.

use crate::durability::{Durability, DurabilityConfig};
use crate::json::{self, Json};
use crate::proto::{err_envelope, ok_envelope, ErrorCode, Request};
use crate::router::ServeState;
use crossbeam::channel::{self, TrySendError};
use parking_lot::Mutex;
use probase_store::SharedStore;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Worker pool size.
    pub workers: usize,
    /// Bounded request queue capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Response cache capacity (entries, across all shards).
    pub cache_capacity: usize,
    /// Response cache shard count.
    pub cache_shards: usize,
    /// Per-request queue deadline; jobs older than this are shed.
    pub deadline: Duration,
    /// Maximum simultaneously open client connections; further connects
    /// are shed with a `too-many-connections` envelope instead of
    /// spawning an unbounded reader thread per socket.
    pub max_connections: usize,
    /// Per-request-line byte cap; longer lines are dropped with a
    /// `line-too-large` envelope (bounds per-connection buffer memory —
    /// without it one client streaming a newline-free line stalls a
    /// reader thread on an ever-growing buffer).
    pub max_line_bytes: usize,
    /// Per-connection strike limit for garbage input (unparseable JSON,
    /// invalid UTF-8, oversize lines). A connection that exceeds it is
    /// closed with a final error envelope — shedding the flood instead
    /// of burning a reader thread on it.
    pub max_line_strikes: u32,
    /// Durable write path (see [`crate::durability`]): `Some` runs crash
    /// recovery at startup, logs every `add-evidence` before acking,
    /// enables sandboxed `snapshot-load`, and spawns the background
    /// rebuild worker. `None` (the default) keeps writes memory-only.
    pub durability: Option<DurabilityConfig>,
    /// Addresses of this shard's replicas. When non-empty, every acked
    /// write is forwarded to each replica (synchronously, best-effort —
    /// a dead replica ticks `serve.replication.ship_failures`, never
    /// fails the primary's ack) and `snapshot-load` is disabled.
    pub replica_addrs: Vec<SocketAddr>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            queue_capacity: 1024,
            cache_capacity: 4096,
            cache_shards: 16,
            deadline: Duration::from_secs(2),
            max_connections: 1024,
            max_line_bytes: 256 * 1024,
            max_line_strikes: 8,
            durability: None,
            replica_addrs: Vec::new(),
        }
    }
}

/// Per-connection robustness limits, copied out of [`ServeConfig`].
#[derive(Debug, Clone, Copy)]
struct ConnLimits {
    max_line_bytes: usize,
    max_line_strikes: u32,
}

/// How often blocked reads wake up to check the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);

struct Job {
    id: u64,
    request: Request,
    enqueued_at: Instant,
    writer: Arc<Mutex<TcpStream>>,
}

/// A running server. Dropping it (or calling [`Server::shutdown`]) stops
/// accepting, drains in-flight requests, and joins every thread.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServeState>,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    job_tx: Option<channel::Sender<Job>>,
    rebuild_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the pool, and start serving `store` with a private
    /// metric registry.
    pub fn start(store: SharedStore, config: &ServeConfig) -> std::io::Result<Server> {
        Self::start_with_registry(store, config, Arc::new(probase_obs::Registry::new()))
    }

    /// Like [`Server::start`] but recording `serve.*` metrics into an
    /// existing [`probase_obs::Registry`] — pass the process-global one
    /// to fold endpoint metrics into a pipeline-wide report.
    pub fn start_with_registry(
        store: SharedStore,
        config: &ServeConfig,
        registry: Arc<probase_obs::Registry>,
    ) -> std::io::Result<Server> {
        // Open the durable write path (crash recovery runs here, before
        // the listener binds — no request ever sees pre-recovery state).
        let durability = match &config.durability {
            Some(cfg) => Some(Arc::new(
                Durability::open(cfg, &store, &registry).map_err(std::io::Error::other)?,
            )),
            None => None,
        };
        let state = Arc::new(ServeState::with_durability(
            store,
            config.cache_capacity,
            config.cache_shards,
            registry.clone(),
            durability.clone(),
        ));
        if !config.replica_addrs.is_empty() {
            state.set_replicas(config.replica_addrs.clone(), &registry);
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (job_tx, job_rx) = channel::bounded::<Job>(config.queue_capacity.max(1));

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let rx = job_rx.clone();
            let state = state.clone();
            let deadline = config.deadline;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("probase-serve-worker-{i}"))
                    .spawn(move || worker_loop(rx, state, deadline))?,
            );
        }

        let accept_handle = {
            let state = state.clone();
            let shutdown = shutdown.clone();
            let job_tx = job_tx.clone();
            let max_connections = config.max_connections.max(1);
            let limits = ConnLimits {
                max_line_bytes: config.max_line_bytes.max(64),
                max_line_strikes: config.max_line_strikes.max(1),
            };
            std::thread::Builder::new()
                .name("probase-serve-accept".to_string())
                .spawn(move || {
                    accept_loop(listener, state, shutdown, job_tx, max_connections, limits)
                })?
        };

        // Background rebuild worker: off the request path entirely —
        // readers keep hitting the current graph while it refits
        // plausibility and checkpoints; only the final hot swap touches
        // the store's write lock.
        let rebuild_handle = match &durability {
            Some(d) if d.has_background_trigger() => {
                let d = d.clone();
                let state = state.clone();
                let shutdown = shutdown.clone();
                Some(
                    std::thread::Builder::new()
                        .name("probase-serve-rebuild".to_string())
                        .spawn(move || rebuild_loop(d, state, shutdown))?,
                )
            }
            _ => None,
        };

        Ok(Server {
            addr,
            state,
            shutdown,
            accept_handle: Some(accept_handle),
            workers,
            job_tx: Some(job_tx),
            rebuild_handle,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (store handle, metrics) — tests write through
    /// this to exercise cache invalidation out-of-band.
    pub fn state(&self) -> Arc<ServeState> {
        self.state.clone()
    }

    /// Stop accepting, drain in-flight requests, join all threads.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept() call; the backlogged dummy connection is
        // never served — connect() itself succeeds either way.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // All connection readers have exited (the accept thread joins
        // them), so dropping our sender closes the channel once the
        // queue drains; workers then see Err(recv) and exit.
        self.job_tx = None;
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.rebuild_handle.take() {
            let _ = h.join();
        }
        // Flush any appends a batched fsync policy is still holding.
        if let Some(d) = self.state.durability() {
            d.sync_all();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    state: Arc<ServeState>,
    shutdown: Arc<AtomicBool>,
    job_tx: channel::Sender<Job>,
    max_connections: usize,
    limits: ConnLimits,
) {
    let mut conn_handles: Vec<JoinHandle<()>> = Vec::new();
    // Open-connection count for the admission guard. Tracked here (not
    // via the telemetry gauge) so admission is exact: incremented before
    // the reader thread spawns, decremented when it exits.
    let open = Arc::new(AtomicUsize::new(0));
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if open.load(Ordering::SeqCst) >= max_connections {
                    // Shed with a proper envelope, not a silent close —
                    // clients can tell "at capacity, retry later" from a
                    // network failure. Short write timeout: the accept
                    // thread must never block on a misbehaving peer.
                    state.metrics().connection_rejected();
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
                    let mut text =
                        err_envelope(0, ErrorCode::TooManyConnections, "connection limit reached")
                            .to_string();
                    text.push('\n');
                    let _ = stream.write_all(text.as_bytes());
                    continue; // dropping the stream closes it
                }
                open.fetch_add(1, Ordering::SeqCst);
                let state = state.clone();
                let shutdown = shutdown.clone();
                let job_tx = job_tx.clone();
                let open_guard = open.clone();
                conn_handles.retain(|h| !h.is_finished());
                let spawned = std::thread::Builder::new()
                    .name("probase-serve-conn".to_string())
                    .spawn(move || {
                        connection_loop(stream, state, shutdown, job_tx, limits);
                        open_guard.fetch_sub(1, Ordering::SeqCst);
                    });
                match spawned {
                    Ok(h) => conn_handles.push(h),
                    Err(_) => {
                        // Thread exhaustion: drop the connection.
                        open.fetch_sub(1, Ordering::SeqCst);
                        continue;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    for h in conn_handles {
        let _ = h.join();
    }
}

fn connection_loop(
    stream: TcpStream,
    state: Arc<ServeState>,
    shutdown: Arc<AtomicBool>,
    job_tx: channel::Sender<Job>,
    limits: ConnLimits,
) {
    state.metrics().connection_opened();
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => {
            state.metrics().connection_closed();
            return;
        }
    };
    // Byte-level line reader (not `read_line`): garbage bytes must be
    // answered with a `bad-request` envelope, not kill the connection
    // with an InvalidData error the way a `String` reader would. A
    // timeout mid-line leaves the partial line in `buf`; the next pass
    // keeps appending, so requests survive slow writers — up to
    // `max_line_bytes`, at which point the line is shed and its
    // remaining bytes discarded (memory stays bounded even against a
    // slow-loris sender that never sends the newline).
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    let mut discarding = false;
    let mut strikes = 0u32;
    loop {
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => {
                // EOF; a final unterminated line is still served.
                if !buf.is_empty() && !discarding && buf.len() <= limits.max_line_bytes {
                    let _ = process_line(&buf, &state, &writer, &job_tx);
                }
                break;
            }
            Ok(_) => {
                let complete = buf.ends_with(b"\n");
                if buf.len() > limits.max_line_bytes {
                    state.metrics().oversize_line();
                    strikes += 1;
                    write_line(
                        &writer,
                        &err_envelope(
                            0,
                            ErrorCode::LineTooLarge,
                            &format!("request line exceeds {} bytes", limits.max_line_bytes),
                        ),
                    );
                    if strikes >= limits.max_line_strikes {
                        shed_connection(&state, &writer);
                        break;
                    }
                    discarding = !complete;
                    buf.clear();
                    continue;
                }
                if !complete {
                    // Partial line before EOF; the next read returns
                    // Ok(0) and serves it.
                    continue;
                }
                if discarding {
                    // Tail of an already-shed oversize line.
                    discarding = false;
                    buf.clear();
                    continue;
                }
                if !process_line(&buf, &state, &writer, &job_tx) {
                    strikes += 1;
                    if strikes >= limits.max_line_strikes {
                        shed_connection(&state, &writer);
                        break;
                    }
                }
                buf.clear();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Bound the partial-line buffer while still mid-line.
                if !discarding && buf.len() > limits.max_line_bytes {
                    state.metrics().oversize_line();
                    strikes += 1;
                    write_line(
                        &writer,
                        &err_envelope(
                            0,
                            ErrorCode::LineTooLarge,
                            &format!("request line exceeds {} bytes", limits.max_line_bytes),
                        ),
                    );
                    if strikes >= limits.max_line_strikes {
                        shed_connection(&state, &writer);
                        break;
                    }
                    discarding = true;
                    buf.clear();
                } else if discarding {
                    buf.clear();
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    state.metrics().connection_closed();
}

/// Final envelope before closing a connection that exceeded its garbage
/// strike limit.
fn shed_connection(state: &Arc<ServeState>, writer: &Arc<Mutex<TcpStream>>) {
    write_line(
        writer,
        &err_envelope(
            0,
            ErrorCode::BadRequest,
            "too many malformed lines; closing connection",
        ),
    );
    let _ = writer.lock().shutdown(std::net::Shutdown::Both);
    state.metrics().bad_request();
}

/// Parse one raw request line and enqueue it (or answer its error).
/// Returns `false` when the line was garbage — invalid UTF-8 or
/// unparseable JSON — which counts as a strike against the connection;
/// well-formed JSON with bad parameters is a normal `bad-request` and
/// does not.
fn process_line(
    raw: &[u8],
    state: &Arc<ServeState>,
    writer: &Arc<Mutex<TcpStream>>,
    job_tx: &channel::Sender<Job>,
) -> bool {
    let Ok(text) = std::str::from_utf8(raw) else {
        state.metrics().malformed_line();
        state.metrics().bad_request();
        write_line(
            writer,
            &err_envelope(0, ErrorCode::BadRequest, "request line is not valid UTF-8"),
        );
        return false;
    };
    let line = text.trim();
    if line.is_empty() {
        return true; // blank keep-alive lines are fine
    }
    let value = match json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            state.metrics().malformed_line();
            state.metrics().bad_request();
            write_line(
                writer,
                &err_envelope(0, ErrorCode::BadRequest, &e.to_string()),
            );
            return false;
        }
    };
    // Echo the caller's id even when the typed parse fails, so pipelined
    // clients can correlate the error with the request that caused it.
    let raw_id = value.get("id").and_then(Json::as_u64).unwrap_or(0);
    let (id, request) = match Request::from_json(&value) {
        Ok(pair) => pair,
        Err(detail) => {
            state.metrics().bad_request();
            write_line(
                writer,
                &err_envelope(raw_id, ErrorCode::BadRequest, &detail),
            );
            return true;
        }
    };
    let job = Job {
        id,
        request,
        enqueued_at: Instant::now(),
        writer: writer.clone(),
    };
    match job_tx.try_send(job) {
        Ok(()) => state.metrics().enqueued(),
        Err(TrySendError::Full(job)) => {
            state.metrics().rejected();
            write_line(
                writer,
                &err_envelope(job.id, ErrorCode::Overloaded, "request queue full"),
            );
        }
        Err(TrySendError::Disconnected(job)) => {
            write_line(
                writer,
                &err_envelope(job.id, ErrorCode::Internal, "server shutting down"),
            );
        }
    }
    true
}

/// How often the rebuild worker checks its triggers.
const REBUILD_POLL: Duration = Duration::from_millis(25);

fn rebuild_loop(durability: Arc<Durability>, state: Arc<ServeState>, shutdown: Arc<AtomicBool>) {
    while !shutdown.load(Ordering::SeqCst) {
        if durability.should_rebuild() {
            // Failures are counted in serve.rebuild.failures and the
            // writes stay in the WAL — the next cycle retries.
            if let Ok(Some(_)) = durability.rebuild(state.store()) {
                // Re-derive the query model eagerly so the first reader
                // after the swap does not pay for it.
                state.refresh_model();
            }
        }
        std::thread::sleep(REBUILD_POLL);
    }
}

fn worker_loop(rx: channel::Receiver<Job>, state: Arc<ServeState>, deadline: Duration) {
    while let Ok(job) = rx.recv() {
        state.metrics().dequeued();
        let idx = job.request.endpoint_index();
        if job.enqueued_at.elapsed() > deadline {
            state.metrics().deadline_expired();
            state
                .metrics()
                .record_request(idx, job.enqueued_at.elapsed(), true);
            write_line(
                &job.writer,
                &err_envelope(job.id, ErrorCode::DeadlineExceeded, "expired in queue"),
            );
            continue;
        }
        let started = Instant::now();
        // A handler panic (e.g. a pathological snapshot) must not kill
        // the worker; it becomes an `internal` error response.
        let outcome = catch_unwind(AssertUnwindSafe(|| state.handle(&job.request)));
        let envelope = match outcome {
            Ok((version, Ok(data))) => {
                state
                    .metrics()
                    .record_request(idx, started.elapsed(), false);
                ok_envelope(job.id, version, data)
            }
            Ok((_, Err((code, detail)))) => {
                state.metrics().record_request(idx, started.elapsed(), true);
                err_envelope(job.id, code, &detail)
            }
            Err(_) => {
                state.metrics().record_request(idx, started.elapsed(), true);
                err_envelope(job.id, ErrorCode::Internal, "handler panicked")
            }
        };
        write_line(&job.writer, &envelope);
    }
}

/// Serialize and send one response line; write errors mean the client
/// went away, which is not the server's problem.
fn write_line(writer: &Arc<Mutex<TcpStream>>, payload: &Json) {
    let mut text = payload.to_string();
    text.push('\n');
    let mut guard = writer.lock();
    let _ = guard.write_all(text.as_bytes());
    let _ = guard.flush();
}
