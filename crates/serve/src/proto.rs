//! The newline-delimited JSON request/response protocol.
//!
//! One request per line, one response per line. Every request is an
//! object with an `"endpoint"` string, an optional client-chosen
//! `"id"` (echoed back, default 0), and endpoint-specific parameters:
//!
//! ```text
//! {"id":1,"endpoint":"typicality","term":"country","direction":"instances","k":5}
//! {"id":1,"ok":true,"version":0,"data":{"items":[["USA",0.33],...]}}
//! {"id":2,"endpoint":"nope"}
//! {"id":2,"ok":false,"error":"bad-request","detail":"unknown endpoint \"nope\""}
//! ```
//!
//! Responses carry the store version the answer was computed against, so
//! clients can observe write visibility; error responses carry a stable
//! machine-readable `error` code plus a human `detail`.

use crate::json::Json;

/// Separator bytes for canonical cache keys (cannot appear in JSON
/// strings' meaning — they are plain unit/record separators, chosen so a
/// user-supplied term containing `|` cannot collide another key).
const KEY_SEP: char = '\u{1f}';
const ITEM_SEP: char = '\u{1e}';

/// Which way a typicality query runs (paper §4.2: `T(i|x)` vs `T(x|i)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Typical instances of a concept, ranked by `T(i|x)`.
    Instances,
    /// Typical concepts of a term, ranked by `T(x|i)`.
    Concepts,
}

/// Which node class a `labels` query lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelKind {
    /// Non-leaf nodes.
    Concepts,
    /// Leaf nodes.
    Instances,
}

/// A parsed, validated request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; returns the current store version.
    Ping,
    /// Is `child` isA `parent` (directly or transitively)?
    Isa {
        /// The hypernym label.
        parent: String,
        /// The hyponym label.
        child: String,
    },
    /// Top-`k` typicality ranking for `term`.
    Typicality {
        /// Query label.
        term: String,
        /// `T(i|x)` (instances) or `T(x|i)` (concepts).
        direction: Direction,
        /// Maximum results.
        k: usize,
    },
    /// Plausibility of the direct edge `parent → child`.
    Plausibility {
        /// Edge source label.
        parent: String,
        /// Edge target label.
        child: String,
    },
    /// Conceptualize a term set (paper §5.3.2).
    Conceptualize {
        /// The input instance terms.
        terms: Vec<String>,
        /// Maximum concepts returned.
        k: usize,
    },
    /// Rewrite a concept-bearing query into instance keyword queries
    /// (paper §5.3.1).
    SearchRewrite {
        /// The free-text query.
        query: String,
        /// Maximum rewrites returned.
        k: usize,
    },
    /// Table 4 graph statistics plus the serving metrics dump.
    Stats,
    /// Level summary, or per-sense levels of one label.
    Levels {
        /// Optional label to look up.
        term: Option<String>,
    },
    /// Sample node labels (loadgen uses this to build its key set).
    Labels {
        /// Concepts or instances.
        kind: LabelKind,
        /// Maximum labels returned.
        k: usize,
    },
    /// Write: add isA evidence, creating nodes as needed.
    AddEvidence {
        /// Hypernym label.
        parent: String,
        /// Hyponym label.
        child: String,
        /// Evidence count to add.
        count: u32,
    },
    /// Write: hot-swap the whole graph from a snapshot file on the
    /// server's filesystem.
    SnapshotLoad {
        /// Path to a `snapshot::to_bytes` file.
        path: String,
    },
    /// Migration: read (and optionally drain) the whole label component
    /// containing `label`. The response carries the component's labels
    /// and, unless `labels_only`, a base64 packed-snapshot payload.
    /// With `drain: true` the shard journals a drop, removes the
    /// component, and tombstones its labels as moved to `target`.
    ExportComponent {
        /// Any label inside the component.
        label: String,
        /// When true, remove the component after exporting (the second,
        /// destructive half of a migration). False = idempotent peek.
        drain: bool,
        /// Shard index that owns the component after a drain (recorded
        /// in tombstones and the drop journal). Required when draining.
        target: Option<u32>,
        /// When true, skip encoding the payload (cheap sizing peek).
        labels_only: bool,
    },
    /// Migration: graft an exported component onto this shard. The
    /// payload is journaled in the WAL before the graft is applied.
    ImportComponent {
        /// Shard index the component is moving from.
        source: u32,
        /// Base64 packed-snapshot bytes from an `export-component`.
        payload: String,
    },
}

/// Largest accepted `k` (bounds response size).
pub const MAX_K: usize = 1000;

/// All endpoint names, in metric-index order. Keep in sync with
/// [`Request::endpoint_index`].
pub const ENDPOINTS: [&str; 13] = [
    "ping",
    "isa",
    "typicality",
    "plausibility",
    "conceptualize",
    "search-rewrite",
    "stats",
    "levels",
    "labels",
    "add-evidence",
    "snapshot-load",
    "export-component",
    "import-component",
];

impl Request {
    /// The endpoint name on the wire.
    pub fn endpoint(&self) -> &'static str {
        ENDPOINTS[self.endpoint_index()]
    }

    /// Whether retrying this request cannot change server state: true
    /// for every read, false for the writes (`add-evidence` would
    /// double-count evidence, `snapshot-load` would double-swap, a
    /// draining `export-component` would remove twice, and
    /// `import-component` would double-merge). The client's retry
    /// machinery refuses to retry non-idempotent requests.
    pub fn is_idempotent(&self) -> bool {
        match self {
            Request::AddEvidence { .. }
            | Request::SnapshotLoad { .. }
            | Request::ImportComponent { .. } => false,
            Request::ExportComponent { drain, .. } => !drain,
            _ => true,
        }
    }

    /// Index into [`ENDPOINTS`] (and the per-endpoint metrics table).
    pub fn endpoint_index(&self) -> usize {
        match self {
            Request::Ping => 0,
            Request::Isa { .. } => 1,
            Request::Typicality { .. } => 2,
            Request::Plausibility { .. } => 3,
            Request::Conceptualize { .. } => 4,
            Request::SearchRewrite { .. } => 5,
            Request::Stats => 6,
            Request::Levels { .. } => 7,
            Request::Labels { .. } => 8,
            Request::AddEvidence { .. } => 9,
            Request::SnapshotLoad { .. } => 10,
            Request::ExportComponent { .. } => 11,
            Request::ImportComponent { .. } => 12,
        }
    }

    /// Canonical cache key (without the version suffix), or `None` if the
    /// endpoint must not be cached. Writes are never cached; `stats` is
    /// uncached because it embeds live serving metrics; `ping` is cheaper
    /// than a cache probe.
    pub fn cache_key(&self) -> Option<String> {
        let mut key = String::with_capacity(48);
        key.push_str(self.endpoint());
        key.push(KEY_SEP);
        match self {
            Request::Ping
            | Request::Stats
            | Request::AddEvidence { .. }
            | Request::SnapshotLoad { .. }
            | Request::ExportComponent { .. }
            | Request::ImportComponent { .. } => return None,
            Request::Isa { parent, child } | Request::Plausibility { parent, child } => {
                key.push_str(parent);
                key.push(KEY_SEP);
                key.push_str(child);
            }
            Request::Typicality { term, direction, k } => {
                key.push(match direction {
                    Direction::Instances => 'i',
                    Direction::Concepts => 'c',
                });
                key.push(KEY_SEP);
                key.push_str(term);
                key.push(KEY_SEP);
                key.push_str(&k.to_string());
            }
            Request::Conceptualize { terms, k } => {
                for t in terms {
                    key.push_str(t);
                    key.push(ITEM_SEP);
                }
                key.push(KEY_SEP);
                key.push_str(&k.to_string());
            }
            Request::SearchRewrite { query, k } => {
                key.push_str(query);
                key.push(KEY_SEP);
                key.push_str(&k.to_string());
            }
            Request::Levels { term } => {
                if let Some(t) = term {
                    key.push_str(t);
                }
            }
            Request::Labels { kind, k } => {
                key.push(match kind {
                    LabelKind::Concepts => 'c',
                    LabelKind::Instances => 'i',
                });
                key.push(KEY_SEP);
                key.push_str(&k.to_string());
            }
        }
        Some(key)
    }

    /// Parse a request line's JSON into `(id, Request)`.
    pub fn from_json(v: &Json) -> Result<(u64, Request), String> {
        let id = v.get("id").and_then(Json::as_u64).unwrap_or(0);
        let endpoint = v
            .get("endpoint")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing \"endpoint\"".to_string())?;
        let req = match endpoint {
            "ping" => Request::Ping,
            "isa" => Request::Isa {
                parent: req_str(v, "parent")?,
                child: req_str(v, "child")?,
            },
            "typicality" => Request::Typicality {
                term: req_str(v, "term")?,
                direction: match v
                    .get("direction")
                    .and_then(Json::as_str)
                    .unwrap_or("instances")
                {
                    "instances" => Direction::Instances,
                    "concepts" => Direction::Concepts,
                    other => return Err(format!("bad direction {other:?}")),
                },
                k: opt_k(v)?,
            },
            "plausibility" => Request::Plausibility {
                parent: req_str(v, "parent")?,
                child: req_str(v, "child")?,
            },
            "conceptualize" => {
                let arr = v
                    .get("terms")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| "missing \"terms\" array".to_string())?;
                let terms = arr
                    .iter()
                    .map(|t| t.as_str().map(str::to_string))
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| "\"terms\" must be strings".to_string())?;
                if terms.is_empty() {
                    return Err("\"terms\" must be non-empty".to_string());
                }
                Request::Conceptualize {
                    terms,
                    k: opt_k(v)?,
                }
            }
            "search-rewrite" => Request::SearchRewrite {
                query: req_str(v, "query")?,
                k: opt_k(v)?,
            },
            "stats" => Request::Stats,
            "levels" => Request::Levels {
                term: v.get("term").and_then(Json::as_str).map(str::to_string),
            },
            "labels" => Request::Labels {
                kind: match v.get("kind").and_then(Json::as_str).unwrap_or("instances") {
                    "concepts" => LabelKind::Concepts,
                    "instances" => LabelKind::Instances,
                    other => return Err(format!("bad kind {other:?}")),
                },
                k: opt_k(v)?,
            },
            "add-evidence" => Request::AddEvidence {
                parent: req_str(v, "parent")?,
                child: req_str(v, "child")?,
                count: v
                    .get("count")
                    .and_then(Json::as_u64)
                    .filter(|&c| c >= 1 && c <= u32::MAX as u64)
                    .ok_or_else(|| "\"count\" must be an integer ≥ 1".to_string())?
                    as u32,
            },
            "snapshot-load" => Request::SnapshotLoad {
                path: req_str(v, "path")?,
            },
            "export-component" => {
                let drain = v.get("drain").and_then(Json::as_bool).unwrap_or(false);
                let target = match v.get("target") {
                    None => None,
                    Some(j) => Some(
                        j.as_u64()
                            .filter(|&t| t <= u32::MAX as u64)
                            .ok_or_else(|| "\"target\" must be a shard index".to_string())?
                            as u32,
                    ),
                };
                if drain && target.is_none() {
                    return Err("draining export requires \"target\"".to_string());
                }
                Request::ExportComponent {
                    label: req_str(v, "label")?,
                    drain,
                    target,
                    labels_only: v
                        .get("labels_only")
                        .and_then(Json::as_bool)
                        .unwrap_or(false),
                }
            }
            "import-component" => Request::ImportComponent {
                source: v
                    .get("source")
                    .and_then(Json::as_u64)
                    .filter(|&s| s <= u32::MAX as u64)
                    .ok_or_else(|| "\"source\" must be a shard index".to_string())?
                    as u32,
                payload: req_str(v, "payload")?,
            },
            other => return Err(format!("unknown endpoint {other:?}")),
        };
        Ok((id, req))
    }

    /// Serialize this request (client side).
    pub fn to_json(&self, id: u64) -> Json {
        let mut pairs: Vec<(&str, Json)> = vec![
            ("id", Json::num(id as f64)),
            ("endpoint", Json::str(self.endpoint())),
        ];
        match self {
            Request::Ping | Request::Stats => {}
            Request::Isa { parent, child } | Request::Plausibility { parent, child } => {
                pairs.push(("parent", Json::str(parent.clone())));
                pairs.push(("child", Json::str(child.clone())));
            }
            Request::Typicality { term, direction, k } => {
                pairs.push(("term", Json::str(term.clone())));
                pairs.push((
                    "direction",
                    Json::str(match direction {
                        Direction::Instances => "instances",
                        Direction::Concepts => "concepts",
                    }),
                ));
                pairs.push(("k", Json::num(*k as f64)));
            }
            Request::Conceptualize { terms, k } => {
                pairs.push((
                    "terms",
                    Json::Arr(terms.iter().map(|t| Json::str(t.clone())).collect()),
                ));
                pairs.push(("k", Json::num(*k as f64)));
            }
            Request::SearchRewrite { query, k } => {
                pairs.push(("query", Json::str(query.clone())));
                pairs.push(("k", Json::num(*k as f64)));
            }
            Request::Levels { term } => {
                if let Some(t) = term {
                    pairs.push(("term", Json::str(t.clone())));
                }
            }
            Request::Labels { kind, k } => {
                pairs.push((
                    "kind",
                    Json::str(match kind {
                        LabelKind::Concepts => "concepts",
                        LabelKind::Instances => "instances",
                    }),
                ));
                pairs.push(("k", Json::num(*k as f64)));
            }
            Request::AddEvidence {
                parent,
                child,
                count,
            } => {
                pairs.push(("parent", Json::str(parent.clone())));
                pairs.push(("child", Json::str(child.clone())));
                pairs.push(("count", Json::num(*count as f64)));
            }
            Request::SnapshotLoad { path } => {
                pairs.push(("path", Json::str(path.clone())));
            }
            Request::ExportComponent {
                label,
                drain,
                target,
                labels_only,
            } => {
                pairs.push(("label", Json::str(label.clone())));
                if *drain {
                    pairs.push(("drain", Json::Bool(true)));
                }
                if let Some(t) = target {
                    pairs.push(("target", Json::num(*t as f64)));
                }
                if *labels_only {
                    pairs.push(("labels_only", Json::Bool(true)));
                }
            }
            Request::ImportComponent { source, payload } => {
                pairs.push(("source", Json::num(*source as f64)));
                pairs.push(("payload", Json::str(payload.clone())));
            }
        }
        Json::obj(pairs)
    }
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .ok_or_else(|| format!("missing or empty \"{key}\""))
}

fn opt_k(v: &Json) -> Result<usize, String> {
    match v.get("k") {
        None => Ok(10),
        Some(j) => {
            let k = j
                .as_u64()
                .ok_or_else(|| "\"k\" must be a non-negative integer".to_string())?;
            if k as usize > MAX_K {
                return Err(format!("\"k\" exceeds max {MAX_K}"));
            }
            Ok(k as usize)
        }
    }
}

/// Stable machine-readable error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// Malformed JSON or invalid parameters.
    BadRequest,
    /// The bounded request queue was full.
    Overloaded,
    /// The request waited in the queue past its deadline.
    DeadlineExceeded,
    /// The server is at its connection limit; the connection was shed.
    TooManyConnections,
    /// A request line exceeded the per-line byte limit and was dropped.
    LineTooLarge,
    /// The handler itself failed (e.g. unreadable snapshot file).
    Internal,
    /// The label's component migrated to another shard; the detail says
    /// which (`moved to shard N`). Routers learn the new owner and
    /// re-route; direct clients should re-resolve.
    Moved,
}

impl ErrorCode {
    /// Every code, in wire order. The chaos suite round-trips this list
    /// to guard the error-envelope contract.
    pub const ALL: [ErrorCode; 7] = [
        ErrorCode::BadRequest,
        ErrorCode::Overloaded,
        ErrorCode::DeadlineExceeded,
        ErrorCode::TooManyConnections,
        ErrorCode::LineTooLarge,
        ErrorCode::Internal,
        ErrorCode::Moved,
    ];

    /// The wire string for this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::TooManyConnections => "too-many-connections",
            ErrorCode::LineTooLarge => "line-too-large",
            ErrorCode::Internal => "internal",
            ErrorCode::Moved => "moved",
        }
    }

    /// Parse a wire string back into its code (the inverse of
    /// [`ErrorCode::as_str`]).
    pub fn parse(s: &str) -> Option<ErrorCode> {
        ErrorCode::ALL.into_iter().find(|c| c.as_str() == s)
    }

    /// Whether a client may safely retry an idempotent request that
    /// failed with this code: transient load-shedding outcomes are
    /// retryable, caller bugs and handler failures are not.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Overloaded | ErrorCode::DeadlineExceeded | ErrorCode::TooManyConnections
        )
    }
}

// Base64 (RFC 4648, standard alphabet, padded) for carrying packed
// snapshot bytes inside JSON string fields. Hand-rolled so the serve
// crate stays dependency-free, like the store's CRC-32.
const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encode bytes as standard padded base64.
pub fn b64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = (b[0] as u32) << 16 | (b[1] as u32) << 8 | b[2] as u32;
        out.push(B64[(n >> 18) as usize & 63] as char);
        out.push(B64[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            B64[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decode standard padded base64; `None` on any malformed input.
pub fn b64_decode(s: &str) -> Option<Vec<u8>> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    let val = |c: u8| -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some((c - b'A') as u32),
            b'a'..=b'z' => Some((c - b'a' + 26) as u32),
            b'0'..=b'9' => Some((c - b'0' + 52) as u32),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    };
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, chunk) in bytes.chunks(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pad = if last {
            chunk.iter().rev().take_while(|&&c| c == b'=').count()
        } else {
            0
        };
        if pad > 2 {
            return None;
        }
        let mut n = 0u32;
        for &c in &chunk[..4 - pad] {
            n = n << 6 | val(c)?;
        }
        n <<= 6 * pad as u32;
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

/// Build a success envelope: `{"id":..,"ok":true,"version":..,"data":..}`.
pub fn ok_envelope(id: u64, version: u64, data: Json) -> Json {
    Json::obj(vec![
        ("id", Json::num(id as f64)),
        ("ok", Json::Bool(true)),
        ("version", Json::num(version as f64)),
        ("data", data),
    ])
}

/// Build a success envelope carrying the partial-result marker a
/// sharded deployment sets when some shards were unreachable:
/// `{"id":..,"ok":true,"version":..,"degraded":true,"data":..}`.
/// Clients that predate sharding ignore the extra key.
pub fn degraded_envelope(id: u64, version: u64, data: Json) -> Json {
    Json::obj(vec![
        ("id", Json::num(id as f64)),
        ("ok", Json::Bool(true)),
        ("version", Json::num(version as f64)),
        ("degraded", Json::Bool(true)),
        ("data", data),
    ])
}

/// Build a success envelope with explicit partial-result markers:
/// `degraded` (some shards unreachable) and `truncated` (a cross-shard
/// recombination hit the `MAX_K` slice cap, so the tail may be
/// incomplete). Either flag is omitted when false, so the output
/// matches [`ok_envelope`] / [`degraded_envelope`] byte-for-byte in
/// the unflagged cases.
pub fn annotated_envelope(
    id: u64,
    version: u64,
    degraded: bool,
    truncated: bool,
    data: Json,
) -> Json {
    let mut pairs = vec![
        ("id", Json::num(id as f64)),
        ("ok", Json::Bool(true)),
        ("version", Json::num(version as f64)),
    ];
    if degraded {
        pairs.push(("degraded", Json::Bool(true)));
    }
    if truncated {
        pairs.push(("truncated", Json::Bool(true)));
    }
    pairs.push(("data", data));
    Json::obj(pairs)
}

/// Build an error envelope: `{"id":..,"ok":false,"error":..,"detail":..}`.
pub fn err_envelope(id: u64, code: ErrorCode, detail: &str) -> Json {
    Json::obj(vec![
        ("id", Json::num(id as f64)),
        ("ok", Json::Bool(false)),
        ("error", Json::str(code.as_str())),
        ("detail", Json::str(detail)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn roundtrip(req: Request) {
        let wire = req.to_json(7).to_string();
        let (id, back) = Request::from_json(&json::parse(&wire).unwrap()).unwrap();
        assert_eq!(id, 7);
        assert_eq!(back, req, "roundtrip failed for {wire}");
    }

    #[test]
    fn all_requests_roundtrip() {
        roundtrip(Request::Ping);
        roundtrip(Request::Isa {
            parent: "animal".into(),
            child: "cat".into(),
        });
        roundtrip(Request::Typicality {
            term: "country".into(),
            direction: Direction::Instances,
            k: 5,
        });
        roundtrip(Request::Typicality {
            term: "China".into(),
            direction: Direction::Concepts,
            k: 3,
        });
        roundtrip(Request::Plausibility {
            parent: "animal".into(),
            child: "cat".into(),
        });
        roundtrip(Request::Conceptualize {
            terms: vec!["China".into(), "India".into()],
            k: 8,
        });
        roundtrip(Request::SearchRewrite {
            query: "database conferences".into(),
            k: 4,
        });
        roundtrip(Request::Stats);
        roundtrip(Request::Levels { term: None });
        roundtrip(Request::Levels {
            term: Some("animal".into()),
        });
        roundtrip(Request::Labels {
            kind: LabelKind::Concepts,
            k: 20,
        });
        roundtrip(Request::AddEvidence {
            parent: "country".into(),
            child: "Chile".into(),
            count: 2,
        });
        roundtrip(Request::SnapshotLoad {
            path: "/tmp/x.pb".into(),
        });
        roundtrip(Request::ExportComponent {
            label: "apple".into(),
            drain: false,
            target: None,
            labels_only: true,
        });
        roundtrip(Request::ExportComponent {
            label: "apple".into(),
            drain: true,
            target: Some(2),
            labels_only: false,
        });
        roundtrip(Request::ImportComponent {
            source: 3,
            payload: "UEJTUA==".into(),
        });
    }

    #[test]
    fn defaults_applied() {
        let v = json::parse(r#"{"endpoint":"typicality","term":"x"}"#).unwrap();
        let (id, req) = Request::from_json(&v).unwrap();
        assert_eq!(id, 0);
        assert_eq!(
            req,
            Request::Typicality {
                term: "x".into(),
                direction: Direction::Instances,
                k: 10
            }
        );
    }

    #[test]
    fn rejects_bad_requests() {
        for bad in [
            r#"{"id":1}"#,
            r#"{"endpoint":"nope"}"#,
            r#"{"endpoint":"isa","parent":"a"}"#,
            r#"{"endpoint":"isa","parent":"","child":"b"}"#,
            r#"{"endpoint":"typicality","term":"x","k":5000}"#,
            r#"{"endpoint":"typicality","term":"x","direction":"sideways"}"#,
            r#"{"endpoint":"conceptualize","terms":[]}"#,
            r#"{"endpoint":"conceptualize","terms":[1]}"#,
            r#"{"endpoint":"add-evidence","parent":"a","child":"b","count":0}"#,
            r#"{"endpoint":"add-evidence","parent":"a","child":"b"}"#,
            r#"{"endpoint":"export-component","label":"a","drain":true}"#,
            r#"{"endpoint":"export-component","label":"","drain":false}"#,
            r#"{"endpoint":"import-component","payload":"AA=="}"#,
            r#"{"endpoint":"import-component","source":1,"payload":""}"#,
        ] {
            let v = json::parse(bad).unwrap();
            assert!(Request::from_json(&v).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn cache_keys_distinguish_requests() {
        let keys: Vec<Option<String>> = vec![
            Request::Isa {
                parent: "a".into(),
                child: "b".into(),
            }
            .cache_key(),
            Request::Isa {
                parent: "b".into(),
                child: "a".into(),
            }
            .cache_key(),
            Request::Plausibility {
                parent: "a".into(),
                child: "b".into(),
            }
            .cache_key(),
            Request::Typicality {
                term: "a".into(),
                direction: Direction::Instances,
                k: 5,
            }
            .cache_key(),
            Request::Typicality {
                term: "a".into(),
                direction: Direction::Concepts,
                k: 5,
            }
            .cache_key(),
            Request::Typicality {
                term: "a".into(),
                direction: Direction::Concepts,
                k: 6,
            }
            .cache_key(),
            Request::Conceptualize {
                terms: vec!["a".into(), "b".into()],
                k: 5,
            }
            .cache_key(),
            Request::Conceptualize {
                terms: vec!["ab".into()],
                k: 5,
            }
            .cache_key(),
            Request::Levels { term: None }.cache_key(),
            Request::Levels {
                term: Some("a".into()),
            }
            .cache_key(),
            Request::Labels {
                kind: LabelKind::Concepts,
                k: 5,
            }
            .cache_key(),
            Request::Labels {
                kind: LabelKind::Instances,
                k: 5,
            }
            .cache_key(),
            Request::SearchRewrite {
                query: "a".into(),
                k: 5,
            }
            .cache_key(),
        ];
        let mut seen = std::collections::HashSet::new();
        for k in keys {
            let k = k.expect("read endpoints are cacheable");
            assert!(seen.insert(k.clone()), "duplicate cache key {k:?}");
        }
    }

    #[test]
    fn writes_and_stats_not_cacheable() {
        assert_eq!(Request::Ping.cache_key(), None);
        assert_eq!(Request::Stats.cache_key(), None);
        assert_eq!(
            Request::AddEvidence {
                parent: "a".into(),
                child: "b".into(),
                count: 1
            }
            .cache_key(),
            None
        );
        assert_eq!(Request::SnapshotLoad { path: "p".into() }.cache_key(), None);
        assert_eq!(
            Request::ExportComponent {
                label: "a".into(),
                drain: false,
                target: None,
                labels_only: false
            }
            .cache_key(),
            None
        );
        assert_eq!(
            Request::ImportComponent {
                source: 0,
                payload: "AA==".into()
            }
            .cache_key(),
            None
        );
    }

    #[test]
    fn envelopes() {
        let ok = ok_envelope(3, 9, Json::obj(vec![("x", Json::num(1))]));
        assert_eq!(
            ok.to_string(),
            r#"{"id":3,"ok":true,"version":9,"data":{"x":1}}"#
        );
        let err = err_envelope(4, ErrorCode::Overloaded, "queue full");
        assert_eq!(
            err.to_string(),
            r#"{"id":4,"ok":false,"error":"overloaded","detail":"queue full"}"#
        );
    }

    #[test]
    fn error_codes_roundtrip_and_are_unique() {
        // The error envelope contract the chaos suite (and every
        // retrying client) relies on: each code has a distinct wire
        // string that parses back to exactly that code.
        let mut seen = std::collections::HashSet::new();
        for code in ErrorCode::ALL {
            let wire = code.as_str();
            assert!(seen.insert(wire), "duplicate wire string {wire:?}");
            assert_eq!(ErrorCode::parse(wire), Some(code), "{wire:?} round-trips");
        }
        assert_eq!(seen.len(), ErrorCode::ALL.len());
        assert_eq!(ErrorCode::parse("nope"), None);
        assert_eq!(ErrorCode::parse(""), None);
        assert_eq!(ErrorCode::parse("Bad-Request"), None, "codes are exact");
    }

    #[test]
    fn retryable_codes_are_the_shedding_ones() {
        for code in ErrorCode::ALL {
            let expect = matches!(
                code,
                ErrorCode::Overloaded | ErrorCode::DeadlineExceeded | ErrorCode::TooManyConnections
            );
            assert_eq!(code.retryable(), expect, "{:?}", code);
        }
    }

    #[test]
    fn idempotence_matches_write_surface() {
        assert!(Request::Ping.is_idempotent());
        assert!(Request::Stats.is_idempotent());
        assert!(Request::Isa {
            parent: "a".into(),
            child: "b".into()
        }
        .is_idempotent());
        assert!(!Request::AddEvidence {
            parent: "a".into(),
            child: "b".into(),
            count: 1
        }
        .is_idempotent());
        assert!(!Request::SnapshotLoad { path: "p".into() }.is_idempotent());
        assert!(Request::ExportComponent {
            label: "a".into(),
            drain: false,
            target: None,
            labels_only: false
        }
        .is_idempotent());
        assert!(!Request::ExportComponent {
            label: "a".into(),
            drain: true,
            target: Some(1),
            labels_only: false
        }
        .is_idempotent());
        assert!(!Request::ImportComponent {
            source: 0,
            payload: "AA==".into()
        }
        .is_idempotent());
    }

    #[test]
    fn endpoint_indexes_consistent() {
        let reqs = [
            Request::Ping,
            Request::Isa {
                parent: "a".into(),
                child: "b".into(),
            },
            Request::Typicality {
                term: "a".into(),
                direction: Direction::Instances,
                k: 1,
            },
            Request::Plausibility {
                parent: "a".into(),
                child: "b".into(),
            },
            Request::Conceptualize {
                terms: vec!["a".into()],
                k: 1,
            },
            Request::SearchRewrite {
                query: "a".into(),
                k: 1,
            },
            Request::Stats,
            Request::Levels { term: None },
            Request::Labels {
                kind: LabelKind::Instances,
                k: 1,
            },
            Request::AddEvidence {
                parent: "a".into(),
                child: "b".into(),
                count: 1,
            },
            Request::SnapshotLoad { path: "p".into() },
            Request::ExportComponent {
                label: "a".into(),
                drain: false,
                target: None,
                labels_only: false,
            },
            Request::ImportComponent {
                source: 0,
                payload: "AA==".into(),
            },
        ];
        assert_eq!(reqs.len(), ENDPOINTS.len());
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.endpoint_index(), i);
            assert_eq!(r.endpoint(), ENDPOINTS[i]);
        }
    }

    #[test]
    fn annotated_envelope_flags() {
        let plain = annotated_envelope(1, 2, false, false, Json::num(0));
        assert_eq!(
            plain.to_string(),
            ok_envelope(1, 2, Json::num(0)).to_string()
        );
        let deg = annotated_envelope(1, 2, true, false, Json::num(0));
        assert_eq!(
            deg.to_string(),
            degraded_envelope(1, 2, Json::num(0)).to_string()
        );
        let trunc = annotated_envelope(1, 2, false, true, Json::num(0));
        assert_eq!(
            trunc.to_string(),
            r#"{"id":1,"ok":true,"version":2,"truncated":true,"data":0}"#
        );
        let both = annotated_envelope(1, 2, true, true, Json::num(0));
        assert!(both
            .to_string()
            .contains(r#""degraded":true,"truncated":true"#));
    }

    #[test]
    fn base64_roundtrips_and_rejects_garbage() {
        // RFC 4648 §10 test vectors.
        for (raw, enc) in [
            (&b""[..], ""),
            (&b"f"[..], "Zg=="),
            (&b"fo"[..], "Zm8="),
            (&b"foo"[..], "Zm9v"),
            (&b"foob"[..], "Zm9vYg=="),
            (&b"fooba"[..], "Zm9vYmE="),
            (&b"foobar"[..], "Zm9vYmFy"),
        ] {
            assert_eq!(b64_encode(raw), enc);
            assert_eq!(b64_decode(enc).as_deref(), Some(raw));
        }
        // Every binary byte value survives a roundtrip.
        let all: Vec<u8> = (0u8..=255).collect();
        assert_eq!(b64_decode(&b64_encode(&all)).as_deref(), Some(&all[..]));
        for bad in ["Zg=", "Zg=a", "Z===", "Zm9v!a==", "=Zg=", "ab"] {
            assert!(b64_decode(bad).is_none(), "{bad:?} should be rejected");
        }
    }
}
