//! Plausibility: the noisy-or evidence combination (paper §4.1, Eq. 1).
//!
//! A claim `E = (x isA y)` backed by evidence sentences `s_1..s_n` with
//! per-sentence confidences `p_1..p_n` is false only if *every* piece of
//! evidence is false; with page independence,
//!
//! ```text
//! P(x, y) = 1 − ∏ (1 − p_i)
//! ```
//!
//! Negative evidence (a part-of sentence claiming `y` is a *component* of
//! `x`) replaces its factor `1 − p_j` with `p_j`, pulling the plausibility
//! down — the paper's extension for integrating contradicting sources.

use crate::nbayes::EvidenceModel;
use probase_extract::{EvidenceRecord, Knowledge};
use probase_obs::Registry;
use probase_store::ConceptGraph;
use std::collections::{BTreeMap, HashMap};

/// Configuration of plausibility computation.
#[derive(Debug, Clone, Copy)]
pub struct PlausibilityConfig {
    /// Confidence assigned to one piece of negative (part-of) evidence.
    pub negative_confidence: f64,
    /// Cap on the number of evidence factors per pair — beyond this the
    /// noisy-or is saturated anyway and the extra work buys nothing.
    pub max_factors: usize,
}

impl Default for PlausibilityConfig {
    fn default() -> Self {
        Self {
            negative_confidence: 0.7,
            max_factors: 64,
        }
    }
}

/// Plausibility per pair of normalized labels. Backed by a `BTreeMap` so
/// iteration order is deterministic — ablation reports and the
/// parallel-vs-serial equality tests compare tables structurally.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlausibilityTable {
    map: BTreeMap<(String, String), f64>,
}

impl PlausibilityTable {
    /// Look up `P(x, y)`; unknown pairs default to 0.
    pub fn get(&self, x: &str, y: &str) -> f64 {
        self.map
            .get(&(x.to_string(), y.to_string()))
            .copied()
            .unwrap_or(0.0)
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&(String, String), &f64)> {
        self.map.iter()
    }
}

/// Compute plausibilities for every pair in the evidence log, folding in
/// the negative (part-of) evidence recorded in Γ. Reports `prob.*`
/// metrics to the process-global registry.
pub fn compute_plausibility(
    evidence: &[EvidenceRecord],
    knowledge: &Knowledge,
    model: &EvidenceModel,
    cfg: &PlausibilityConfig,
) -> PlausibilityTable {
    compute_plausibility_observed(evidence, knowledge, model, cfg, probase_obs::global())
}

/// [`compute_plausibility`] with an explicit metric registry.
pub fn compute_plausibility_observed(
    evidence: &[EvidenceRecord],
    knowledge: &Knowledge,
    model: &EvidenceModel,
    cfg: &PlausibilityConfig,
    registry: &Registry,
) -> PlausibilityTable {
    let evidence_scored = registry.counter("prob.evidence_scored");
    // Collect per-pair positive factor products.
    let mut product: HashMap<(String, String), (f64, usize)> = HashMap::new();
    for r in evidence {
        let key = (r.x.clone(), r.y.clone());
        let entry = product.entry(key).or_insert((1.0, 0));
        if entry.1 >= cfg.max_factors {
            continue;
        }
        let p = model.prob_true(r);
        evidence_scored.inc();
        entry.0 *= 1.0 - p;
        entry.1 += 1;
    }
    // Fold in negative evidence. The paper says to "replace the factor
    // 1−p_i with p_i" for a negative sentence, but read literally that
    // *raises* plausibility whenever p_i < 1; the stated intent is that
    // part-of sentences reduce it. We implement the intent: each negative
    // observation discounts the positive noisy-or by (1 − q), i.e.
    // `P = (1 − ∏(1−p_i)) · ∏(1−q_j)` (deviation documented in DESIGN.md).
    let mut discounts: HashMap<(String, String), f64> = HashMap::new();
    for (x, y, n) in knowledge.negatives() {
        let key = (
            knowledge.resolve(x).to_string(),
            knowledge.resolve(y).to_string(),
        );
        let d = discounts.entry(key).or_insert(1.0);
        for _ in 0..n.min(cfg.max_factors as u32) {
            *d *= 1.0 - cfg.negative_confidence;
        }
    }
    registry
        .counter("prob.noisyor_evaluations")
        .add(product.len() as u64);
    let map = product
        .into_iter()
        .map(|(k, (prod, _))| {
            let positive = 1.0 - prod.clamp(0.0, 1.0);
            let discount = discounts.get(&k).copied().unwrap_or(1.0);
            (k, (positive * discount).clamp(0.0, 1.0))
        })
        .collect();
    PlausibilityTable { map }
}

/// [`compute_plausibility`] sharded across `threads` scoped workers,
/// reporting to the process-global registry.
pub fn compute_plausibility_parallel(
    evidence: &[EvidenceRecord],
    knowledge: &Knowledge,
    model: &EvidenceModel,
    cfg: &PlausibilityConfig,
    threads: usize,
) -> PlausibilityTable {
    compute_plausibility_parallel_observed(
        evidence,
        knowledge,
        model,
        cfg,
        threads,
        probase_obs::global(),
    )
}

/// Parallel noisy-or with an explicit metric registry.
///
/// The per-pair noisy-or is embarrassingly parallel, but bit-identical
/// results demand the factor products multiply in the serial path's
/// order. So: group the evidence by pair in first-occurrence order
/// (capping at `max_factors`, exactly like the serial fold), shard the
/// *pairs* across workers, and multiply each pair's factors in evidence
/// order. Every float operation sequence per pair matches the serial
/// path, so the resulting table is equal — not just approximately.
pub fn compute_plausibility_parallel_observed(
    evidence: &[EvidenceRecord],
    knowledge: &Knowledge,
    model: &EvidenceModel,
    cfg: &PlausibilityConfig,
    threads: usize,
    registry: &Registry,
) -> PlausibilityTable {
    let threads = threads.max(1);
    if threads <= 1 {
        return compute_plausibility_observed(evidence, knowledge, model, cfg, registry);
    }
    registry.gauge("prob.parallel.threads").set(threads as i64);

    // Group evidence by pair, preserving evidence order within each pair
    // and the serial max_factors cap.
    let mut idx_of: HashMap<(&str, &str), usize> = HashMap::new();
    let mut pairs: Vec<(String, String)> = Vec::new();
    let mut recs: Vec<Vec<&EvidenceRecord>> = Vec::new();
    let mut scored = 0u64;
    for r in evidence {
        let i = *idx_of
            .entry((r.x.as_str(), r.y.as_str()))
            .or_insert_with(|| {
                pairs.push((r.x.clone(), r.y.clone()));
                recs.push(Vec::new());
                pairs.len() - 1
            });
        if recs[i].len() < cfg.max_factors {
            recs[i].push(r);
            scored += 1;
        }
    }
    registry.counter("prob.evidence_scored").add(scored);
    registry
        .counter("prob.noisyor_evaluations")
        .add(pairs.len() as u64);
    registry
        .counter("prob.parallel.pairs")
        .add(pairs.len() as u64);

    // Parallel map over pair shards: per-pair positive factor products.
    let chunk = recs.len().div_ceil(threads).max(1);
    let products: Vec<f64> = registry.stage("prob.parallel.noisyor").time(|| {
        std::thread::scope(|scope| {
            let handles: Vec<_> = recs
                .chunks(chunk)
                .map(|shard| {
                    scope.spawn(move || {
                        shard
                            .iter()
                            .map(|rs| {
                                let mut prod = 1.0f64;
                                for r in rs {
                                    prod *= 1.0 - model.prob_true(r);
                                }
                                prod
                            })
                            .collect::<Vec<f64>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("noisy-or shard panicked"))
                .collect()
        })
    });

    // Negative-evidence discounts: identical to the serial fold.
    let mut discounts: HashMap<(String, String), f64> = HashMap::new();
    for (x, y, n) in knowledge.negatives() {
        let key = (
            knowledge.resolve(x).to_string(),
            knowledge.resolve(y).to_string(),
        );
        let d = discounts.entry(key).or_insert(1.0);
        for _ in 0..n.min(cfg.max_factors as u32) {
            *d *= 1.0 - cfg.negative_confidence;
        }
    }
    let map = pairs
        .into_iter()
        .zip(products)
        .map(|(k, prod)| {
            let positive = 1.0 - prod.clamp(0.0, 1.0);
            let discount = discounts.get(&k).copied().unwrap_or(1.0);
            (k, (positive * discount).clamp(0.0, 1.0))
        })
        .collect();
    PlausibilityTable { map }
}

/// Write plausibilities onto a taxonomy graph's edges. Senses of the same
/// label share the pair-level plausibility (the evidence log is
/// label-level). Edges with no computed value keep their default.
/// Returns the number of edges annotated.
pub fn annotate_graph(graph: &mut ConceptGraph, table: &PlausibilityTable) -> usize {
    let mut updates = Vec::new();
    for (from, to, _) in graph.edges() {
        let p = table.get(graph.label(from), graph.label(to));
        if p > 0.0 {
            updates.push((from, to, p));
        }
    }
    let n = updates.len();
    for (from, to, p) in updates {
        graph.set_plausibility(from, to, p);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nbayes::{mk_record, PriorModel};
    use probase_corpus::sentence::PatternKind;

    fn model() -> EvidenceModel {
        EvidenceModel::Prior(PriorModel { base: 0.6 })
    }

    fn rec(x: &str, y: &str, q: f64) -> EvidenceRecord {
        mk_record(x, y, PatternKind::SuchAs, 0.5, q, 1, 2)
    }

    #[test]
    fn more_evidence_raises_plausibility() {
        let g = Knowledge::new();
        let m = model();
        let cfg = PlausibilityConfig::default();
        let one = compute_plausibility(&[rec("a", "b", 0.5)], &g, &m, &cfg);
        let three = compute_plausibility(
            &[rec("a", "b", 0.5), rec("a", "b", 0.5), rec("a", "b", 0.5)],
            &g,
            &m,
            &cfg,
        );
        assert!(three.get("a", "b") > one.get("a", "b"));
        assert!(one.get("a", "b") > 0.0);
        assert!(three.get("a", "b") < 1.0);
    }

    #[test]
    fn negative_evidence_lowers_plausibility() {
        let mut g = Knowledge::new();
        let car = g.intern("car");
        let wheel = g.intern("wheel");
        g.add_negative(car, wheel);
        let m = model();
        let cfg = PlausibilityConfig::default();
        let evidence = vec![rec("car", "wheel", 0.5), rec("car", "wheel", 0.5)];
        let with_neg = compute_plausibility(&evidence, &g, &m, &cfg);
        let without = compute_plausibility(&evidence, &Knowledge::new(), &m, &cfg);
        assert!(with_neg.get("car", "wheel") < without.get("car", "wheel"));
    }

    #[test]
    fn unknown_pair_is_zero() {
        let t = PlausibilityTable::default();
        assert_eq!(t.get("x", "y"), 0.0);
        assert!(t.is_empty());
    }

    #[test]
    fn plausibility_in_unit_interval() {
        let g = Knowledge::new();
        let m = model();
        let cfg = PlausibilityConfig::default();
        let mut ev = Vec::new();
        for i in 0..100 {
            ev.push(rec("a", "b", (i % 10) as f64 / 10.0));
        }
        let t = compute_plausibility(&ev, &g, &m, &cfg);
        let p = t.get("a", "b");
        assert!((0.0..=1.0).contains(&p));
        assert!(p > 0.99, "heavy evidence should near-saturate: {p}");
    }

    #[test]
    fn parallel_table_is_bit_identical_to_serial() {
        let mut g = Knowledge::new();
        let car = g.intern("x3");
        let wheel = g.intern("y3");
        g.add_negative(car, wheel);
        let m = model();
        let cfg = PlausibilityConfig {
            max_factors: 5,
            ..Default::default()
        };
        // 40 pairs, repeated records past the factor cap, varied quality.
        let mut ev = Vec::new();
        for i in 0..400u32 {
            let (x, y) = (format!("x{}", i % 40), format!("y{}", i % 40));
            ev.push(rec(&x, &y, (i % 9) as f64 / 10.0));
        }
        let serial = compute_plausibility(&ev, &g, &m, &cfg);
        for threads in [1, 2, 4, 8] {
            let par = compute_plausibility_parallel(&ev, &g, &m, &cfg, threads);
            assert_eq!(serial, par, "table differs at {threads} threads");
        }
    }

    #[test]
    fn annotate_graph_sets_edges() {
        let mut graph = ConceptGraph::new();
        let a = graph.ensure_node("animal", 0);
        let c = graph.ensure_node("cat", 0);
        graph.add_evidence(a, c, 3);
        let g = Knowledge::new();
        let m = model();
        let t = compute_plausibility(
            &[rec("animal", "cat", 0.8)],
            &g,
            &m,
            &PlausibilityConfig::default(),
        );
        let n = annotate_graph(&mut graph, &t);
        assert_eq!(n, 1);
        let e = graph.edge(a, c).unwrap();
        assert!(e.plausibility > 0.0 && e.plausibility < 1.0);
    }
}
