//! The Naive Bayes evidence model (paper §4.1, Eq. 2).
//!
//! Each piece of evidence `s_i` (one pair occurrence in one sentence) is
//! characterized by a feature vector `F_i` — the paper lists the PageRank
//! of the source page, the Hearst pattern used, list length, position of
//! the item, and so on. Assuming feature independence,
//!
//! ```text
//! p_i = p(s_i | F_i) = p(s_i) ∏ p(f | s_i)  /  Σ_{s ∈ {s_i, ¬s_i}} p(s) ∏ p(f | s)
//! ```
//!
//! The model is trained on evidence whose pair a [`SeedOracle`] can label
//! (the paper uses WordNet for this).

use crate::seed::SeedOracle;
use probase_corpus::sentence::PatternKind;
use probase_extract::EvidenceRecord;
use serde::{Deserialize, Serialize};

/// Number of discrete features.
const N_FEATURES: usize = 5;
/// Values per feature (upper bound; used for Laplace smoothing).
const FEATURE_CARD: [usize; N_FEATURES] = [6, 4, 4, 4, 3];

/// Discretize an evidence record into feature values.
fn featurize(r: &EvidenceRecord) -> [usize; N_FEATURES] {
    let pattern = r.pattern.hearst_index().unwrap_or(0);
    let bucket = |v: f64| -> usize {
        if v < 0.25 {
            0
        } else if v < 0.5 {
            1
        } else if v < 0.75 {
            2
        } else {
            3
        }
    };
    let position = match r.position {
        1 => 0,
        2 => 1,
        3 => 2,
        _ => 3,
    };
    let list_len = match r.list_len {
        1 => 0,
        2..=3 => 1,
        _ => 2,
    };
    [
        pattern,
        bucket(r.page_rank),
        bucket(r.source_quality),
        position,
        list_len,
    ]
}

/// A trained Naive Bayes evidence classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NaiveBayes {
    /// log p(class)
    log_prior: [f64; 2],
    /// log p(feature=v | class) per feature dimension.
    log_likelihood: Vec<[Vec<f64>; 2]>,
    /// Number of labeled examples seen per class.
    pub class_counts: [u64; 2],
}

impl NaiveBayes {
    /// Train on the evidence whose pairs the oracle can label. Returns
    /// `None` when fewer than `min_labeled` examples are labeled (the
    /// caller should fall back to a prior-only model).
    pub fn train(
        records: &[EvidenceRecord],
        oracle: &dyn SeedOracle,
        min_labeled: usize,
    ) -> Option<Self> {
        let mut class_counts = [0u64; 2];
        let mut feature_counts: Vec<[Vec<u64>; 2]> = FEATURE_CARD
            .iter()
            .map(|&card| [vec![0u64; card], vec![0u64; card]])
            .collect();
        for r in records {
            let Some(label) = oracle.label(&r.x, &r.y) else {
                continue;
            };
            let class = usize::from(label);
            class_counts[class] += 1;
            let f = featurize(r);
            for (dim, &v) in f.iter().enumerate() {
                feature_counts[dim][class][v] += 1;
            }
        }
        let total = class_counts[0] + class_counts[1];
        if (total as usize) < min_labeled || class_counts[0] == 0 || class_counts[1] == 0 {
            return None;
        }
        let log_prior = [
            ((class_counts[0] as f64 + 1.0) / (total as f64 + 2.0)).ln(),
            ((class_counts[1] as f64 + 1.0) / (total as f64 + 2.0)).ln(),
        ];
        let log_likelihood = feature_counts
            .iter()
            .enumerate()
            .map(|(dim, counts)| {
                let card = FEATURE_CARD[dim] as f64;
                let per_class = |class: usize| -> Vec<f64> {
                    let n = class_counts[class] as f64;
                    counts[class]
                        .iter()
                        .map(|&c| ((c as f64 + 1.0) / (n + card)).ln())
                        .collect()
                };
                [per_class(0), per_class(1)]
            })
            .collect();
        Some(Self {
            log_prior,
            log_likelihood,
            class_counts,
        })
    }

    /// Posterior probability that this evidence supports a true claim
    /// (Eq. 2). Clamped away from 0/1 so the noisy-or never saturates on a
    /// single sentence.
    pub fn prob_true(&self, r: &EvidenceRecord) -> f64 {
        let f = featurize(r);
        let mut log_odds = [self.log_prior[0], self.log_prior[1]];
        for (dim, &v) in f.iter().enumerate() {
            for (class, odds) in log_odds.iter_mut().enumerate() {
                *odds += self.log_likelihood[dim][class][v];
            }
        }
        let m = log_odds[0].max(log_odds[1]);
        let (e0, e1) = ((log_odds[0] - m).exp(), (log_odds[1] - m).exp());
        (e1 / (e0 + e1)).clamp(0.02, 0.98)
    }
}

/// Fallback evidence model when too little labeled data exists: a fixed
/// per-evidence confidence, lightly modulated by source quality.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PriorModel {
    pub base: f64,
}

impl Default for PriorModel {
    fn default() -> Self {
        Self { base: 0.55 }
    }
}

impl PriorModel {
    pub fn prob_true(&self, r: &EvidenceRecord) -> f64 {
        (self.base + 0.25 * (r.source_quality - 0.5)).clamp(0.05, 0.95)
    }
}

/// Either a trained model or the prior fallback.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum EvidenceModel {
    Trained(NaiveBayes),
    Prior(PriorModel),
}

impl EvidenceModel {
    /// Train if possible, else fall back.
    pub fn fit(records: &[EvidenceRecord], oracle: &dyn SeedOracle) -> Self {
        match NaiveBayes::train(records, oracle, 50) {
            Some(nb) => EvidenceModel::Trained(nb),
            None => EvidenceModel::Prior(PriorModel::default()),
        }
    }

    pub fn prob_true(&self, r: &EvidenceRecord) -> f64 {
        match self {
            EvidenceModel::Trained(nb) => nb.prob_true(r),
            EvidenceModel::Prior(p) => p.prob_true(r),
        }
    }
}

/// Convenience constructor for tests and synthetic evidence.
pub fn mk_record(
    x: &str,
    y: &str,
    pattern: PatternKind,
    page_rank: f64,
    source_quality: f64,
    position: u32,
    list_len: u32,
) -> EvidenceRecord {
    EvidenceRecord {
        x: x.to_string(),
        y: y.to_string(),
        sentence_id: 0,
        pattern,
        page_rank,
        source_quality,
        position,
        list_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::SeedSet;

    /// Synthetic training mix: good pairs come from high-quality pages,
    /// bad pairs from low-quality pages.
    fn training_records() -> (Vec<EvidenceRecord>, SeedSet) {
        let mut seed = SeedSet::new();
        seed.add_positive("animal", "cat");
        seed.add_term("rock");
        let mut recs = Vec::new();
        for i in 0..200 {
            let q = 0.7 + 0.2 * ((i % 3) as f64 / 3.0);
            recs.push(mk_record(
                "animal",
                "cat",
                PatternKind::SuchAs,
                0.5,
                q,
                1,
                3,
            ));
        }
        for i in 0..100 {
            let q = 0.2 + 0.1 * ((i % 3) as f64 / 3.0);
            recs.push(mk_record(
                "animal",
                "rock",
                PatternKind::OrOther,
                0.1,
                q,
                4,
                6,
            ));
        }
        (recs, seed)
    }

    #[test]
    fn trained_model_separates_quality() {
        let (recs, seed) = training_records();
        let nb = NaiveBayes::train(&recs, &seed, 50).expect("enough labels");
        let good = nb.prob_true(&mk_record("x", "y", PatternKind::SuchAs, 0.5, 0.8, 1, 3));
        let bad = nb.prob_true(&mk_record("x", "y", PatternKind::OrOther, 0.1, 0.25, 4, 6));
        assert!(good > bad, "good {good} vs bad {bad}");
        assert!(good > 0.5);
        assert!(bad < 0.5);
    }

    #[test]
    fn too_few_labels_returns_none() {
        let (recs, _) = training_records();
        let empty = SeedSet::new();
        assert!(NaiveBayes::train(&recs, &empty, 50).is_none());
    }

    #[test]
    fn fit_falls_back_to_prior() {
        let (recs, seed) = training_records();
        match EvidenceModel::fit(&recs, &seed) {
            EvidenceModel::Trained(_) => {}
            _ => panic!("expected trained"),
        }
        match EvidenceModel::fit(&recs, &SeedSet::new()) {
            EvidenceModel::Prior(_) => {}
            _ => panic!("expected prior fallback"),
        }
    }

    #[test]
    fn probabilities_clamped() {
        let (recs, seed) = training_records();
        let nb = NaiveBayes::train(&recs, &seed, 50).unwrap();
        for r in &recs {
            let p = nb.prob_true(r);
            assert!((0.02..=0.98).contains(&p));
        }
    }

    #[test]
    fn prior_model_tracks_quality() {
        let p = PriorModel::default();
        let hi = p.prob_true(&mk_record("x", "y", PatternKind::SuchAs, 0.5, 0.9, 1, 1));
        let lo = p.prob_true(&mk_record("x", "y", PatternKind::SuchAs, 0.5, 0.2, 1, 1));
        assert!(hi > lo);
    }
}
