//! The Urns redundancy model (Downey, Etzioni & Soderland, IJCAI 2005).
//!
//! Paper §4.1: "More sophisticated models (such as the Urns model \[11\])
//! can be used for plausibility." The Urns insight is that *repetition*
//! separates truth from noise: correct extractions are drawn from a much
//! smaller label set than errors, so a correct claim repeats far more
//! often. Observing a claim `k` times, the posterior that it is correct is
//!
//! ```text
//! p(correct | k) = π·P(k | λ_c) / (π·P(k | λ_c) + (1−π)·P(k | λ_e))
//! ```
//!
//! with Poisson repetition rates `λ_c ≫ λ_e`. The three parameters
//! `(π, λ_c, λ_e)` are fit to the observed count histogram by EM over a
//! two-component Poisson mixture — no labeled data needed, which is the
//! model's appeal over the supervised Naive Bayes of Eq. 2 (ablation AB4
//! compares them).

use probase_extract::Knowledge;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A fitted Urns model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UrnsModel {
    /// Prior probability that a distinct claim is correct.
    pub pi: f64,
    /// Mean repetition of correct claims.
    pub lambda_correct: f64,
    /// Mean repetition of erroneous claims.
    pub lambda_error: f64,
    /// EM iterations actually run.
    pub iterations: usize,
}

/// Truncated Poisson pmf in log space (counts start at 1: a claim we never
/// saw is not in the data, so the mixture is over `k ≥ 1`).
fn log_poisson_trunc(k: u32, lambda: f64) -> f64 {
    let lambda = lambda.max(1e-6);
    let k_f = k as f64;
    let mut log_fact = 0.0;
    for i in 2..=k.min(170) {
        log_fact += (i as f64).ln();
    }
    let log_pmf = k_f * lambda.ln() - lambda - log_fact;
    // Normalize by P(k >= 1) = 1 - e^{-lambda}.
    log_pmf - (1.0 - (-lambda).exp()).max(1e-12).ln()
}

impl UrnsModel {
    /// Fit by EM on a histogram of claim counts. `counts[i]` is the number
    /// of observations of the i-th distinct claim (each ≥ 1).
    pub fn fit(counts: &[u32], max_iters: usize) -> Self {
        assert!(!counts.is_empty(), "need at least one claim");
        // Histogram compression: EM over distinct k values.
        let mut hist: BTreeMap<u32, u64> = BTreeMap::new();
        for &c in counts {
            *hist.entry(c.max(1)).or_insert(0) += 1;
        }
        Self::fit_histogram(&hist, max_iters)
    }

    /// Fit by EM directly on a `count → multiplicity` histogram.
    ///
    /// This is the deterministic core: the map is iterated in sorted key
    /// order, so every float summation happens in the same order on every
    /// run and across processes. (The earlier `HashMap` histogram summed
    /// in hash-iteration order, which made the fitted parameters — and
    /// therefore snapshot plausibility bytes — vary between processes.)
    /// The incremental serve path maintains such a histogram across folds
    /// and refits from it without rescanning the graph.
    pub fn fit_histogram(hist: &BTreeMap<u32, u64>, max_iters: usize) -> Self {
        assert!(
            hist.values().any(|&w| w > 0),
            "need at least one claim in the histogram"
        );
        let n: f64 = hist.values().map(|&w| w as f64).sum();
        let mean = hist.iter().map(|(&k, &w)| k as f64 * w as f64).sum::<f64>() / n;

        // Initialization: errors ~1 repetition, correct ~ a few times mean.
        let mut pi: f64 = 0.5;
        let mut lc = (mean * 2.0).max(2.0);
        let mut le = (mean * 0.5).clamp(0.2, 1.0);
        let mut iterations = 0;
        for _ in 0..max_iters {
            iterations += 1;
            // E + M step fused, iterating distinct k in ascending order.
            let mut w_c = 0.0;
            let mut w_e = 0.0;
            let mut s_c = 0.0;
            let mut s_e = 0.0;
            for (&k, &w) in hist {
                let w = w as f64;
                let lc_ll = pi.max(1e-9).ln() + log_poisson_trunc(k, lc);
                let le_ll = (1.0 - pi).max(1e-9).ln() + log_poisson_trunc(k, le);
                let m = lc_ll.max(le_ll);
                let rc = (lc_ll - m).exp();
                let re = (le_ll - m).exp();
                let r = rc / (rc + re);
                w_c += w * r;
                w_e += w * (1.0 - r);
                s_c += w * r * k as f64;
                s_e += w * (1.0 - r) * k as f64;
            }
            let new_pi = (w_c / n).clamp(0.01, 0.99);
            let new_lc = (s_c / w_c.max(1e-9)).max(0.2);
            let new_le = (s_e / w_e.max(1e-9)).max(0.05);
            let delta = (new_pi - pi).abs() + (new_lc - lc).abs() + (new_le - le).abs();
            pi = new_pi;
            // Keep component identity: correct = the heavier-repetition one.
            if new_lc >= new_le {
                lc = new_lc;
                le = new_le;
            } else {
                lc = new_le;
                le = new_lc;
                pi = 1.0 - pi;
            }
            if delta < 1e-6 {
                break;
            }
        }
        Self {
            pi,
            lambda_correct: lc,
            lambda_error: le,
            iterations,
        }
    }

    /// Fit directly from a knowledge store's pair counts.
    pub fn fit_knowledge(g: &Knowledge, max_iters: usize) -> Self {
        let counts: Vec<u32> = g.pairs().map(|(_, _, n)| n).collect();
        Self::fit(&counts, max_iters)
    }

    /// Posterior probability that a claim observed `k` times is correct.
    pub fn plausibility(&self, k: u32) -> f64 {
        let k = k.max(1);
        let lc_ll = self.pi.max(1e-12).ln() + log_poisson_trunc(k, self.lambda_correct);
        let le_ll = (1.0 - self.pi).max(1e-12).ln() + log_poisson_trunc(k, self.lambda_error);
        let m = lc_ll.max(le_ll);
        let rc = (lc_ll - m).exp();
        let re = (le_ll - m).exp();
        (rc / (rc + re)).clamp(0.0, 1.0)
    }
}

/// Annotate a graph's edges with Urns plausibility from their counts.
/// Returns the number of edges annotated.
pub fn annotate_graph_urns(graph: &mut probase_store::ConceptGraph, model: &UrnsModel) -> usize {
    let updates: Vec<(probase_store::NodeId, probase_store::NodeId, f64)> = graph
        .edges()
        .map(|(f, t, d)| (f, t, model.plausibility(d.count)))
        .collect();
    let n = updates.len();
    for (f, t, p) in updates {
        graph.set_plausibility(f, t, p);
    }
    n
}

/// Like [`annotate_graph_urns`] but only writes edges whose plausibility
/// actually changes (bitwise), and returns how many were written. The
/// model is evaluated once per distinct count via a memo table, so a
/// refit that moves the parameters by nothing costs one read pass and
/// zero writes. This is the serve rebuild worker's fast path.
pub fn annotate_graph_urns_touched(
    graph: &mut probase_store::ConceptGraph,
    model: &UrnsModel,
) -> usize {
    let mut table: BTreeMap<u32, f64> = BTreeMap::new();
    let updates: Vec<(probase_store::NodeId, probase_store::NodeId, f64)> = graph
        .edges()
        .filter_map(|(f, t, d)| {
            let p = *table
                .entry(d.count)
                .or_insert_with(|| model.plausibility(d.count));
            (p.to_bits() != d.plausibility.to_bits()).then_some((f, t, p))
        })
        .collect();
    let n = updates.len();
    for (f, t, p) in updates {
        graph.set_plausibility(f, t, p);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Sample counts from a known mixture and check recovery.
    fn synthetic_counts(pi: f64, lc: f64, le: f64, n: usize, seed: u64) -> Vec<u32> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let lambda = if rng.gen_bool(pi) { lc } else { le };
            // Truncated Poisson sampling via inversion on a capped range.
            let k;
            loop {
                // crude Knuth sampler
                let l = (-lambda).exp();
                let mut p = 1.0;
                let mut kk = 0u32;
                loop {
                    kk += 1;
                    p *= rng.gen::<f64>();
                    if p <= l {
                        break;
                    }
                }
                if kk >= 2 {
                    k = kk - 1;
                    break;
                }
            }
            out.push(k.min(60));
        }
        out
    }

    #[test]
    fn em_recovers_separated_mixture() {
        let counts = synthetic_counts(0.6, 9.0, 1.2, 4000, 3);
        let m = UrnsModel::fit(&counts, 200);
        assert!(m.lambda_correct > 5.0, "{m:?}");
        assert!(m.lambda_error < 3.0, "{m:?}");
        assert!((m.pi - 0.6).abs() < 0.2, "{m:?}");
    }

    #[test]
    fn plausibility_monotone_in_count() {
        let counts = synthetic_counts(0.5, 8.0, 1.0, 2000, 5);
        let m = UrnsModel::fit(&counts, 100);
        let mut prev = 0.0;
        for k in 1..30 {
            let p = m.plausibility(k);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= prev - 1e-9, "not monotone at k={k}: {p} < {prev}");
            prev = p;
        }
    }

    #[test]
    fn high_count_claims_are_trusted() {
        let counts = synthetic_counts(0.5, 10.0, 1.0, 3000, 7);
        let m = UrnsModel::fit(&counts, 100);
        assert!(
            m.plausibility(25) > 0.95,
            "{:?} p(25)={}",
            m,
            m.plausibility(25)
        );
        assert!(m.plausibility(1) < m.plausibility(25));
    }

    #[test]
    fn fit_from_knowledge() {
        let mut g = Knowledge::new();
        let a = g.intern("a");
        for i in 0..50 {
            let y = g.intern(&format!("good{i}"));
            for _ in 0..8 {
                g.add_pair(a, y);
            }
        }
        for i in 0..50 {
            let y = g.intern(&format!("junk{i}"));
            g.add_pair(a, y);
        }
        let m = UrnsModel::fit_knowledge(&g, 100);
        assert!(m.plausibility(8) > m.plausibility(1));
    }

    #[test]
    fn annotate_graph_sets_counts_based_plausibility() {
        let mut graph = probase_store::ConceptGraph::new();
        let a = graph.ensure_node("a", 0);
        let hi = graph.ensure_node("hi", 0);
        let lo = graph.ensure_node("lo", 0);
        graph.add_evidence(a, hi, 20);
        graph.add_evidence(a, lo, 1);
        let counts = synthetic_counts(0.5, 10.0, 1.0, 2000, 9);
        let m = UrnsModel::fit(&counts, 100);
        assert_eq!(annotate_graph_urns(&mut graph, &m), 2);
        let p_hi = graph.edge(a, hi).unwrap().plausibility;
        let p_lo = graph.edge(a, lo).unwrap().plausibility;
        assert!(p_hi > p_lo);
    }

    #[test]
    fn annotate_touched_writes_only_changed_edges() {
        let mut graph = probase_store::ConceptGraph::new();
        let a = graph.ensure_node("a", 0);
        let hi = graph.ensure_node("hi", 0);
        let lo = graph.ensure_node("lo", 0);
        graph.add_evidence(a, hi, 20);
        graph.add_evidence(a, lo, 1);
        let counts = synthetic_counts(0.5, 10.0, 1.0, 2000, 9);
        let m = UrnsModel::fit(&counts, 100);
        // First pass annotates both edges; a second pass with the same
        // model changes nothing bitwise and writes nothing.
        assert_eq!(annotate_graph_urns_touched(&mut graph, &m), 2);
        let p_hi = graph.edge(a, hi).unwrap().plausibility;
        assert_eq!(p_hi.to_bits(), m.plausibility(20).to_bits());
        assert_eq!(annotate_graph_urns_touched(&mut graph, &m), 0);
        // Bump one edge's count: only that edge is rewritten.
        graph.add_evidence(a, lo, 3);
        assert_eq!(annotate_graph_urns_touched(&mut graph, &m), 1);
        assert_eq!(
            graph.edge(a, hi).unwrap().plausibility.to_bits(),
            p_hi.to_bits()
        );
    }

    #[test]
    fn fit_histogram_matches_fit_and_is_repeatable() {
        let counts = synthetic_counts(0.6, 9.0, 1.2, 4000, 3);
        let mut hist: BTreeMap<u32, u64> = BTreeMap::new();
        for &c in &counts {
            *hist.entry(c.max(1)).or_insert(0) += 1;
        }
        let a = UrnsModel::fit(&counts, 200);
        let b = UrnsModel::fit_histogram(&hist, 200);
        assert_eq!(a.pi.to_bits(), b.pi.to_bits());
        assert_eq!(a.lambda_correct.to_bits(), b.lambda_correct.to_bits());
        assert_eq!(a.lambda_error.to_bits(), b.lambda_error.to_bits());
        assert_eq!(a.iterations, b.iterations);
        // Shuffled input order changes nothing: the histogram is the
        // sufficient statistic and it iterates sorted.
        let mut rev = counts.clone();
        rev.reverse();
        let c = UrnsModel::fit(&rev, 200);
        assert_eq!(a.pi.to_bits(), c.pi.to_bits());
        assert_eq!(a.lambda_correct.to_bits(), c.lambda_correct.to_bits());
    }

    #[test]
    #[should_panic]
    fn empty_counts_panics() {
        let _ = UrnsModel::fit(&[], 10);
    }

    #[test]
    #[should_panic]
    fn empty_histogram_panics() {
        let _ = UrnsModel::fit_histogram(&BTreeMap::new(), 10);
    }
}
