//! `ProbaseModel`: the queryable probabilistic taxonomy.
//!
//! Bundles the taxonomy graph with its plausibility annotations, the
//! reachability table, and the typicality model, and exposes the
//! string-level queries every application in §5.3 needs:
//!
//! * **instantiation** — top instances of a concept by `T(i|x)` (semantic
//!   search rewriting, attribute seed selection);
//! * **abstraction** — top concepts of a term by `T(x|i)` (short-text
//!   understanding, web-table header inference);
//! * **conceptualization** of a *set* of terms by naive-Bayes combination
//!   of per-term typicalities (the India+China+Brazil → *BRIC country* /
//!   *emerging market* example of §1 and §5.3.2).

use crate::reach::ReachTable;
use crate::typicality::TypicalityModel;
use probase_store::{GraphHandle, NodeId};
use std::collections::HashMap;

/// A fully annotated, queryable taxonomy.
///
/// ```
/// use probase_prob::ProbaseModel;
/// use probase_store::ConceptGraph;
/// let mut g = ConceptGraph::new();
/// let bird = g.ensure_node("bird", 0);
/// let robin = g.ensure_node("robin", 0);
/// let ostrich = g.ensure_node("ostrich", 0);
/// g.add_evidence(bird, robin, 9);   // robins are typical birds …
/// g.add_evidence(bird, ostrich, 1); // … ostriches are not (paper §4.2)
/// let model = ProbaseModel::new(g);
/// let top = model.typical_instances("bird", 2);
/// assert_eq!(top[0].0, "robin");
/// assert!(top[0].1 > top[1].1);
/// ```
#[derive(Debug)]
pub struct ProbaseModel {
    graph: GraphHandle,
    typicality: TypicalityModel,
}

impl ProbaseModel {
    /// Build the model from an annotated graph (edges already carry
    /// plausibility; see `plausibility::annotate_graph`). Accepts either
    /// representation — a mutable `ConceptGraph` or a zero-copy
    /// `PackedGraph` — and derives the reach and typicality tables
    /// directly over it, so a packed snapshot never has to be unpacked
    /// to serve model queries.
    pub fn new(graph: impl Into<GraphHandle>) -> Self {
        let graph = graph.into();
        let reach = ReachTable::compute(&graph);
        let typicality = TypicalityModel::compute(&graph, &reach);
        Self { graph, typicality }
    }

    /// The graph the model was derived from, in whichever representation
    /// it was supplied.
    pub fn graph(&self) -> &GraphHandle {
        &self.graph
    }

    pub fn typicality_model(&self) -> &TypicalityModel {
        &self.typicality
    }

    /// All senses of a concept label present in the taxonomy.
    pub fn senses(&self, label: &str) -> Vec<NodeId> {
        self.graph
            .senses_of(label)
            .into_iter()
            .filter(|&n| !self.graph.is_instance(n))
            .collect()
    }

    /// Does the taxonomy know this string at all (concept or instance)?
    pub fn knows(&self, term: &str) -> bool {
        !self.graph.senses_of(term).is_empty()
    }

    /// Is the term a concept (non-leaf) in some sense?
    pub fn is_concept(&self, term: &str) -> bool {
        !self.senses(term).is_empty()
    }

    /// Top-`k` typical instances of `label` (all senses pooled by sense-0
    /// first, which holds the bulk of the evidence), as
    /// `(surface, T(i|x))`.
    pub fn typical_instances(&self, label: &str, k: usize) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for sense in self.senses(label) {
            for &(i, t) in self.typicality.instances_of(sense) {
                out.push((self.graph.label(i).to_string(), t));
            }
            if !out.is_empty() {
                break; // largest sense answers the query, like the paper's demo
            }
        }
        out.truncate(k);
        out
    }

    /// Top-`k` typical concepts of a term, as `(concept label, T(x|i))`.
    /// Works for instances; for a term that is itself a concept, returns
    /// its parent concepts weighted by edge evidence.
    pub fn typical_concepts(&self, term: &str, k: usize) -> Vec<(String, f64)> {
        let nodes = self.graph.senses_of(term);
        let mut scores: HashMap<String, f64> = HashMap::new();
        for n in nodes {
            if self.graph.is_instance(n) {
                for &(c, t) in self.typicality.concepts_of(n) {
                    *scores.entry(self.graph.label(c).to_string()).or_insert(0.0) += t;
                }
            } else {
                // Concept term: parents weighted by plausibility-scaled counts.
                let total: f64 = self
                    .graph
                    .parents(n)
                    .map(|(_, e)| e.count as f64 * e.plausibility)
                    .sum();
                if total > 0.0 {
                    for (p, e) in self.graph.parents(n) {
                        *scores.entry(self.graph.label(p).to_string()).or_insert(0.0) +=
                            e.count as f64 * e.plausibility / total;
                    }
                }
            }
        }
        let mut out: Vec<(String, f64)> = scores.into_iter().collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    /// Conceptualize a *set* of terms (paper §5.3.2): find concepts that
    /// are typical for all of them via a naive-Bayes score
    /// `score(c) = prior(c) · ∏_t max(T(c|t), ε)`, normalized. This is the
    /// mechanism behind "India, China, Brazil → BRIC country".
    pub fn conceptualize(&self, terms: &[&str], k: usize) -> Vec<(String, f64)> {
        const EPS: f64 = 1e-4;
        let mut candidates: HashMap<String, f64> = HashMap::new();
        let mut per_term: Vec<HashMap<String, f64>> = Vec::new();
        for term in terms {
            let mut m = HashMap::new();
            for (c, t) in self.typical_concepts(term, usize::MAX) {
                m.insert(c, t);
            }
            for c in m.keys() {
                candidates.entry(c.clone()).or_insert(0.0);
            }
            per_term.push(m);
        }
        if per_term.is_empty() {
            return Vec::new();
        }
        let mut scored: Vec<(String, f64)> = candidates
            .into_keys()
            .map(|c| {
                let mut s = 0.0;
                for m in &per_term {
                    s += m.get(&c).copied().unwrap_or(EPS).max(EPS).ln();
                }
                (c, s)
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        scored.truncate(k);
        // Normalize back to probabilities for presentation.
        let m = scored.first().map(|(_, s)| *s).unwrap_or(0.0);
        let total: f64 = scored.iter().map(|(_, s)| (s - m).exp()).sum();
        scored
            .into_iter()
            .map(|(c, s)| (c, ((s - m).exp() / total).clamp(0.0, 1.0)))
            .collect()
    }
}

impl ProbaseModel {
    /// Set completion (paper §1: "With this generalization, one can even
    /// suggest a fourth instance, Russia, to complete the sentence").
    /// Conceptualizes the given terms, then proposes the most typical
    /// instances of the winning concepts that are not already in the set.
    pub fn complete(&self, terms: &[&str], k: usize) -> Vec<(String, f64)> {
        let concepts = self.conceptualize(terms, 3);
        let mut scores: HashMap<String, f64> = HashMap::new();
        for (concept, weight) in &concepts {
            for (inst, t) in self.typical_instances(concept, 3 * k + terms.len()) {
                if terms.iter().any(|&x| x == inst) {
                    continue;
                }
                *scores.entry(inst).or_insert(0.0) += weight * t;
            }
        }
        let mut out: Vec<(String, f64)> = scores.into_iter().collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probase_store::ConceptGraph;

    /// A miniature paper-world: country ⊃ {bric country}, instances with
    /// varying evidence.
    fn model() -> ProbaseModel {
        let mut g = ConceptGraph::new();
        let country = g.ensure_node("country", 0);
        let bric = g.ensure_node("bric country", 0);
        let em = g.ensure_node("emerging market", 0);
        let china = g.ensure_node("China", 0);
        let india = g.ensure_node("India", 0);
        let brazil = g.ensure_node("Brazil", 0);
        let russia = g.ensure_node("Russia", 0);
        let usa = g.ensure_node("USA", 0);
        g.add_evidence(country, bric, 3);
        g.add_evidence(bric, russia, 5);
        g.add_evidence(em, russia, 3);
        g.add_evidence(country, russia, 8);
        g.add_evidence(country, china, 20);
        g.add_evidence(country, india, 15);
        g.add_evidence(country, brazil, 10);
        g.add_evidence(country, usa, 30);
        g.add_evidence(bric, china, 5);
        g.add_evidence(bric, india, 5);
        g.add_evidence(bric, brazil, 5);
        g.add_evidence(em, china, 4);
        g.add_evidence(em, india, 4);
        g.add_evidence(em, brazil, 3);
        ProbaseModel::new(g)
    }

    #[test]
    fn typical_instances_ranked() {
        let m = model();
        let top = m.typical_instances("country", 3);
        assert_eq!(top[0].0, "USA");
        assert!(top[0].1 > top[1].1);
    }

    #[test]
    fn typical_concepts_of_instance() {
        let m = model();
        let cs = m.typical_concepts("China", 5);
        assert!(!cs.is_empty());
        let labels: Vec<&str> = cs.iter().map(|(c, _)| c.as_str()).collect();
        assert!(labels.contains(&"country"));
        assert!(labels.contains(&"bric country"));
    }

    #[test]
    fn conceptualize_prefers_tight_shared_concept() {
        let m = model();
        let cs = m.conceptualize(&["China", "India", "Brazil"], 3);
        let labels: Vec<&str> = cs.iter().map(|(c, _)| c.as_str()).collect();
        // All three are BRIC members; USA is not, so bric/emerging beat
        // nothing — country also contains them, but the tighter concepts
        // must appear at the top alongside it.
        assert!(
            labels.contains(&"bric country") || labels.contains(&"emerging market"),
            "{labels:?}"
        );
        // Adding a non-BRIC member shifts the answer to country.
        let cs2 = m.conceptualize(&["China", "India", "USA"], 1);
        assert_eq!(cs2[0].0, "country");
    }

    #[test]
    fn completion_suggests_russia() {
        // The paper's §1 example: {China, India, Brazil} → Russia.
        let m = model();
        let suggestions = m.complete(&["China", "India", "Brazil"], 2);
        assert!(!suggestions.is_empty());
        // Russia ranks among the top suggestions (in this tiny model the
        // generic "country" abstraction also pushes its own head, USA).
        assert!(
            suggestions.iter().take(2).any(|(s, _)| s == "Russia"),
            "{suggestions:?}"
        );
        // Input terms never come back.
        assert!(suggestions
            .iter()
            .all(|(s, _)| !["China", "India", "Brazil"].contains(&s.as_str())));
    }

    #[test]
    fn conceptualize_empty_terms() {
        let m = model();
        assert!(m.conceptualize(&[], 3).is_empty());
    }

    #[test]
    fn knows_and_is_concept() {
        let m = model();
        assert!(m.knows("China"));
        assert!(m.knows("country"));
        assert!(!m.knows("wombat"));
        assert!(m.is_concept("country"));
        assert!(!m.is_concept("China"));
    }

    #[test]
    fn concept_term_parents() {
        let m = model();
        let cs = m.typical_concepts("bric country", 2);
        assert_eq!(cs[0].0, "country");
    }
}
