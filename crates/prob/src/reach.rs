//! Path-existence probabilities `P(x, y)` (paper §4.2, Eq. 5–7,
//! Algorithm 3).
//!
//! Typicality must credit indirect evidence — Microsoft under *IT
//! company* also supports Microsoft under *company* — weighted by the
//! probability that a path from `x` down to `y` exists at all, given each
//! edge's plausibility. With the independence assumptions of Eq. 5–6,
//!
//! ```text
//! P(x, y) = 1 − ∏_{z ∈ Parent(y)} (1 − P(z, y) · P(x, z))
//! ```
//!
//! computed top-down over the `L¹, L², …` parent-complete level sets —
//! whenever `P(x, y)` is evaluated, every required `P(x, z)` is already
//! known (Algorithm 3's invariant).

use probase_store::query::parent_level_sets;
use probase_store::{GraphView, NodeId};
use std::collections::HashMap;

/// The table of `P(x, y)` values for ancestor/descendant concept pairs.
/// `P(x, x) = 1` by definition and is not stored.
#[derive(Debug, Clone, Default)]
pub struct ReachTable {
    map: HashMap<(NodeId, NodeId), f64>,
}

impl ReachTable {
    /// `P(x, y)`: probability a path exists from `x` down to `y`.
    pub fn get(&self, x: NodeId, y: NodeId) -> f64 {
        if x == y {
            return 1.0;
        }
        self.map.get(&(x, y)).copied().unwrap_or(0.0)
    }

    /// Number of stored (x, y) entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// All stored descendants of `x` with their probabilities, including
    /// the implicit `(x, 1.0)` self entry.
    pub fn descendants_of(&self, x: NodeId) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = self
            .map
            .iter()
            .filter(|((from, _), _)| *from == x)
            .map(|((_, to), &p)| (*to, p))
            .collect();
        v.push((x, 1.0));
        v.sort_by_key(|(n, _)| *n);
        v
    }

    /// Compute the table over the *concept* nodes of `graph` (instances
    /// are excluded — Eq. 4 only needs concept-to-concept reachability).
    /// This is Algorithm 3. Generic over [`GraphView`] so the packed
    /// (mmap) representation feeds the model without being unpacked;
    /// both representations iterate parents in identical order, so the
    /// accumulated floats are bit-identical.
    pub fn compute<G: GraphView>(graph: &G) -> Self {
        // Ancestor lists are built incrementally as we walk level sets.
        let mut map: HashMap<(NodeId, NodeId), f64> = HashMap::new();
        // ancestors[y] = set of concepts with a path to y (any plausibility).
        let mut ancestors: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for level in parent_level_sets(graph) {
            for y in level {
                if graph.is_instance(y) {
                    continue;
                }
                let parents: Vec<(NodeId, f64)> = graph
                    .parents(y)
                    .filter(|(p, _)| !graph.is_instance(*p))
                    .map(|(p, d)| (p, d.plausibility))
                    .collect();
                if parents.is_empty() {
                    continue;
                }
                // Ancestor set of y = parents ∪ ancestors of parents.
                let mut anc: Vec<NodeId> = Vec::new();
                for &(p, _) in &parents {
                    if !anc.contains(&p) {
                        anc.push(p);
                    }
                    if let Some(pa) = ancestors.get(&p) {
                        for &a in pa {
                            if !anc.contains(&a) {
                                anc.push(a);
                            }
                        }
                    }
                }
                for &x in &anc {
                    // Eq. 7: product over direct parents of y.
                    let mut not_reached = 1.0;
                    for &(z, p_zy) in &parents {
                        let p_xz = if x == z {
                            1.0
                        } else {
                            map.get(&(x, z)).copied().unwrap_or(0.0)
                        };
                        not_reached *= 1.0 - p_zy * p_xz;
                    }
                    let p = (1.0 - not_reached).clamp(0.0, 1.0);
                    if p > 0.0 {
                        map.insert((x, y), p);
                    }
                }
                ancestors.insert(y, anc);
            }
        }
        Self { map }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probase_store::ConceptGraph;

    /// company → it company → software company, plus company → software
    /// company directly; all edges carry chosen plausibilities.
    fn chain(
        p_top: f64,
        p_mid: f64,
        p_direct: Option<f64>,
    ) -> (ConceptGraph, NodeId, NodeId, NodeId) {
        let mut g = ConceptGraph::new();
        let company = g.ensure_node("company", 0);
        let it = g.ensure_node("it company", 0);
        let sw = g.ensure_node("software company", 0);
        // Leaves so the nodes count as concepts.
        let ms = g.ensure_node("Microsoft", 0);
        g.add_evidence(company, it, 5);
        g.add_evidence(it, sw, 5);
        g.add_evidence(sw, ms, 5);
        g.set_plausibility(company, it, p_top);
        g.set_plausibility(it, sw, p_mid);
        if let Some(p) = p_direct {
            g.add_evidence(company, sw, 2);
            g.set_plausibility(company, sw, p);
        }
        (g, company, it, sw)
    }

    #[test]
    fn self_reach_is_one() {
        let (g, company, ..) = chain(0.9, 0.8, None);
        let t = ReachTable::compute(&g);
        assert_eq!(t.get(company, company), 1.0);
    }

    #[test]
    fn chain_multiplies() {
        let (g, company, it, sw) = chain(0.9, 0.8, None);
        let t = ReachTable::compute(&g);
        assert!((t.get(company, it) - 0.9).abs() < 1e-12);
        assert!((t.get(it, sw) - 0.8).abs() < 1e-12);
        // single path: P = 0.9 * 0.8
        assert!(
            (t.get(company, sw) - 0.72).abs() < 1e-12,
            "{}",
            t.get(company, sw)
        );
    }

    #[test]
    fn parallel_paths_combine_noisy_or() {
        let (g, company, _, sw) = chain(0.9, 0.8, Some(0.5));
        let t = ReachTable::compute(&g);
        // paths: direct (0.5) and via it-company (0.72) over parents:
        // P = 1 - (1 - 0.8*0.9)(1 - 0.5)
        let expect = 1.0 - (1.0 - 0.72) * (1.0 - 0.5);
        assert!((t.get(company, sw) - expect).abs() < 1e-12);
    }

    #[test]
    fn unrelated_nodes_have_zero_reach() {
        let (mut g, company, ..) = chain(0.9, 0.8, None);
        let lone = g.ensure_node("volcano", 0);
        let crater = g.ensure_node("crater", 0);
        g.add_evidence(lone, crater, 1);
        let t = ReachTable::compute(&g);
        assert_eq!(t.get(company, lone), 0.0);
        assert_eq!(t.get(lone, company), 0.0);
    }

    #[test]
    fn reach_monotone_in_edge_plausibility() {
        let (g_lo, c1, _, s1) = chain(0.5, 0.5, None);
        let (g_hi, c2, _, s2) = chain(0.9, 0.9, None);
        let lo = ReachTable::compute(&g_lo).get(c1, s1);
        let hi = ReachTable::compute(&g_hi).get(c2, s2);
        assert!(hi > lo);
    }

    #[test]
    fn descendants_of_includes_self() {
        let (g, company, it, sw) = chain(0.9, 0.8, None);
        let t = ReachTable::compute(&g);
        let d = t.descendants_of(company);
        let nodes: Vec<NodeId> = d.iter().map(|&(n, _)| n).collect();
        assert!(nodes.contains(&company));
        assert!(nodes.contains(&it));
        assert!(nodes.contains(&sw));
    }

    #[test]
    fn instances_are_not_in_the_table() {
        let (g, company, ..) = chain(0.9, 0.8, None);
        let t = ReachTable::compute(&g);
        let ms = g.find_node("Microsoft", 0).unwrap();
        assert_eq!(t.get(company, ms), 0.0);
    }
}
