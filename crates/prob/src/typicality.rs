//! Typicality (paper §4.2, Eq. 3–4).
//!
//! *Instantiation* `T(i|x)`: how typical is instance `i` of concept `x`?
//! Robins are typical birds, ostriches are not; Microsoft is a typical
//! company, Xyz Inc. is not. Evidence counts and plausibility both feed
//! it, and evidence under descendant concepts counts too, weighted by the
//! path-existence probability `P(x, y)`:
//!
//! ```text
//! T(i|x) = Σ_{y ∈ D(x)} P(x,y) · n(y,i) · P(y,i)  /  (normalizer over i')
//! ```
//!
//! *Abstraction* `T(x|i)` is derived from instantiation by Bayes' rule
//! with concept priors proportional to total evidence mass.

use crate::reach::ReachTable;
use probase_store::{GraphView, NodeId};
use std::collections::HashMap;

/// Typicality in both directions for an annotated taxonomy graph.
#[derive(Debug, Clone, Default)]
pub struct TypicalityModel {
    /// Per concept: instances with `T(i|x)`, sorted descending.
    instantiation: HashMap<NodeId, Vec<(NodeId, f64)>>,
    /// Per instance: concepts with `T(x|i)`, sorted descending.
    abstraction: HashMap<NodeId, Vec<(NodeId, f64)>>,
}

impl TypicalityModel {
    /// Compute typicality over every concept of `graph`.
    ///
    /// "Instances" are leaf nodes (paper §3.1). For each concept `x`, the
    /// sum of Eq. 4 runs over `x` itself and all its descendant concepts
    /// from `reach`. Generic over [`GraphView`]: mutable and packed
    /// graphs iterate children in the same order, so the accumulated
    /// typicality mass is bit-identical across representations.
    pub fn compute<G: GraphView>(graph: &G, reach: &ReachTable) -> Self {
        let mut instantiation: HashMap<NodeId, Vec<(NodeId, f64)>> = HashMap::new();
        for x in graph.concepts() {
            let mut mass: HashMap<NodeId, f64> = HashMap::new();
            for (y, p_xy) in reach.descendants_of(x) {
                if graph.is_instance(y) {
                    continue;
                }
                for (i, edge) in graph.children(y) {
                    if !graph.is_instance(i) {
                        continue;
                    }
                    *mass.entry(i).or_insert(0.0) += p_xy * edge.count as f64 * edge.plausibility;
                }
            }
            // Sum the normalizer in NodeId order, never in map iteration
            // order: float addition is not associative, and the map's
            // per-instance order would leak into the low bits of every
            // typicality — breaking bit-identity between two models
            // built from equivalent graphs (e.g. mutable vs packed).
            let mut list: Vec<(NodeId, f64)> = mass.into_iter().collect();
            list.sort_by_key(|&(i, _)| i);
            let total: f64 = list.iter().map(|&(_, m)| m).sum();
            if total <= 0.0 {
                continue;
            }
            for (_, m) in list.iter_mut() {
                *m /= total;
            }
            list.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
            instantiation.insert(x, list);
        }

        // Abstraction by Bayes: T(x|i) ∝ T(i|x) · prior(x), prior ∝ total
        // evidence mass under x.
        let prior: HashMap<NodeId, f64> = instantiation
            .keys()
            .map(|&x| {
                let mass: f64 = graph.children(x).map(|(_, e)| e.count as f64).sum();
                (x, mass.max(1.0))
            })
            .collect();
        // Build each abstraction list in concept-id order (not map
        // iteration order) so the normalizing sum below is bitwise
        // deterministic too.
        let mut concepts: Vec<NodeId> = instantiation.keys().copied().collect();
        concepts.sort_unstable();
        let mut abstraction: HashMap<NodeId, Vec<(NodeId, f64)>> = HashMap::new();
        for &x in &concepts {
            for &(i, t) in &instantiation[&x] {
                abstraction.entry(i).or_default().push((x, t * prior[&x]));
            }
        }
        for list in abstraction.values_mut() {
            let total: f64 = list.iter().map(|(_, s)| s).sum();
            // An instance can reach this point with every score zero
            // (e.g. all its edges have zero plausibility): dividing by
            // the zero total would turn the list to NaN and panic the
            // `partial_cmp(...).expect("finite")` sort below. Leave the
            // zeros unnormalized instead, mirroring the instantiation
            // guard above.
            if total > 0.0 {
                for (_, s) in list.iter_mut() {
                    *s /= total;
                }
            }
            list.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        }
        Self {
            instantiation,
            abstraction,
        }
    }

    /// `T(i|x)` for all instances of concept `x`, most typical first.
    pub fn instances_of(&self, x: NodeId) -> &[(NodeId, f64)] {
        self.instantiation
            .get(&x)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// `T(x|i)` for all concepts of instance `i`, most typical first.
    pub fn concepts_of(&self, i: NodeId) -> &[(NodeId, f64)] {
        self.abstraction
            .get(&i)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// `T(i|x)` for one pair (0 when unrelated).
    pub fn typicality(&self, i: NodeId, x: NodeId) -> f64 {
        self.instances_of(x)
            .iter()
            .find(|&&(n, _)| n == i)
            .map(|&(_, t)| t)
            .unwrap_or(0.0)
    }

    /// Number of concepts with typicality lists.
    pub fn concept_count(&self) -> usize {
        self.instantiation.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probase_store::ConceptGraph;

    /// company →(n=10) Microsoft, →(n=1) Xyz; company → it company →(n=6)
    /// Microsoft. Indirect evidence must boost Microsoft under company.
    fn sample() -> (ConceptGraph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = ConceptGraph::new();
        let company = g.ensure_node("company", 0);
        let it = g.ensure_node("it company", 0);
        let ms = g.ensure_node("Microsoft", 0);
        let xyz = g.ensure_node("Xyz Inc", 0);
        g.add_evidence(company, it, 4);
        g.add_evidence(company, ms, 10);
        g.add_evidence(company, xyz, 1);
        g.add_evidence(it, ms, 6);
        g.set_plausibility(company, it, 0.9);
        g.set_plausibility(company, ms, 0.95);
        g.set_plausibility(company, xyz, 0.5);
        g.set_plausibility(it, ms, 0.9);
        (g, company, it, ms, xyz)
    }

    #[test]
    fn typicality_sums_to_one_and_sorts() {
        let (g, company, _, ms, xyz) = sample();
        let reach = ReachTable::compute(&g);
        let t = TypicalityModel::compute(&g, &reach);
        let list = t.instances_of(company);
        let sum: f64 = list.iter().map(|(_, v)| v).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(list[0].0, ms);
        assert!(t.typicality(ms, company) > t.typicality(xyz, company));
    }

    #[test]
    fn indirect_evidence_counts() {
        let (g, company, _, ms, _) = sample();
        let reach = ReachTable::compute(&g);
        let t = TypicalityModel::compute(&g, &reach);
        // Direct only would give ms mass 10*0.95 = 9.5 of (9.5 + 0.5).
        // The it-company path adds 0.9 * 6 * 0.9 = 4.86 more.
        let direct_share = 9.5 / 10.0;
        assert!(t.typicality(ms, company) > direct_share);
    }

    #[test]
    fn abstraction_is_normalized_bayes() {
        let (g, company, it, ms, _) = sample();
        let reach = ReachTable::compute(&g);
        let t = TypicalityModel::compute(&g, &reach);
        let concepts = t.concepts_of(ms);
        let sum: f64 = concepts.iter().map(|(_, v)| v).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // company has much more evidence mass than it company.
        assert_eq!(concepts[0].0, company);
        assert!(concepts.iter().any(|&(c, _)| c == it));
    }

    #[test]
    fn zero_plausibility_contributes_nothing() {
        let mut g = ConceptGraph::new();
        let a = g.ensure_node("a", 0);
        let i1 = g.ensure_node("I1", 0);
        let i2 = g.ensure_node("I2", 0);
        g.add_evidence(a, i1, 5);
        g.add_evidence(a, i2, 5);
        g.set_plausibility(a, i2, 0.0);
        let reach = ReachTable::compute(&g);
        let t = TypicalityModel::compute(&g, &reach);
        assert!((t.typicality(i1, a) - 1.0).abs() < 1e-9);
        assert_eq!(t.typicality(i2, a), 0.0);
    }

    /// Regression: an instance whose *every* edge has zero plausibility
    /// used to produce an all-zero abstraction list; normalizing it
    /// divided by a zero total, filled the list with NaN, and panicked
    /// the `partial_cmp(...).expect("finite")` sort.
    #[test]
    fn all_zero_plausibility_instance_does_not_panic() {
        let mut g = ConceptGraph::new();
        let a = g.ensure_node("a", 0);
        let b = g.ensure_node("b", 0);
        let good = g.ensure_node("Good", 0);
        let dud = g.ensure_node("Dud", 0);
        // `Dud` hangs off both concepts, but only through
        // zero-plausibility edges; `Good` keeps both totals positive so
        // the instantiation guard does not filter the lists out.
        g.add_evidence(a, good, 5);
        g.add_evidence(a, dud, 5);
        g.add_evidence(b, good, 3);
        g.add_evidence(b, dud, 3);
        g.set_plausibility(a, dud, 0.0);
        g.set_plausibility(b, dud, 0.0);
        let reach = ReachTable::compute(&g);
        let t = TypicalityModel::compute(&g, &reach);
        // Dud's abstraction scores stay finite (all zero, unnormalized).
        for &(_, s) in t.concepts_of(dud) {
            assert!(s.is_finite());
            assert_eq!(s, 0.0);
        }
        // Good's list is untouched by the guard and still normalized.
        let sum: f64 = t.concepts_of(good).iter().map(|(_, v)| v).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    /// Regression: the instantiation normalizer was summed in `HashMap`
    /// iteration order (and abstraction lists were built in it), so two
    /// models computed from the same graph could differ in the low bits
    /// — each `HashMap` draws its own random seed. Bit-identity across
    /// builds is what lets the packed (mmap) representation answer
    /// byte-for-byte like the mutable graph it was packed from.
    #[test]
    fn compute_is_bitwise_deterministic_across_builds() {
        let mut g = ConceptGraph::new();
        // Wide enough that hash order would actually vary: many
        // instances per concept, shared children, indirect paths.
        let concepts: Vec<NodeId> = (0..8)
            .map(|c| g.ensure_node(&format!("concept{c}"), 0))
            .collect();
        for (ci, &c) in concepts.iter().enumerate() {
            if ci > 0 {
                g.add_evidence(concepts[ci - 1], c, 3 + ci as u32);
                g.set_plausibility(concepts[ci - 1], c, 0.5 + 0.05 * ci as f64);
            }
            for k in 0..6 {
                let i = g.ensure_node(&format!("inst{}", (ci * 5 + k) % 17), 0);
                g.add_evidence(c, i, 1 + ((ci + k) % 5) as u32);
                g.set_plausibility(c, i, 0.3 + 0.07 * ((ci + k) % 9) as f64);
            }
        }
        let reach = ReachTable::compute(&g);
        let a = TypicalityModel::compute(&g, &reach);
        let b = TypicalityModel::compute(&g, &reach);
        for &x in &concepts {
            let (la, lb) = (a.instances_of(x), b.instances_of(x));
            assert_eq!(la.len(), lb.len());
            for (&(ia, ta), &(ib, tb)) in la.iter().zip(lb) {
                assert_eq!(ia, ib);
                assert_eq!(ta.to_bits(), tb.to_bits(), "T(i|x) low bits diverged");
            }
        }
        for n in g.nodes() {
            let (la, lb) = (a.concepts_of(n), b.concepts_of(n));
            assert_eq!(la.len(), lb.len());
            for (&(xa, sa), &(xb, sb)) in la.iter().zip(lb) {
                assert_eq!(xa, xb);
                assert_eq!(sa.to_bits(), sb.to_bits(), "T(x|i) low bits diverged");
            }
        }
    }

    #[test]
    fn unknown_nodes_are_empty() {
        let (g, ..) = sample();
        let reach = ReachTable::compute(&g);
        let t = TypicalityModel::compute(&g, &reach);
        let bogus = NodeId(999);
        assert!(t.instances_of(bogus).is_empty());
        assert!(t.concepts_of(bogus).is_empty());
    }
}
