//! # probase-prob
//!
//! The paper's third contribution: the probabilistic model that makes
//! Probase "not black and white" (SIGMOD 2012 §4).
//!
//! Two quantities are attached to the taxonomy:
//!
//! * **Plausibility** `P(x, y)` — how believable is the claim at all?
//!   Per-sentence evidence confidences come from a Naive Bayes model over
//!   extraction features (Eq. 2, [`nbayes`]), trained against a seed
//!   taxonomy ([`seed`] — the paper uses WordNet), and are combined by a
//!   noisy-or (Eq. 1, [`plausibility`]) with part-of sentences acting as
//!   negative evidence.
//! * **Typicality** `T(i|x)` / `T(x|i)` — among true claims, which are
//!   *representative*? Robins over ostriches, Microsoft over Xyz Inc.
//!   (Eq. 3–4, [`typicality`]). Indirect evidence through descendant
//!   concepts is weighted by the path-existence probability computed by
//!   the dynamic program of Algorithm 3 ([`reach`]).
//!
//! The unsupervised **Urns** redundancy model the paper points to as the
//! "more sophisticated" alternative (\[11\]) is implemented in [`urns`] and
//! compared against the noisy-or in ablation AB4.
//!
//! [`model::ProbaseModel`] wraps everything into the query API the §5.3
//! applications (semantic search, short-text conceptualization, web-table
//! understanding, attribute extraction) are built on.

pub mod model;
pub mod nbayes;
pub mod plausibility;
pub mod reach;
pub mod seed;
pub mod typicality;
pub mod urns;

pub use model::ProbaseModel;
pub use nbayes::{EvidenceModel, NaiveBayes, PriorModel};
pub use plausibility::{
    annotate_graph, compute_plausibility, compute_plausibility_observed,
    compute_plausibility_parallel, compute_plausibility_parallel_observed, PlausibilityConfig,
    PlausibilityTable,
};
pub use reach::ReachTable;
pub use seed::{CachedOracle, FnOracle, SeedOracle, SeedSet};
pub use typicality::TypicalityModel;
pub use urns::{annotate_graph_urns, annotate_graph_urns_touched, UrnsModel};
