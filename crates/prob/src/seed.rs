//! Seed oracles for training the evidence model.
//!
//! The paper trains its Naive Bayes evidence classifier against WordNet
//! (§4.1): a pair whose two ends are both in WordNet is a positive example
//! if a path connects them, negative otherwise. The reproduction keeps the
//! same contract behind [`SeedOracle`]; the evaluation crate implements it
//! over a curated sample of the synthetic ground truth (our WordNet
//! stand-in, DESIGN.md §2).

use std::collections::{HashMap, HashSet};

/// Labels isA pairs for supervised training. `None` means the oracle
/// cannot judge the pair (one of the terms is outside its vocabulary).
pub trait SeedOracle {
    fn label(&self, x: &str, y: &str) -> Option<bool>;
}

/// A concrete oracle: a vocabulary plus the positive pairs within it.
/// Anything with both ends in the vocabulary but not listed is negative —
/// exactly the WordNet recipe.
#[derive(Debug, Clone, Default)]
pub struct SeedSet {
    vocabulary: HashSet<String>,
    positives: HashSet<(String, String)>,
}

impl SeedSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a known-valid pair; both ends join the vocabulary.
    pub fn add_positive(&mut self, x: &str, y: &str) {
        self.vocabulary.insert(x.to_string());
        self.vocabulary.insert(y.to_string());
        self.positives.insert((x.to_string(), y.to_string()));
    }

    /// Add a term to the vocabulary without any positive pair (its pairs
    /// with other vocabulary terms become negative examples).
    pub fn add_term(&mut self, term: &str) {
        self.vocabulary.insert(term.to_string());
    }

    pub fn positive_count(&self) -> usize {
        self.positives.len()
    }

    pub fn vocabulary_size(&self) -> usize {
        self.vocabulary.len()
    }
}

impl SeedOracle for SeedSet {
    fn label(&self, x: &str, y: &str) -> Option<bool> {
        if !self.vocabulary.contains(x) || !self.vocabulary.contains(y) {
            return None;
        }
        Some(self.positives.contains(&(x.to_string(), y.to_string())))
    }
}

/// An oracle backed by a closure, for tests and the evaluation judge.
pub struct FnOracle<F: Fn(&str, &str) -> Option<bool>>(pub F);

impl<F: Fn(&str, &str) -> Option<bool>> SeedOracle for FnOracle<F> {
    fn label(&self, x: &str, y: &str) -> Option<bool> {
        (self.0)(x, y)
    }
}

/// Cache labels per pair (oracles may be expensive).
pub struct CachedOracle<'a> {
    inner: &'a dyn SeedOracle,
    cache: std::cell::RefCell<HashMap<(String, String), Option<bool>>>,
}

impl<'a> CachedOracle<'a> {
    pub fn new(inner: &'a dyn SeedOracle) -> Self {
        Self {
            inner,
            cache: std::cell::RefCell::new(HashMap::new()),
        }
    }
}

impl SeedOracle for CachedOracle<'_> {
    fn label(&self, x: &str, y: &str) -> Option<bool> {
        let key = (x.to_string(), y.to_string());
        if let Some(&v) = self.cache.borrow().get(&key) {
            return v;
        }
        let v = self.inner.label(x, y);
        self.cache.borrow_mut().insert(key, v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_set_labels_follow_wordnet_recipe() {
        let mut s = SeedSet::new();
        s.add_positive("animal", "cat");
        s.add_term("rock");
        assert_eq!(s.label("animal", "cat"), Some(true));
        assert_eq!(s.label("animal", "rock"), Some(false));
        assert_eq!(s.label("cat", "animal"), Some(false)); // direction matters
        assert_eq!(s.label("animal", "unknown"), None);
        assert_eq!(s.vocabulary_size(), 3);
        assert_eq!(s.positive_count(), 1);
    }

    #[test]
    fn fn_oracle_delegates() {
        let o = FnOracle(|x: &str, _y: &str| if x == "a" { Some(true) } else { None });
        assert_eq!(o.label("a", "b"), Some(true));
        assert_eq!(o.label("c", "b"), None);
    }

    #[test]
    fn cached_oracle_consistent() {
        let mut s = SeedSet::new();
        s.add_positive("a", "b");
        let c = CachedOracle::new(&s);
        assert_eq!(c.label("a", "b"), Some(true));
        assert_eq!(c.label("a", "b"), Some(true));
    }
}
