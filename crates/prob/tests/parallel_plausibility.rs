//! Parallel-vs-serial equality for the noisy-or plausibility stage.
//!
//! Floating-point products are order-sensitive, so the parallel path
//! promises — and these tests enforce — *bit-identical* tables: the
//! factor sequence per pair is exactly the serial one, only the pairs are
//! sharded across workers.

use probase_corpus::sentence::PatternKind;
use probase_extract::Knowledge;
use probase_prob::nbayes::mk_record;
use probase_prob::{
    compute_plausibility, compute_plausibility_parallel, EvidenceModel, PlausibilityConfig,
    PriorModel,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn evidence(seed: u64, records: usize, pairs: usize) -> Vec<probase_extract::EvidenceRecord> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..records)
        .map(|_| {
            let p = rng.gen_range(0..pairs);
            mk_record(
                &format!("x{p}"),
                &format!("y{p}"),
                PatternKind::SuchAs,
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
                rng.gen_range(1..6),
                rng.gen_range(2..9),
            )
        })
        .collect()
}

#[test]
fn parallel_noisyor_is_bit_identical_to_serial() {
    let model = EvidenceModel::Prior(PriorModel { base: 0.6 });
    let mut knowledge = Knowledge::new();
    for p in 0..10 {
        let x = knowledge.intern(&format!("x{p}"));
        let y = knowledge.intern(&format!("y{p}"));
        knowledge.add_negative(x, y);
    }
    for seed in [2, 29, 86] {
        let ev = evidence(seed, 2_000, 120);
        for cfg in [
            PlausibilityConfig::default(),
            PlausibilityConfig {
                max_factors: 3,
                ..Default::default()
            },
        ] {
            let serial = compute_plausibility(&ev, &knowledge, &model, &cfg);
            for threads in [1, 2, 4, 8] {
                let par = compute_plausibility_parallel(&ev, &knowledge, &model, &cfg, threads);
                assert_eq!(
                    serial, par,
                    "table diverged (seed {seed}, {threads} threads, max_factors {})",
                    cfg.max_factors
                );
            }
        }
    }
}

#[test]
fn parallel_handles_degenerate_inputs() {
    let model = EvidenceModel::Prior(PriorModel { base: 0.6 });
    let knowledge = Knowledge::new();
    let cfg = PlausibilityConfig::default();
    for threads in [1, 2, 8] {
        // No evidence at all.
        let empty = compute_plausibility_parallel(&[], &knowledge, &model, &cfg, threads);
        assert!(empty.is_empty());
        // Fewer pairs than workers.
        let ev = evidence(1, 5, 1);
        let par = compute_plausibility_parallel(&ev, &knowledge, &model, &cfg, threads);
        let serial = compute_plausibility(&ev, &knowledge, &model, &cfg);
        assert_eq!(serial, par);
    }
}
