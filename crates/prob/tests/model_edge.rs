//! Edge-case tests for the query model, reachability, and Urns fitting.

use probase_prob::{ProbaseModel, ReachTable, TypicalityModel, UrnsModel};
use probase_store::ConceptGraph;

fn diamond() -> ConceptGraph {
    // thing → {a, b} → shared instance I, with different plausibilities.
    let mut g = ConceptGraph::new();
    let thing = g.ensure_node("thing", 0);
    let a = g.ensure_node("a", 0);
    let b = g.ensure_node("b", 0);
    let i = g.ensure_node("I", 0);
    g.add_evidence(thing, a, 4);
    g.add_evidence(thing, b, 4);
    g.add_evidence(a, i, 3);
    g.add_evidence(b, i, 1);
    g.set_plausibility(thing, a, 0.9);
    g.set_plausibility(thing, b, 0.4);
    g
}

#[test]
fn diamond_reach_combines_paths() {
    let g = diamond();
    let t = ReachTable::compute(&g);
    let thing = g.find_node("thing", 0).unwrap();
    let a = g.find_node("a", 0).unwrap();
    assert!((t.get(thing, a) - 0.9).abs() < 1e-12);
    // The instance is a leaf; reach only covers concepts.
    let i = g.find_node("I", 0).unwrap();
    assert_eq!(t.get(thing, i), 0.0);
}

#[test]
fn shared_instance_counts_through_both_parents() {
    let g = diamond();
    let reach = ReachTable::compute(&g);
    let t = TypicalityModel::compute(&g, &reach);
    let thing = g.find_node("thing", 0).unwrap();
    let i = g.find_node("I", 0).unwrap();
    // I receives mass via a (0.9 × 3) and via b (0.4 × 1): sole instance.
    assert!((t.typicality(i, thing) - 1.0).abs() < 1e-9);
    // Abstraction from I sees all three concepts.
    let m = ProbaseModel::new(g);
    let concepts = m.typical_concepts("I", 10);
    assert_eq!(concepts.len(), 3, "{concepts:?}");
    // a carries more mass than b.
    let pos = |label: &str| concepts.iter().position(|(c, _)| c == label).unwrap();
    assert!(pos("a") < pos("b"));
}

#[test]
fn multi_sense_instances_pool_in_abstraction() {
    // Same surface under two senses of "plant"; typical_concepts pools.
    let mut g = ConceptGraph::new();
    let p0 = g.ensure_node("plant", 0);
    let p1 = g.ensure_node("plant", 1);
    let shared = g.ensure_node("hybrid", 0);
    let t0 = g.ensure_node("tree", 0);
    let b0 = g.ensure_node("boiler", 0);
    g.add_evidence(p0, shared, 2);
    g.add_evidence(p1, shared, 2);
    g.add_evidence(p0, t0, 5);
    g.add_evidence(p1, b0, 5);
    let m = ProbaseModel::new(g);
    let cs = m.typical_concepts("hybrid", 5);
    // Both senses share the label "plant": scores pool under it.
    assert_eq!(cs.len(), 1);
    assert_eq!(cs[0].0, "plant");
    assert!((cs[0].1 - 1.0).abs() < 1e-9);
}

#[test]
fn typical_instances_unknown_label_empty() {
    let m = ProbaseModel::new(diamond());
    assert!(m.typical_instances("nonexistent", 5).is_empty());
    assert!(m.typical_concepts("nonexistent", 5).is_empty());
    assert!(m.complete(&["nonexistent"], 3).is_empty());
}

#[test]
fn urns_with_uniform_counts_stays_calibrated() {
    // Degenerate input: every claim seen exactly twice. EM must not blow
    // up, and the posterior stays within [0, 1].
    let counts = vec![2u32; 500];
    let m = UrnsModel::fit(&counts, 100);
    for k in 1..10 {
        let p = m.plausibility(k);
        assert!((0.0..=1.0).contains(&p), "k={k} p={p}");
    }
}

#[test]
fn urns_single_claim() {
    let m = UrnsModel::fit(&[5], 50);
    assert!((0.0..=1.0).contains(&m.plausibility(5)));
}
