//! Property tests for the probabilistic layer: plausibility bounds and
//! monotonicity, reach-table bounds, typicality normalization.

use probase_corpus::sentence::PatternKind;
use probase_extract::{EvidenceRecord, Knowledge};
use probase_prob::{
    compute_plausibility, EvidenceModel, PlausibilityConfig, PriorModel, ReachTable,
    TypicalityModel,
};
use probase_store::{ConceptGraph, NodeId};
use proptest::prelude::*;

fn record(x: &str, y: &str, q: f64) -> EvidenceRecord {
    EvidenceRecord {
        x: x.to_string(),
        y: y.to_string(),
        sentence_id: 0,
        pattern: PatternKind::SuchAs,
        page_rank: 0.3,
        source_quality: q.clamp(0.0, 1.0),
        position: 1,
        list_len: 2,
    }
}

/// Random layered DAG with plausibility-annotated edges.
fn annotated_dag() -> impl Strategy<Value = ConceptGraph> {
    (
        3usize..16,
        proptest::collection::vec((any::<u16>(), any::<u16>(), 0.0f64..=1.0, 1u32..6), 1..40),
    )
        .prop_map(|(n, raw)| {
            let mut g = ConceptGraph::new();
            let nodes: Vec<NodeId> = (0..n).map(|i| g.ensure_node(&format!("n{i}"), 0)).collect();
            for (a, b, p, w) in raw {
                let i = a as usize % n;
                let j = b as usize % n;
                if i < j {
                    g.add_evidence(nodes[i], nodes[j], w);
                    g.set_plausibility(nodes[i], nodes[j], p);
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Plausibility is always in [0, 1] and monotone in added positive
    /// evidence.
    #[test]
    fn plausibility_bounds_and_monotonicity(
        qualities in proptest::collection::vec(0.0f64..=1.0, 1..20),
    ) {
        let model = EvidenceModel::Prior(PriorModel::default());
        let g = Knowledge::new();
        let cfg = PlausibilityConfig::default();
        let mut prev = 0.0;
        let mut evidence: Vec<EvidenceRecord> = Vec::new();
        for q in qualities {
            evidence.push(record("a", "b", q));
            let t = compute_plausibility(&evidence, &g, &model, &cfg);
            let p = t.get("a", "b");
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p >= prev - 1e-12, "noisy-or must be monotone: {p} < {prev}");
            prev = p;
        }
    }

    /// Negative evidence can only lower plausibility.
    #[test]
    fn negative_evidence_lowers(
        n_pos in 1usize..10,
        n_neg in 1u32..6,
    ) {
        let model = EvidenceModel::Prior(PriorModel::default());
        let cfg = PlausibilityConfig::default();
        let evidence: Vec<EvidenceRecord> = (0..n_pos).map(|_| record("x", "y", 0.7)).collect();
        let without = compute_plausibility(&evidence, &Knowledge::new(), &model, &cfg).get("x", "y");
        let mut g = Knowledge::new();
        let (x, y) = (g.intern("x"), g.intern("y"));
        for _ in 0..n_neg {
            g.add_negative(x, y);
        }
        let with = compute_plausibility(&evidence, &g, &model, &cfg).get("x", "y");
        prop_assert!(with <= without + 1e-12, "{with} > {without}");
    }

    /// P(x, y) ∈ [0, 1] everywhere; P(x, x) = 1; reach along a present
    /// edge is at least the edge plausibility.
    #[test]
    fn reach_table_bounds(g in annotated_dag()) {
        let t = ReachTable::compute(&g);
        for a in g.nodes() {
            prop_assert_eq!(t.get(a, a), 1.0);
        }
        for (from, to, data) in g.edges() {
            if g.is_instance(to) {
                continue;
            }
            let p = t.get(from, to);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p >= data.plausibility - 1e-9, "edge reach below edge plausibility");
        }
    }

    /// Typicality is a distribution per concept (sums to 1 over its
    /// instance list) and each value is in [0, 1].
    #[test]
    fn typicality_normalized(g in annotated_dag()) {
        let reach = ReachTable::compute(&g);
        let t = TypicalityModel::compute(&g, &reach);
        for x in g.concepts() {
            let list = t.instances_of(x);
            if list.is_empty() {
                continue;
            }
            let sum: f64 = list.iter().map(|(_, v)| v).sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
            for &(_, v) in list {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&v));
            }
        }
        // Abstraction likewise.
        for i in g.instances() {
            let list = t.concepts_of(i);
            if list.is_empty() {
                continue;
            }
            let sum: f64 = list.iter().map(|(_, v)| v).sum();
            prop_assert!((sum - 1.0).abs() < 1e-6);
        }
    }
}
