//! Local taxonomies (paper §3.4, Figure 1).
//!
//! By Property 1, all isA pairs derived from a single sentence share one
//! super-concept *sense*, so each sentence's extraction becomes a depth-1
//! tree: the root is the super-concept, the children are the extracted
//! items. These are the atoms that horizontal and vertical merging
//! assemble into the taxonomy DAG.

use probase_extract::SentenceExtraction;
use probase_store::{Interner, Symbol};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A single-sentence taxonomy: root plus child set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalTaxonomy {
    /// Interned root label.
    pub root: Symbol,
    /// Interned child items (set semantics — duplicates in a sentence
    /// collapse).
    pub children: BTreeSet<Symbol>,
    /// Originating sentence.
    pub sentence_id: u64,
}

/// Intern a batch of sentence extractions into local taxonomies, sharing
/// one interner (returned alongside).
pub fn build_local_taxonomies(sentences: &[SentenceExtraction]) -> (Vec<LocalTaxonomy>, Interner) {
    let mut interner = Interner::new();
    let mut out = Vec::with_capacity(sentences.len());
    for s in sentences {
        if s.items.is_empty() {
            continue;
        }
        let root = interner.intern(&s.super_label);
        let children: BTreeSet<Symbol> = s
            .items
            .iter()
            .map(|i| interner.intern(i))
            .filter(|&c| c != root)
            .collect();
        if children.is_empty() {
            continue;
        }
        out.push(LocalTaxonomy {
            root,
            children,
            sentence_id: s.sentence_id,
        });
    }
    (out, interner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn se(id: u64, root: &str, items: &[&str]) -> SentenceExtraction {
        SentenceExtraction {
            sentence_id: id,
            super_label: root.to_string(),
            items: items.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn builds_one_tree_per_sentence() {
        let (locals, interner) = build_local_taxonomies(&[
            se(0, "plant", &["tree", "grass"]),
            se(1, "plant", &["pump", "boiler"]),
        ]);
        assert_eq!(locals.len(), 2);
        assert_eq!(interner.resolve(locals[0].root), "plant");
        assert_eq!(locals[0].root, locals[1].root); // same label symbol
        assert_ne!(locals[0].children, locals[1].children);
    }

    #[test]
    fn duplicates_collapse_and_self_children_drop() {
        let (locals, _) = build_local_taxonomies(&[se(0, "animal", &["cat", "cat", "animal"])]);
        assert_eq!(locals.len(), 1);
        assert_eq!(locals[0].children.len(), 1);
    }

    #[test]
    fn empty_extractions_skipped() {
        let (locals, _) =
            build_local_taxonomies(&[se(0, "animal", &[]), se(1, "animal", &["animal"])]);
        assert!(locals.is_empty());
    }
}
