//! Local taxonomies (paper §3.4, Figure 1).
//!
//! By Property 1, all isA pairs derived from a single sentence share one
//! super-concept *sense*, so each sentence's extraction becomes a depth-1
//! tree: the root is the super-concept, the children are the extracted
//! items. These are the atoms that horizontal and vertical merging
//! assemble into the taxonomy DAG.

use probase_extract::SentenceExtraction;
use probase_store::{Interner, Symbol};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A single-sentence taxonomy: root plus child set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalTaxonomy {
    /// Interned root label.
    pub root: Symbol,
    /// Interned child items (set semantics — duplicates in a sentence
    /// collapse).
    pub children: BTreeSet<Symbol>,
    /// Originating sentence.
    pub sentence_id: u64,
}

/// Intern a batch of sentence extractions into local taxonomies, sharing
/// one interner (returned alongside).
pub fn build_local_taxonomies(sentences: &[SentenceExtraction]) -> (Vec<LocalTaxonomy>, Interner) {
    let mut interner = Interner::new();
    let out = build_local_taxonomies_into(&mut interner, sentences);
    (out, interner)
}

/// [`build_local_taxonomies`] against an existing interner: new labels are
/// appended in first-occurrence stream order, so folding batches one after
/// another through the same interner reproduces exactly the symbol table a
/// single call over the concatenated stream would produce. This is what
/// lets [`crate::incremental`] keep snapshot bytes identical to a
/// from-scratch build.
pub fn build_local_taxonomies_into(
    interner: &mut Interner,
    sentences: &[SentenceExtraction],
) -> Vec<LocalTaxonomy> {
    let mut out = Vec::with_capacity(sentences.len());
    for s in sentences {
        if s.items.is_empty() {
            continue;
        }
        let root = interner.intern(&s.super_label);
        let children: BTreeSet<Symbol> = s
            .items
            .iter()
            .map(|i| interner.intern(i))
            .filter(|&c| c != root)
            .collect();
        if children.is_empty() {
            continue;
        }
        out.push(LocalTaxonomy {
            root,
            children,
            sentence_id: s.sentence_id,
        });
    }
    out
}

/// [`build_local_taxonomies`] sharded across `threads` scoped workers.
///
/// Each worker interns its sentence shard into a private [`Interner`];
/// the shards are then merged by re-interning every shard's strings — in
/// shard order, in each shard's insertion order — into one global
/// interner and rewriting the local taxonomies through the resulting
/// symbol remap. A shard's insertion order is the first-occurrence order
/// of its slice of the sentence stream, so replaying the shards in order
/// reproduces the serial first-occurrence order exactly: the merged
/// symbol table (and therefore every downstream snapshot) is
/// byte-identical to the serial path's.
pub fn build_local_taxonomies_parallel(
    sentences: &[SentenceExtraction],
    threads: usize,
) -> (Vec<LocalTaxonomy>, Interner) {
    if threads <= 1 || sentences.len() <= 1 {
        return build_local_taxonomies(sentences);
    }
    let chunk = sentences.len().div_ceil(threads).max(1);
    let shards: Vec<(Vec<LocalTaxonomy>, Interner)> = std::thread::scope(|scope| {
        let handles: Vec<_> = sentences
            .chunks(chunk)
            .map(|shard| scope.spawn(move || build_local_taxonomies(shard)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("local-build shard panicked"))
            .collect()
    });

    let mut interner = Interner::new();
    let mut out = Vec::with_capacity(shards.iter().map(|(l, _)| l.len()).sum());
    for (locals, shard_interner) in shards {
        let remap: Vec<Symbol> = shard_interner
            .iter()
            .map(|(_, s)| interner.intern(s))
            .collect();
        out.extend(locals.into_iter().map(|lt| LocalTaxonomy {
            root: remap[lt.root.index()],
            children: lt.children.iter().map(|&c| remap[c.index()]).collect(),
            sentence_id: lt.sentence_id,
        }));
    }
    (out, interner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn se(id: u64, root: &str, items: &[&str]) -> SentenceExtraction {
        SentenceExtraction {
            sentence_id: id,
            super_label: root.to_string(),
            items: items.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn builds_one_tree_per_sentence() {
        let (locals, interner) = build_local_taxonomies(&[
            se(0, "plant", &["tree", "grass"]),
            se(1, "plant", &["pump", "boiler"]),
        ]);
        assert_eq!(locals.len(), 2);
        assert_eq!(interner.resolve(locals[0].root), "plant");
        assert_eq!(locals[0].root, locals[1].root); // same label symbol
        assert_ne!(locals[0].children, locals[1].children);
    }

    #[test]
    fn duplicates_collapse_and_self_children_drop() {
        let (locals, _) = build_local_taxonomies(&[se(0, "animal", &["cat", "cat", "animal"])]);
        assert_eq!(locals.len(), 1);
        assert_eq!(locals[0].children.len(), 1);
    }

    #[test]
    fn empty_extractions_skipped() {
        let (locals, _) =
            build_local_taxonomies(&[se(0, "animal", &[]), se(1, "animal", &["animal"])]);
        assert!(locals.is_empty());
    }

    #[test]
    fn parallel_shards_reproduce_serial_symbol_order() {
        // Cross-shard repeats: "plant" and "tree" recur in every shard so
        // the remap must resolve them to their first-shard symbols.
        let sentences: Vec<SentenceExtraction> = (0..23)
            .map(|i| {
                se(
                    i,
                    if i % 3 == 0 { "plant" } else { "animal" },
                    &[&format!("item{}", i % 7), "tree", &format!("only{i}")],
                )
            })
            .collect();
        let (serial, serial_int) = build_local_taxonomies(&sentences);
        for threads in [2, 3, 8, 64] {
            let (par, par_int) = build_local_taxonomies_parallel(&sentences, threads);
            assert_eq!(serial, par, "locals differ at {threads} threads");
            let a: Vec<&str> = serial_int.iter().map(|(_, s)| s).collect();
            let b: Vec<&str> = par_int.iter().map(|(_, s)| s).collect();
            assert_eq!(a, b, "interner order differs at {threads} threads");
        }
    }
}
