//! Graph-level taxonomy integration.
//!
//! Merging knowledge *sources* happens at Γ level (`Knowledge::absorb`),
//! but sometimes only the built taxonomies survive — e.g. two Probase
//! snapshots built from different crawls. This module re-runs Algorithm 2
//! across graphs: every concept sense of every input graph becomes a
//! local taxonomy (its label plus its children's labels, weighted by the
//! edge counts), and the standard horizontal/vertical merging decides
//! which senses across sources are the same concept. Same-label senses
//! with overlapping children fuse; disjoint senses (the two *plants*)
//! stay apart — exactly the Property 2/3 semantics, applied to graphs
//! instead of sentences.

use crate::build::{BuiltTaxonomy, TaxonomyConfig};
use crate::incremental::IncrementalTaxonomy;
use probase_store::ConceptGraph;

/// Merge taxonomy graphs by re-running Algorithm 2 over their senses.
///
/// Edge counts are preserved: a sense's local taxonomy is inserted once
/// per unit of child evidence mass — implemented by carrying counts into
/// the rebuilt graph through repeated sentence ids. Plausibilities are
/// *not* carried (they are source-relative; recompute them from merged
/// evidence if needed).
///
/// Each graph is one incremental fold ([`IncrementalTaxonomy::fold_graph`]),
/// which makes this function a standing integration test of the fold's
/// byte-identity contract: by Theorem 1 the per-graph folds land on the
/// same structure a one-shot build over all senses would.
pub fn merge_graphs(graphs: &[&ConceptGraph], cfg: &TaxonomyConfig) -> BuiltTaxonomy {
    let mut inc = IncrementalTaxonomy::new(cfg.clone());
    for graph in graphs {
        inc.fold_graph(graph);
    }
    inc.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn flora_graph() -> ConceptGraph {
        let mut g = ConceptGraph::new();
        let plant = g.ensure_node("plant", 0);
        for (n, w) in [("tree", 4), ("grass", 3), ("herb", 2)] {
            let c = g.ensure_node(n, 0);
            g.add_evidence(plant, c, w);
        }
        g
    }

    fn equipment_graph() -> ConceptGraph {
        let mut g = ConceptGraph::new();
        let plant = g.ensure_node("plant", 0);
        for (n, w) in [("pump", 3), ("boiler", 2)] {
            let c = g.ensure_node(n, 0);
            g.add_evidence(plant, c, w);
        }
        g
    }

    fn flora_graph_other_crawl() -> ConceptGraph {
        let mut g = ConceptGraph::new();
        let plant = g.ensure_node("plant", 0);
        for (n, w) in [("tree", 2), ("grass", 1), ("moss", 2)] {
            let c = g.ensure_node(n, 0);
            g.add_evidence(plant, c, w);
        }
        g
    }

    #[test]
    fn same_sense_across_graphs_fuses() {
        let a = flora_graph();
        let b = flora_graph_other_crawl();
        let merged = merge_graphs(&[&a, &b], &TaxonomyConfig::default());
        let g = &merged.graph;
        let senses: Vec<_> = g
            .senses_of("plant")
            .into_iter()
            .filter(|&n| !g.is_instance(n))
            .collect();
        assert_eq!(senses.len(), 1, "overlapping flora senses must fuse");
        let kids: BTreeSet<&str> = g.children(senses[0]).map(|(c, _)| g.label(c)).collect();
        for k in ["tree", "grass", "herb", "moss"] {
            assert!(kids.contains(k), "missing {k}: {kids:?}");
        }
        // Counts add across crawls: tree had 4 + 2.
        let tree = g
            .children(senses[0])
            .find(|(c, _)| g.label(*c) == "tree")
            .unwrap();
        assert_eq!(tree.1.count, 6);
    }

    #[test]
    fn disjoint_senses_stay_apart() {
        let a = flora_graph();
        let b = equipment_graph();
        let merged = merge_graphs(&[&a, &b], &TaxonomyConfig::default());
        let g = &merged.graph;
        let senses: Vec<_> = g
            .senses_of("plant")
            .into_iter()
            .filter(|&n| !g.is_instance(n))
            .collect();
        assert_eq!(senses.len(), 2, "flora and equipment must not fuse");
    }

    #[test]
    fn merging_single_graph_is_faithful() {
        let a = flora_graph();
        let merged = merge_graphs(&[&a], &TaxonomyConfig::default());
        let g = &merged.graph;
        let plant = g.senses_of("plant")[0];
        let kids: BTreeSet<&str> = g.children(plant).map(|(c, _)| g.label(c)).collect();
        assert_eq!(kids.len(), 3);
        let herb = g
            .children(plant)
            .find(|(c, _)| g.label(*c) == "herb")
            .unwrap();
        assert_eq!(herb.1.count, 2);
    }

    #[test]
    fn empty_input_yields_empty_graph() {
        let merged = merge_graphs(&[], &TaxonomyConfig::default());
        assert_eq!(merged.graph.node_count(), 0);
    }

    #[test]
    fn hierarchy_edges_survive() {
        // a: organism -> plant(with flora children); merging with another
        // flora crawl keeps the vertical structure.
        let mut a = flora_graph();
        let organism = a.ensure_node("organism", 0);
        let plant = a.find_node("plant", 0).unwrap();
        a.add_evidence(organism, plant, 2);
        // organism also lists plant's children (Property 3 evidence).
        for n in ["tree", "grass"] {
            let c = a.find_node(n, 0).unwrap();
            a.add_evidence(organism, c, 1);
        }
        let b = flora_graph_other_crawl();
        let merged = merge_graphs(&[&a, &b], &TaxonomyConfig::default());
        let g = &merged.graph;
        let organism = g.senses_of("organism")[0];
        let has_plant_child = g.children(organism).any(|(c, _)| g.label(c) == "plant");
        assert!(has_plant_child);
    }
}
