//! Deterministic parallel taxonomy construction.
//!
//! The paper runs extraction as a distributed Map-Reduce job (§5) and the
//! extract crate mirrors that; this module extends the same discipline to
//! Algorithm 2 so the taxonomy stage scales with cores too. Every stage
//! keeps a proof-shaped argument for why its output is *byte-identical*
//! to the serial builder in [`crate::build`] — parallelism here buys wall
//! clock, never a different taxonomy. The determinism suite
//! (`tests/parallel_determinism.rs`) enforces the equality for thread
//! counts {1, 2, 4, 8}.
//!
//! Stage by stage:
//!
//! 1. **Local construction** shards the sentence stream across scoped
//!    threads with per-shard interners, then merges symbol tables with a
//!    remap pass that replays shard insertion orders — reproducing the
//!    serial first-occurrence order exactly
//!    ([`crate::local::build_local_taxonomies_parallel`]).
//! 2. **Horizontal grouping** partitions groups by root label. Property 2
//!    says a horizontal merge requires equal labels, so the label buckets
//!    are fully independent: each bucket runs the *same* indexed fixpoint
//!    as the serial builder (which already never crosses labels — its
//!    inverted index is keyed by `(label, child)`), concurrently.
//!    Absorption of short lists is label-local for the same reason and
//!    runs inside the bucket workers.
//! 3. **Vertical candidate scoring** is a pure read of the converged
//!    groups — child sets no longer change — so the `overlap` tests for
//!    all (parent, child-sense) candidates run as a parallel map; the
//!    passing links are applied serially into the deterministic
//!    `BTreeSet`.
//! 4. **Assembly** (sense numbering, fallback links, cycle breaking) is
//!    serial and shared verbatim with [`crate::build`].
//!
//! Why bucket-local fixpoints match the serial one: the serial pass
//! visits live groups in ascending index order each round; restricted to
//! one label, that is exactly the bucket's local order (bucket groups are
//! extracted in ascending global order), and groups of other labels never
//! contribute candidates. Once a label's groups converge, they produce
//! zero further merges or similarity calls in later global rounds, so
//! both merge counts and `taxonomy.similarity_calls` agree exactly.

use crate::build::{
    absorb_small_groups, assemble, horizontal_pass, BuildStats, BuiltTaxonomy, TaxonomyConfig,
};
use crate::local::{build_local_taxonomies_parallel, LocalTaxonomy};
use crate::merge::{Group, MergeState};
use crate::sim::{overlap, AbsoluteOverlap};
use probase_extract::SentenceExtraction;
use probase_obs::Registry;
use probase_store::{Interner, Symbol};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// [`crate::build::build_taxonomy`] on the parallel driver, recording to
/// the process-global registry.
pub fn build_taxonomy_parallel(
    sentences: &[SentenceExtraction],
    cfg: &TaxonomyConfig,
) -> BuiltTaxonomy {
    build_taxonomy_parallel_observed(sentences, cfg, probase_obs::global())
}

/// Parallel taxonomy construction with an explicit metric registry.
///
/// Records the same `taxonomy.*` stages as the serial path (so pipeline
/// reports stay comparable) plus `taxonomy.parallel.*` detail metrics.
/// With an effective thread count of 1 this *is* the serial path.
pub fn build_taxonomy_parallel_observed(
    sentences: &[SentenceExtraction],
    cfg: &TaxonomyConfig,
    registry: &Registry,
) -> BuiltTaxonomy {
    let threads = cfg.effective_threads().max(1);
    if threads <= 1 {
        let serial = TaxonomyConfig {
            threads: 1,
            ..cfg.clone()
        };
        return crate::build::build_taxonomy_observed(sentences, &serial, registry);
    }
    registry
        .gauge("taxonomy.parallel.threads")
        .set(threads as i64);
    let shard_size = sentences.len().div_ceil(threads).max(1);
    registry
        .counter("taxonomy.parallel.local_shards")
        .add(sentences.len().div_ceil(shard_size) as u64);
    let (locals, interner) = registry
        .stage("taxonomy.local_build")
        .time(|| build_local_taxonomies_parallel(sentences, threads));
    build_from_locals_parallel_observed(&locals, &interner, cfg, registry, threads)
}

/// Merge + assemble from pre-built locals on `threads` workers.
fn build_from_locals_parallel_observed(
    locals: &[LocalTaxonomy],
    interner: &Interner,
    cfg: &TaxonomyConfig,
    registry: &Registry,
    threads: usize,
) -> BuiltTaxonomy {
    let sim = AbsoluteOverlap { delta: cfg.delta };
    let mut stats = BuildStats {
        local_taxonomies: locals.len(),
        ..Default::default()
    };

    let mut state = MergeState::from_locals(locals);
    let (merges, absorbed) = registry
        .stage("taxonomy.horizontal_merge")
        .time(|| horizontal_buckets(&mut state, &sim, cfg, threads, registry));
    stats.horizontal_merges = merges;
    stats.absorbed = absorbed;

    stats.vertical_links = registry
        .stage("taxonomy.vertical_merge")
        .time(|| vertical_parallel(&mut state, &sim, threads, registry));

    let (graph, dropped) = registry
        .stage("taxonomy.assemble")
        .time(|| assemble(&state, interner, cfg));
    stats.cycle_edges_dropped = dropped;
    stats.senses = state.live().count();
    BuiltTaxonomy { graph, stats }
}

/// A dead placeholder left behind when a group is moved into a bucket.
fn tombstone(label: Symbol) -> Group {
    Group {
        label,
        children: BTreeSet::new(),
        child_counts: BTreeMap::new(),
        members: Vec::new(),
        alive: false,
    }
}

/// One label bucket lifted out of the global state: the global indices of
/// its groups (ascending) and a private merge state over them.
struct Bucket {
    global: Vec<usize>,
    state: MergeState,
}

/// Bucket-parallel horizontal fixpoint + absorption. Returns
/// `(horizontal_merges, absorbed)` with values identical to the serial
/// [`horizontal_pass`] / [`absorb_small_groups`] sequence.
fn horizontal_buckets(
    state: &mut MergeState,
    sim: &AbsoluteOverlap,
    cfg: &TaxonomyConfig,
    threads: usize,
    registry: &Registry,
) -> (usize, usize) {
    // Partition live groups by label, ascending index within each label so
    // bucket-local order mirrors global order (merge survivors, absorption
    // tie-breaks, and sense numbering all compare indices).
    let mut by_label: BTreeMap<Symbol, Vec<usize>> = BTreeMap::new();
    for gi in state.live() {
        by_label.entry(state.groups[gi].label).or_default().push(gi);
    }

    // Size-1 labels can neither merge nor absorb (both need a distinct
    // same-label partner); leave them in place.
    let mut buckets: Vec<Bucket> = Vec::new();
    for global in by_label.into_values() {
        if global.len() < 2 {
            continue;
        }
        let groups: Vec<Group> = global
            .iter()
            .map(|&gi| {
                let label = state.groups[gi].label;
                std::mem::replace(&mut state.groups[gi], tombstone(label))
            })
            .collect();
        buckets.push(Bucket {
            global,
            state: MergeState {
                groups,
                links: BTreeSet::new(),
                ops_applied: 0,
            },
        });
    }
    registry
        .counter("taxonomy.parallel.horizontal_buckets")
        .add(buckets.len() as u64);

    // Round-robin the buckets over workers by descending weight (total
    // child-set size) so one giant label doesn't serialize the stage.
    let workers = threads.min(buckets.len()).max(1);
    let mut order: Vec<usize> = (0..buckets.len()).collect();
    order.sort_by_key(|&b| {
        std::cmp::Reverse(
            buckets[b]
                .state
                .groups
                .iter()
                .map(|g| g.children.len())
                .sum::<usize>(),
        )
    });
    let mut assigned: Vec<Vec<Bucket>> = (0..workers).map(|_| Vec::new()).collect();
    // Drain in weight order; index into the original vec via a map of
    // leftovers to preserve ownership moves.
    let mut slots: Vec<Option<Bucket>> = buckets.into_iter().map(Some).collect();
    for (rank, &b) in order.iter().enumerate() {
        let bucket = slots[b].take().expect("bucket assigned twice");
        assigned[rank % workers].push(bucket);
    }

    let (merges, absorbed) = std::thread::scope(|scope| {
        let handles: Vec<_> = assigned
            .iter_mut()
            .map(|mine| {
                let sim_calls = registry.counter("taxonomy.similarity_calls");
                scope.spawn(move || {
                    let mut merges = 0usize;
                    let mut absorbed = 0usize;
                    for bucket in mine.iter_mut() {
                        merges += horizontal_pass(&mut bucket.state, sim, &sim_calls);
                        if cfg.absorb {
                            absorbed += absorb_small_groups(&mut bucket.state, cfg.delta);
                        }
                    }
                    (merges, absorbed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("horizontal bucket worker panicked"))
            .fold((0, 0), |(m, a), (dm, da)| (m + dm, a + da))
    });

    // Write every bucket's groups back into their global slots. Bucket
    // fixpoints create no links (none exist yet), so only groups move.
    for bucket in assigned.into_iter().flatten() {
        debug_assert!(bucket.state.links.is_empty());
        state.ops_applied += bucket.state.ops_applied;
        for (group, gi) in bucket.state.groups.into_iter().zip(bucket.global) {
            state.groups[gi] = group;
        }
    }
    (merges, absorbed)
}

/// Parallel vertical candidate scoring: a read-only map over parent
/// shards computing `overlap` for every (parent, same-label child sense)
/// candidate, then a serial application of the passing links. Returns the
/// number of links created (identical to the serial pass — candidate
/// pairs are unique because a child symbol selects exactly the groups
/// labeled with it).
fn vertical_parallel(
    state: &mut MergeState,
    sim: &AbsoluteOverlap,
    threads: usize,
    registry: &Registry,
) -> usize {
    let live: Vec<usize> = state.live().collect();
    let mut by_label: HashMap<Symbol, Vec<usize>> = HashMap::new();
    for &gi in &live {
        by_label.entry(state.groups[gi].label).or_default().push(gi);
    }

    let chunk = live.len().div_ceil(threads).max(1);
    let (passing, calls) = std::thread::scope(|scope| {
        let groups = &state.groups;
        let by_label = &by_label;
        let handles: Vec<_> = live
            .chunks(chunk)
            .map(|shard| {
                scope.spawn(move || {
                    let mut passing: Vec<(usize, usize)> = Vec::new();
                    let mut calls = 0u64;
                    for &parent in shard {
                        for &c in &groups[parent].children {
                            let Some(cands) = by_label.get(&c) else {
                                continue;
                            };
                            for &child in cands {
                                if child == parent {
                                    continue;
                                }
                                calls += 1;
                                if overlap(&groups[parent].children, &groups[child].children)
                                    >= sim.delta
                                {
                                    passing.push((parent, child));
                                }
                            }
                        }
                    }
                    (passing, calls)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("vertical shard panicked"))
            .fold((Vec::new(), 0u64), |(mut pairs, calls), (p, c)| {
                pairs.extend(p);
                (pairs, calls + c)
            })
    });
    registry.counter("taxonomy.similarity_calls").add(calls);
    registry
        .counter("taxonomy.parallel.vertical_candidates")
        .add(calls);

    let mut links = 0;
    for (parent, child) in passing {
        if state.links.insert((parent, child)) {
            links += 1;
        }
    }
    links
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_taxonomy;
    use probase_store::snapshot;

    fn se(id: u64, root: &str, items: &[&str]) -> SentenceExtraction {
        SentenceExtraction {
            sentence_id: id,
            super_label: root.to_string(),
            items: items.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn example3() -> Vec<SentenceExtraction> {
        vec![
            se(0, "plant", &["tree", "grass"]),
            se(1, "plant", &["tree", "grass", "herb"]),
            se(2, "plant", &["steam turbine", "pump", "boiler"]),
            se(3, "organism", &["plant", "tree", "grass", "animal"]),
            se(4, "thing", &["plant", "tree", "grass", "pump", "boiler"]),
        ]
    }

    #[test]
    fn parallel_matches_serial_on_paper_example() {
        let serial_cfg = TaxonomyConfig {
            threads: 1,
            ..Default::default()
        };
        let serial = build_taxonomy(&example3(), &serial_cfg);
        for threads in [2, 4, 8] {
            let cfg = TaxonomyConfig {
                threads,
                ..Default::default()
            };
            let par = build_taxonomy_parallel(&example3(), &cfg);
            assert_eq!(serial.stats, par.stats, "{threads} threads");
            assert_eq!(
                snapshot::to_bytes(&serial.graph).expect("encode"),
                snapshot::to_bytes(&par.graph).expect("encode"),
                "graph bytes differ at {threads} threads"
            );
        }
    }

    #[test]
    fn threads_one_is_the_serial_path() {
        let cfg = TaxonomyConfig {
            threads: 1,
            ..Default::default()
        };
        let a = build_taxonomy(&example3(), &cfg);
        let b = build_taxonomy_parallel(&example3(), &cfg);
        assert_eq!(a.stats, b.stats);
        assert_eq!(
            snapshot::to_bytes(&a.graph).expect("encode"),
            snapshot::to_bytes(&b.graph).expect("encode")
        );
    }

    #[test]
    fn similarity_call_counts_match_serial() {
        let reg_s = Registry::new();
        let reg_p = Registry::new();
        let serial_cfg = TaxonomyConfig {
            threads: 1,
            ..Default::default()
        };
        let par_cfg = TaxonomyConfig {
            threads: 4,
            ..Default::default()
        };
        let _ = crate::build::build_taxonomy_observed(&example3(), &serial_cfg, &reg_s);
        let _ = build_taxonomy_parallel_observed(&example3(), &par_cfg, &reg_p);
        assert_eq!(
            reg_s.counter("taxonomy.similarity_calls").get(),
            reg_p.counter("taxonomy.similarity_calls").get()
        );
    }
}
