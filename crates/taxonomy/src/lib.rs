//! # probase-taxonomy
//!
//! The paper's second contribution: assembling the flat set of extracted
//! isA pairs into a sense-disambiguated taxonomy DAG (SIGMOD 2012 §3,
//! Algorithm 2).
//!
//! The word "plant" in "plants such as trees and grass" and in "plants
//! such as steam turbines and boilers" names two different concepts.
//! Probase separates them with three observations (Properties 1–3): a
//! single sentence uses a single sense; same-label groups with
//! overlapping child sets share a sense (**horizontal merge**); and a
//! group whose label is listed among another group's children, with
//! overlapping child sets, belongs below it (**vertical merge**). The
//! similarity test must be *absolute* overlap (Property 4) for the merge
//! process to be confluent (Theorem 1); horizontal-before-vertical
//! minimizes work (Theorem 2). Both theorems are property-tested here and
//! benchmarked in the ablation suite.
//!
//! * [`local`] — per-sentence local taxonomies (Figure 1).
//! * [`sim`] — absolute-overlap similarity (plus Jaccard for the ablation).
//! * [`merge`] — the operational merge engine used by the theorem tests.
//! * [`build`] — the production builder with indexed merging, absorption
//!   of short lists, fallback linking, and cycle breaking.
//! * [`parallel`] — the deterministic multi-threaded driver for the same
//!   builder (label-bucketed horizontal merging, parallel vertical
//!   scoring); byte-identical to [`build`] at any thread count.
//! * [`incremental`] — continuous maintenance: fold evidence batches
//!   into a live merge state (Theorem 1 makes the fold confluent) with
//!   builds byte-identical to a from-scratch run over the union corpus.
//! * [`regraph`] — graph-level integration: re-run Algorithm 2 across
//!   built taxonomies from different sources (now a thin wrapper over
//!   [`incremental`]).

pub mod build;
pub mod incremental;
pub mod local;
pub mod merge;
pub mod parallel;
pub mod regraph;
pub mod sim;

pub use build::{
    build_from_locals, build_from_locals_observed, build_taxonomy, build_taxonomy_observed,
    BuildStats, BuiltTaxonomy, TaxonomyConfig,
};
pub use incremental::{count_histogram, shift_count_histogram, FoldOutcome, IncrementalTaxonomy};
pub use local::{
    build_local_taxonomies, build_local_taxonomies_into, build_local_taxonomies_parallel,
    LocalTaxonomy,
};
pub use merge::{CanonicalState, Group, MergeOp, MergeState};
pub use parallel::{build_taxonomy_parallel, build_taxonomy_parallel_observed};
pub use regraph::merge_graphs;
pub use sim::{overlap, AbsoluteOverlap, Jaccard, Similarity};
