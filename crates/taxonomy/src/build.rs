//! Taxonomy construction (paper Algorithm 2).
//!
//! Three stages, exactly as the paper orders them (Theorem 2 shows this
//! order minimizes merge operations):
//!
//! 1. **Local construction** — one depth-1 taxonomy per sentence.
//! 2. **Horizontal grouping** — same-label groups with `|A ∩ B| ≥ δ`
//!    child overlap fuse into senses. An inverted child→group index makes
//!    this near-linear instead of the O(n²) pairwise scan of the generic
//!    engine in [`crate::merge`].
//! 3. **Vertical grouping** — a group whose label appears among another
//!    group's children, with sufficient child overlap, is linked below it.
//!
//! Two documented extensions beyond the paper's letter (DESIGN.md §2):
//!
//! * **Absorption**: local taxonomies with fewer than δ children can never
//!   pass the strict overlap test; each is absorbed into the same-label
//!   sense whose child set contains it, when that target is unique enough
//!   (largest evidence wins deterministically). Web corpora are dominated
//!   by short lists, and the paper is silent on them.
//! * **Cycle breaking**: mutual listing noise can produce cyclic vertical
//!   links; the weakest edge of every strongly connected component is
//!   dropped so the result is the DAG §3.1 promises.
//!
//! Determinism note: this module uses `HashMap` only as a lookup
//! structure — every map that is *iterated* either drives per-entry
//! independent writes ([`assemble`]'s per-label sense sort) or is a
//! `BTreeMap`/`BTreeSet`. No hash iteration order reaches the output, so
//! the parallel driver in [`crate::parallel`] can promise byte-identical
//! graphs structurally rather than by luck.

use crate::local::{build_local_taxonomies, LocalTaxonomy};
use crate::merge::{Group, MergeOp, MergeState};
use crate::sim::{overlap, AbsoluteOverlap};
use probase_extract::SentenceExtraction;
use probase_obs::{Counter, Registry};
use probase_store::{ConceptGraph, Interner, NodeId, Symbol};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Configuration of taxonomy construction.
#[derive(Debug, Clone)]
pub struct TaxonomyConfig {
    /// Absolute-overlap threshold δ (paper §3.5).
    pub delta: usize,
    /// Absorb short local taxonomies into containing senses.
    pub absorb: bool,
    /// When a child label has sense groups but no overlap evidence links
    /// it anywhere, attach it to the label's largest sense instead of
    /// leaving a dangling leaf.
    pub link_fallback: bool,
    /// Worker threads for the parallel construction path
    /// ([`crate::parallel`]): `0` = use all available parallelism, `1` =
    /// the exact serial path. Both paths produce byte-identical
    /// taxonomies; the determinism suite in `tests/` enforces it.
    pub threads: usize,
}

impl Default for TaxonomyConfig {
    fn default() -> Self {
        Self {
            delta: 2,
            absorb: true,
            link_fallback: true,
            threads: 0,
        }
    }
}

impl TaxonomyConfig {
    /// The worker count the `threads` knob resolves to: `0` means all
    /// available parallelism, anything else is taken literally.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }
}

/// Counters describing a construction run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BuildStats {
    pub local_taxonomies: usize,
    pub horizontal_merges: usize,
    pub vertical_links: usize,
    pub absorbed: usize,
    pub senses: usize,
    pub cycle_edges_dropped: usize,
}

/// The built taxonomy.
#[derive(Debug)]
pub struct BuiltTaxonomy {
    pub graph: ConceptGraph,
    pub stats: BuildStats,
}

/// Build the taxonomy DAG from per-sentence extractions.
///
/// ```
/// use probase_extract::SentenceExtraction;
/// use probase_taxonomy::{build_taxonomy, TaxonomyConfig};
/// let s = |id, root: &str, items: &[&str]| SentenceExtraction {
///     sentence_id: id,
///     super_label: root.to_string(),
///     items: items.iter().map(|i| i.to_string()).collect(),
/// };
/// let built = build_taxonomy(
///     &[
///         s(0, "plant", &["tree", "grass"]),
///         s(1, "plant", &["tree", "grass", "herb"]),
///         s(2, "plant", &["pump", "boiler", "generator"]),
///     ],
///     &TaxonomyConfig::default(),
/// );
/// // Two senses: flora and equipment.
/// assert_eq!(built.graph.senses_of("plant").len(), 2);
/// ```
pub fn build_taxonomy(sentences: &[SentenceExtraction], cfg: &TaxonomyConfig) -> BuiltTaxonomy {
    build_taxonomy_observed(sentences, cfg, probase_obs::global())
}

/// [`build_taxonomy`] with an explicit metric registry. Dispatches to the
/// parallel driver ([`crate::parallel`]) when the `threads` knob resolves
/// to more than one worker; the two paths are byte-identical.
pub fn build_taxonomy_observed(
    sentences: &[SentenceExtraction],
    cfg: &TaxonomyConfig,
    registry: &Registry,
) -> BuiltTaxonomy {
    if cfg.effective_threads() > 1 {
        return crate::parallel::build_taxonomy_parallel_observed(sentences, cfg, registry);
    }
    let (locals, interner) = registry
        .stage("taxonomy.local_build")
        .time(|| build_local_taxonomies(sentences));
    build_from_locals_observed(&locals, &interner, cfg, registry)
}

/// Build from pre-constructed local taxonomies (used by ablations),
/// reporting `taxonomy.*` metrics to the process-global registry.
pub fn build_from_locals(
    locals: &[LocalTaxonomy],
    interner: &Interner,
    cfg: &TaxonomyConfig,
) -> BuiltTaxonomy {
    build_from_locals_observed(locals, interner, cfg, probase_obs::global())
}

/// [`build_from_locals`] with an explicit metric registry.
pub fn build_from_locals_observed(
    locals: &[LocalTaxonomy],
    interner: &Interner,
    cfg: &TaxonomyConfig,
    registry: &Registry,
) -> BuiltTaxonomy {
    let sim = AbsoluteOverlap { delta: cfg.delta };
    let sim_calls = registry.counter("taxonomy.similarity_calls");
    let mut stats = BuildStats {
        local_taxonomies: locals.len(),
        ..Default::default()
    };

    // --- stage 2: horizontal grouping (indexed) -----------------------
    let mut state = MergeState::from_locals(locals);
    stats.horizontal_merges = registry
        .stage("taxonomy.horizontal_merge")
        .time(|| horizontal_pass(&mut state, &sim, &sim_calls));

    // --- absorption ----------------------------------------------------
    if cfg.absorb {
        stats.absorbed = absorb_small_groups(&mut state, cfg.delta);
    }

    // --- stage 3: vertical grouping (indexed) --------------------------
    stats.vertical_links = registry
        .stage("taxonomy.vertical_merge")
        .time(|| vertical_pass(&mut state, &sim, &sim_calls));

    // --- graph assembly -------------------------------------------------
    let (graph, dropped) = registry
        .stage("taxonomy.assemble")
        .time(|| assemble(&state, interner, cfg));
    stats.cycle_edges_dropped = dropped;
    stats.senses = state.live().count();
    BuiltTaxonomy { graph, stats }
}

/// Indexed horizontal merging: repeat until fixpoint. Returns merge count.
pub(crate) fn horizontal_pass(
    state: &mut MergeState,
    sim: &AbsoluteOverlap,
    sim_calls: &Arc<Counter>,
) -> usize {
    let mut merges = 0;
    loop {
        let mut merged_this_round = 0;
        // child symbol → live groups (per label) containing it.
        let mut index: HashMap<(Symbol, Symbol), Vec<usize>> = HashMap::new();
        let live: Vec<usize> = state.live().collect();
        for &gi in &live {
            let label = state.groups[gi].label;
            for &c in &state.groups[gi].children {
                index.entry((label, c)).or_default().push(gi);
            }
        }
        for &gi in &live {
            if !state.groups[gi].alive {
                continue;
            }
            // Count overlaps with candidate partners.
            let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
            let label = state.groups[gi].label;
            for &c in &state.groups[gi].children.clone() {
                if let Some(partners) = index.get(&(label, c)) {
                    for &p in partners {
                        if p != gi && state.groups[p].alive {
                            *counts.entry(p).or_insert(0) += 1;
                        }
                    }
                }
            }
            for (&p, &n) in &counts {
                if n >= sim.delta && state.groups[p].alive && state.groups[gi].alive {
                    // Verify against current (possibly grown) sets.
                    let op = MergeOp::Horizontal(gi.min(p), gi.max(p));
                    sim_calls.inc();
                    if state.applicable(op, sim) {
                        state.apply(op, sim);
                        merges += 1;
                        merged_this_round += 1;
                    }
                }
            }
        }
        if merged_this_round == 0 {
            break;
        }
    }
    merges
}

/// Absorb groups with fewer than δ children into a same-label superset
/// sense. Deterministic: the established target with the most members
/// wins; ties break toward the smaller group index. Returns the number of
/// groups absorbed.
pub(crate) fn absorb_small_groups(state: &mut MergeState, delta: usize) -> usize {
    let live: Vec<usize> = state.live().collect();
    // Established senses: at least δ children.
    let mut established: HashMap<Symbol, Vec<usize>> = HashMap::new();
    for &gi in &live {
        if state.groups[gi].children.len() >= delta {
            established
                .entry(state.groups[gi].label)
                .or_default()
                .push(gi);
        }
    }
    // Plan absorptions against the frozen established set so the result
    // is independent of processing order.
    let mut plan: Vec<(usize, usize)> = Vec::new();
    for &gi in &live {
        let g = &state.groups[gi];
        if g.children.len() >= delta {
            continue;
        }
        let Some(cands) = established.get(&g.label) else {
            continue;
        };
        let mut best: Option<usize> = None;
        for &t in cands {
            if t == gi {
                continue;
            }
            let tg = &state.groups[t];
            if g.children.iter().all(|c| tg.children.contains(c)) {
                best = match best {
                    None => Some(t),
                    Some(b) => {
                        let (bm, tm) = (state.groups[b].members.len(), tg.members.len());
                        Some(if tm > bm || (tm == bm && t < b) { t } else { b })
                    }
                };
            }
        }
        if let Some(t) = best {
            plan.push((t, gi));
        }
    }
    let absorbed = plan.len();
    for (target, src) in plan {
        // Manual fuse (bypasses the strict similarity check by design).
        let dead_label = state.groups[src].label;
        let g = std::mem::replace(
            &mut state.groups[src],
            Group {
                label: dead_label,
                children: BTreeSet::new(),
                child_counts: BTreeMap::new(),
                members: Vec::new(),
                alive: false,
            },
        );
        let dst = &mut state.groups[target];
        dst.children.extend(g.children.iter().copied());
        for (c, n) in g.child_counts {
            *dst.child_counts.entry(c).or_insert(0) += n;
        }
        dst.members.extend(g.members);
    }
    absorbed
}

/// Indexed vertical linking. Returns the number of links created.
pub(crate) fn vertical_pass(
    state: &mut MergeState,
    sim: &AbsoluteOverlap,
    sim_calls: &Arc<Counter>,
) -> usize {
    let live: Vec<usize> = state.live().collect();
    let mut by_label: HashMap<Symbol, Vec<usize>> = HashMap::new();
    for &gi in &live {
        by_label.entry(state.groups[gi].label).or_default().push(gi);
    }
    let mut links = 0;
    for &parent in &live {
        let children: Vec<Symbol> = state.groups[parent].children.iter().copied().collect();
        for c in children {
            let Some(cands) = by_label.get(&c) else {
                continue;
            };
            for &child in cands {
                if child == parent {
                    continue;
                }
                sim_calls.inc();
                if overlap(
                    &state.groups[parent].children,
                    &state.groups[child].children,
                ) >= sim.delta
                    && state.links.insert((parent, child))
                {
                    links += 1;
                }
            }
        }
    }
    links
}

/// Assemble the final [`ConceptGraph`]: sense numbering, concept edges,
/// instance leaves, fallback linking, cycle breaking.
pub(crate) fn assemble(
    state: &MergeState,
    interner: &Interner,
    cfg: &TaxonomyConfig,
) -> (ConceptGraph, usize) {
    let live: Vec<usize> = state.live().collect();

    // Sense numbering per label: more evidence (members) → lower sense.
    let mut by_label: HashMap<Symbol, Vec<usize>> = HashMap::new();
    for &gi in &live {
        by_label.entry(state.groups[gi].label).or_default().push(gi);
    }
    let mut sense_of: HashMap<usize, u32> = HashMap::new();
    // Hash iteration order is fine here: each entry is sorted and numbered
    // independently, so no cross-entry order reaches the output.
    for groups in by_label.values_mut() {
        groups.sort_by(|&a, &b| {
            let (ga, gb) = (&state.groups[a], &state.groups[b]);
            gb.members
                .len()
                .cmp(&ga.members.len())
                .then(gb.children.len().cmp(&ga.children.len()))
                .then(a.cmp(&b))
        });
        for (sense, &gi) in groups.iter().enumerate() {
            sense_of.insert(gi, sense as u32);
        }
    }

    // Collect edges: (parent group, target) where target is a group or a
    // leaf label.
    enum Target {
        Group(usize),
        Leaf(Symbol),
    }
    let mut raw_edges: Vec<(usize, Target, u32)> = Vec::new();
    for &gi in &live {
        let g = &state.groups[gi];
        // Which of g's children have explicit vertical links?
        let mut linked: HashMap<Symbol, Vec<usize>> = HashMap::new();
        for &(_, c) in state.links.iter().filter(|&&(p, _)| p == gi) {
            linked.entry(state.groups[c].label).or_default().push(c);
        }
        for (&c, &count) in &g.child_counts {
            if let Some(targets) = linked.get(&c) {
                for &t in targets {
                    raw_edges.push((gi, Target::Group(t), count));
                }
            } else if cfg.link_fallback {
                match by_label.get(&c) {
                    Some(groups) if !groups.is_empty() => {
                        // Largest sense of the label (sense 0).
                        let t = groups[0];
                        if t != gi {
                            raw_edges.push((gi, Target::Group(t), count));
                        } else {
                            raw_edges.push((gi, Target::Leaf(c), count));
                        }
                    }
                    _ => raw_edges.push((gi, Target::Leaf(c), count)),
                }
            } else if by_label.contains_key(&c) {
                // Label is conceptual elsewhere but undecidable here —
                // keep as leaf under this parent.
                raw_edges.push((gi, Target::Leaf(c), count));
            } else {
                raw_edges.push((gi, Target::Leaf(c), count));
            }
        }
    }

    // Build node space: group nodes + leaf nodes.
    let mut graph = ConceptGraph::new();
    let mut group_node: HashMap<usize, NodeId> = HashMap::new();
    for &gi in &live {
        let g = &state.groups[gi];
        let node = graph.ensure_node(interner.resolve(g.label), sense_of[&gi]);
        group_node.insert(gi, node);
    }
    // Leaf sense: one past the label's last concept sense, so instance
    // leaves never collide with concept nodes of the same label.
    let leaf_sense =
        |label: Symbol| -> u32 { by_label.get(&label).map(|g| g.len() as u32).unwrap_or(0) };

    // Group-to-group edges may form cycles; break them first on a compact
    // edge list, then materialize.
    let mut concept_edges: Vec<(usize, usize, u32)> = Vec::new();
    let mut leaf_edges: Vec<(usize, Symbol, u32)> = Vec::new();
    for (from, target, count) in raw_edges {
        match target {
            Target::Group(t) => concept_edges.push((from, t, count)),
            Target::Leaf(l) => leaf_edges.push((from, l, count)),
        }
    }
    let dropped = break_cycles(&mut concept_edges);

    for (from, to, count) in concept_edges {
        let (f, t) = (group_node[&from], group_node[&to]);
        if f != t {
            graph.add_evidence(f, t, count);
        }
    }
    for (from, label, count) in leaf_edges {
        let f = group_node[&from];
        let t = graph.ensure_node(interner.resolve(label), leaf_sense(label));
        if f != t {
            graph.add_evidence(f, t, count);
        }
    }
    (graph, dropped)
}

/// Remove the weakest edges until the edge list is acyclic. Iterative
/// Tarjan SCC; within each non-trivial SCC the minimum-count edge is
/// dropped, then recompute. Returns the number of edges dropped.
fn break_cycles(edges: &mut Vec<(usize, usize, u32)>) -> usize {
    let mut dropped = 0;
    loop {
        let sccs = strongly_connected(edges);
        // Map node → scc id.
        let mut scc_of: HashMap<usize, usize> = HashMap::new();
        for (i, comp) in sccs.iter().enumerate() {
            for &n in comp {
                scc_of.insert(n, i);
            }
        }
        // Find internal edges of non-trivial SCCs.
        let mut worst: Option<usize> = None; // index into edges
        for (idx, &(f, t, c)) in edges.iter().enumerate() {
            if f == t {
                worst = Some(idx);
                break;
            }
            if scc_of.get(&f) == scc_of.get(&t) {
                let comp = &sccs[scc_of[&f]];
                if comp.len() > 1 {
                    worst = match worst {
                        None => Some(idx),
                        Some(w) => Some(if c < edges[w].2 { idx } else { w }),
                    };
                }
            }
        }
        match worst {
            Some(idx) => {
                edges.swap_remove(idx);
                dropped += 1;
            }
            None => break,
        }
    }
    dropped
}

/// Iterative Tarjan over the edge list's node universe.
fn strongly_connected(edges: &[(usize, usize, u32)]) -> Vec<Vec<usize>> {
    let mut adj: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut nodes: BTreeSet<usize> = BTreeSet::new();
    for &(f, t, _) in edges {
        adj.entry(f).or_default().push(t);
        nodes.insert(f);
        nodes.insert(t);
    }
    let mut index_counter = 0usize;
    let mut indices: HashMap<usize, usize> = HashMap::new();
    let mut lowlink: HashMap<usize, usize> = HashMap::new();
    let mut on_stack: BTreeSet<usize> = BTreeSet::new();
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    #[derive(Clone, Copy)]
    enum Frame {
        Enter(usize),
        Resume(usize, usize), // node, child index
    }

    for &start in &nodes {
        if indices.contains_key(&start) {
            continue;
        }
        let mut call = vec![Frame::Enter(start)];
        while let Some(frame) = call.pop() {
            match frame {
                Frame::Enter(v) => {
                    indices.insert(v, index_counter);
                    lowlink.insert(v, index_counter);
                    index_counter += 1;
                    stack.push(v);
                    on_stack.insert(v);
                    call.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut ci) => {
                    let succs = adj.get(&v).cloned().unwrap_or_default();
                    let mut descended = false;
                    while ci < succs.len() {
                        let w = succs[ci];
                        ci += 1;
                        match indices.get(&w) {
                            None => {
                                call.push(Frame::Resume(v, ci));
                                call.push(Frame::Enter(w));
                                descended = true;
                                break;
                            }
                            Some(&wi) => {
                                if on_stack.contains(&w) {
                                    let lv = lowlink[&v].min(wi);
                                    lowlink.insert(v, lv);
                                }
                            }
                        }
                    }
                    if descended {
                        continue;
                    }
                    // All children processed: close the SCC if root.
                    // Propagate lowlink to parent (the frame below, if a
                    // Resume of the parent, will see updated values when it
                    // next reads — handle by peeking).
                    if let Some(Frame::Resume(p, _)) = call.last().copied() {
                        let lp = lowlink[&p].min(lowlink[&v]);
                        lowlink.insert(p, lp);
                    }
                    if lowlink[&v] == indices[&v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack.remove(&w);
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        sccs.push(comp);
                    }
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use probase_store::query::LevelMap;

    fn se(id: u64, root: &str, items: &[&str]) -> SentenceExtraction {
        SentenceExtraction {
            sentence_id: id,
            super_label: root.to_string(),
            items: items.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Paper Example 3 as sentence extractions.
    fn example3() -> Vec<SentenceExtraction> {
        vec![
            se(0, "plant", &["tree", "grass"]),
            se(1, "plant", &["tree", "grass", "herb"]),
            se(2, "plant", &["steam turbine", "pump", "boiler"]),
            se(3, "organism", &["plant", "tree", "grass", "animal"]),
            se(4, "thing", &["plant", "tree", "grass", "pump", "boiler"]),
        ]
    }

    #[test]
    fn builds_two_plant_senses() {
        let bt = build_taxonomy(&example3(), &TaxonomyConfig::default());
        let g = &bt.graph;
        assert_eq!(g.senses_of("plant").len(), 2, "{:?}", bt.stats);
        // flora sense has tree/grass children; equipment has pump/boiler.
        let senses = g.senses_of("plant");
        let kids = |n| {
            g.children(n)
                .map(|(c, _)| g.label(c).to_string())
                .collect::<BTreeSet<_>>()
        };
        let all: Vec<BTreeSet<String>> = senses.iter().map(|&s| kids(s)).collect();
        assert!(all.iter().any(|k| k.contains("tree")));
        assert!(all.iter().any(|k| k.contains("boiler")));
    }

    #[test]
    fn organism_links_to_flora_plant_only() {
        let bt = build_taxonomy(&example3(), &TaxonomyConfig::default());
        let g = &bt.graph;
        let organism = g.senses_of("organism")[0];
        let plant_children: Vec<NodeId> = g
            .children(organism)
            .map(|(c, _)| c)
            .filter(|&c| g.label(c) == "plant")
            .collect();
        assert_eq!(plant_children.len(), 1);
        let flora = plant_children[0];
        let kids: BTreeSet<&str> = g.children(flora).map(|(c, _)| g.label(c)).collect();
        assert!(kids.contains("tree"), "{kids:?}");
        assert!(!kids.contains("boiler"));
    }

    #[test]
    fn result_is_a_dag_with_levels() {
        let bt = build_taxonomy(&example3(), &TaxonomyConfig::default());
        let levels = LevelMap::compute(&bt.graph); // panics on cycles
        assert!(levels.max_level() >= 2);
    }

    #[test]
    fn absorption_pulls_in_singletons() {
        let mut sentences = example3();
        sentences.push(se(10, "plant", &["tree"])); // singleton, flora
        sentences.push(se(11, "plant", &["pump"])); // singleton, equipment
        let with = build_taxonomy(&sentences, &TaxonomyConfig::default());
        assert_eq!(with.stats.absorbed, 2);
        assert_eq!(with.graph.senses_of("plant").len(), 2);
        let without = build_taxonomy(
            &sentences,
            &TaxonomyConfig {
                absorb: false,
                ..Default::default()
            },
        );
        assert!(without.graph.senses_of("plant").len() > 2);
    }

    #[test]
    fn edge_counts_reflect_sentence_evidence() {
        let bt = build_taxonomy(&example3(), &TaxonomyConfig::default());
        let g = &bt.graph;
        let flora = {
            let senses = g.senses_of("plant");
            *senses
                .iter()
                .find(|&&s| g.children(s).any(|(c, _)| g.label(c) == "tree"))
                .unwrap()
        };
        let tree = g
            .children(flora)
            .find(|(c, _)| g.label(*c) == "tree")
            .unwrap();
        // "tree" listed under flora-plants in sentences 0 and 1.
        assert_eq!(tree.1.count, 2);
    }

    #[test]
    fn cycles_are_broken() {
        // a lists b's children and vice versa → mutual vertical links.
        let sentences = vec![
            se(0, "alpha", &["beta", "x", "y"]),
            se(1, "beta", &["alpha", "x", "y"]),
            se(2, "alpha", &["x", "y", "z"]),
            se(3, "beta", &["x", "y", "w"]),
        ];
        let bt = build_taxonomy(&sentences, &TaxonomyConfig::default());
        assert!(bt.stats.cycle_edges_dropped >= 1, "{:?}", bt.stats);
        let _ = LevelMap::compute(&bt.graph); // must not panic
    }

    #[test]
    fn leaf_nodes_never_collide_with_concept_senses() {
        // "plant" appears as an undecidable leaf under a parent with no
        // overlap evidence and link_fallback off.
        let sentences = vec![
            se(0, "plant", &["tree", "grass"]),
            se(1, "plant", &["pump", "boiler"]),
            se(2, "misc", &["plant", "rock"]),
        ];
        let bt = build_taxonomy(
            &sentences,
            &TaxonomyConfig {
                link_fallback: false,
                ..Default::default()
            },
        );
        let g = &bt.graph;
        // two concept senses + one leaf sense
        assert_eq!(g.senses_of("plant").len(), 3);
        let levels = LevelMap::compute(&bt.graph);
        let _ = levels;
    }

    #[test]
    fn fallback_links_to_largest_sense() {
        let sentences = vec![
            se(0, "plant", &["tree", "grass", "herb"]),
            se(1, "plant", &["tree", "grass"]),
            se(2, "plant", &["pump", "boiler"]),
            se(3, "misc", &["plant", "rock"]),
        ];
        let bt = build_taxonomy(&sentences, &TaxonomyConfig::default());
        let g = &bt.graph;
        let misc = g.senses_of("misc")[0];
        let plant_child = g
            .children(misc)
            .find(|(c, _)| g.label(*c) == "plant")
            .unwrap()
            .0;
        // Largest plant sense is the flora one (2 member sentences).
        let kids: BTreeSet<&str> = g.children(plant_child).map(|(c, _)| g.label(c)).collect();
        assert!(kids.contains("tree"), "{kids:?}");
    }

    #[test]
    fn stats_are_coherent() {
        let bt = build_taxonomy(&example3(), &TaxonomyConfig::default());
        assert_eq!(bt.stats.local_taxonomies, 5);
        assert!(bt.stats.horizontal_merges >= 1);
        assert!(bt.stats.vertical_links >= 2);
        assert!(bt.stats.senses <= 5);
    }
}
