//! The merge engine: horizontal and vertical merge operations (paper §3.4)
//! in an *operational* form.
//!
//! The engine models taxonomy construction exactly as the paper's proofs
//! do: a state (set of live groups + vertical links) and two operations —
//!
//! * **Horizontal merge** of two same-label groups with similar child
//!   sets (Property 2): the groups fuse, child sets union.
//! * **Vertical merge**: a link from group `x` to group `y` when `y`'s
//!   label is a child of `x` and the child sets are similar (Property 3).
//!
//! Any sequence of applicable operations can be run to exhaustion; by
//! Theorem 1 the final structure is order-independent (property-tested in
//! `tests/`), and by Theorem 2 running all horizontal merges first
//! minimizes the operation count (ablation AB1). The production builder
//! (`crate::build`) drives this engine with an indexed
//! horizontal-first strategy.

use crate::local::LocalTaxonomy;
use crate::sim::Similarity;
use probase_store::Symbol;
use std::collections::{BTreeMap, BTreeSet};

/// A (possibly merged) group of local taxonomies sharing one root sense.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Root label symbol.
    pub label: Symbol,
    /// Union of child symbols.
    pub children: BTreeSet<Symbol>,
    /// Per-child evidence: number of member sentences listing the child.
    pub child_counts: BTreeMap<Symbol, u32>,
    /// Sentence ids merged into this group.
    pub members: Vec<u64>,
    /// Dead groups have been merged into another.
    pub alive: bool,
}

/// One merge operation, in terms of current group indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOp {
    /// Fuse `b` into `a` (same label).
    Horizontal(usize, usize),
    /// Link `parent` → `child` (child's label ∈ parent's children).
    Vertical { parent: usize, child: usize },
}

/// Merge state: groups plus vertical links.
#[derive(Debug, Clone)]
pub struct MergeState {
    pub groups: Vec<Group>,
    /// Vertical links between live group indices.
    pub links: BTreeSet<(usize, usize)>,
    /// Operations applied so far.
    pub ops_applied: usize,
}

impl MergeState {
    /// One group per local taxonomy.
    pub fn from_locals(locals: &[LocalTaxonomy]) -> Self {
        let groups = locals
            .iter()
            .map(|lt| {
                let child_counts = lt.children.iter().map(|&c| (c, 1)).collect();
                Group {
                    label: lt.root,
                    children: lt.children.clone(),
                    child_counts,
                    members: vec![lt.sentence_id],
                    alive: true,
                }
            })
            .collect();
        Self {
            groups,
            links: BTreeSet::new(),
            ops_applied: 0,
        }
    }

    /// Indices of live groups.
    pub fn live(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.groups.len()).filter(|&i| self.groups[i].alive)
    }

    /// Is `op` currently applicable?
    pub fn applicable(&self, op: MergeOp, sim: &dyn Similarity) -> bool {
        match op {
            MergeOp::Horizontal(a, b) => {
                a != b
                    && self.groups[a].alive
                    && self.groups[b].alive
                    && self.groups[a].label == self.groups[b].label
                    && sim.similar(&self.groups[a].children, &self.groups[b].children)
            }
            MergeOp::Vertical { parent, child } => {
                parent != child
                    && self.groups[parent].alive
                    && self.groups[child].alive
                    && self.groups[parent]
                        .children
                        .contains(&self.groups[child].label)
                    && !self.links.contains(&(parent, child))
                    && sim.similar(&self.groups[parent].children, &self.groups[child].children)
            }
        }
    }

    /// Enumerate all currently applicable operations (O(n²); intended for
    /// the theorem tests and small inputs, not the production path).
    pub fn applicable_ops(&self, sim: &dyn Similarity) -> Vec<MergeOp> {
        let live: Vec<usize> = self.live().collect();
        let mut ops = Vec::new();
        for (ai, &a) in live.iter().enumerate() {
            for &b in &live[ai + 1..] {
                if self.applicable(MergeOp::Horizontal(a, b), sim) {
                    ops.push(MergeOp::Horizontal(a, b));
                }
            }
        }
        for &p in &live {
            for &c in &live {
                if self.applicable(
                    MergeOp::Vertical {
                        parent: p,
                        child: c,
                    },
                    sim,
                ) {
                    ops.push(MergeOp::Vertical {
                        parent: p,
                        child: c,
                    });
                }
            }
        }
        ops
    }

    /// Apply an operation. Panics if it is not applicable (callers check).
    pub fn apply(&mut self, op: MergeOp, sim: &dyn Similarity) {
        assert!(self.applicable(op, sim), "inapplicable op {op:?}");
        match op {
            MergeOp::Horizontal(a, b) => {
                let dead_label = self.groups[b].label;
                let src = std::mem::replace(
                    &mut self.groups[b],
                    Group {
                        label: dead_label,
                        children: BTreeSet::new(),
                        child_counts: BTreeMap::new(),
                        members: Vec::new(),
                        alive: false,
                    },
                );
                let dst = &mut self.groups[a];
                dst.children.extend(src.children.iter().copied());
                for (c, n) in src.child_counts {
                    *dst.child_counts.entry(c).or_insert(0) += n;
                }
                dst.members.extend(src.members);
                // Rewire links that touched b.
                let old: Vec<(usize, usize)> = self
                    .links
                    .iter()
                    .copied()
                    .filter(|&(p, c)| p == b || c == b)
                    .collect();
                for (p, c) in old {
                    self.links.remove(&(p, c));
                    let np = if p == b { a } else { p };
                    let nc = if c == b { a } else { c };
                    if np != nc {
                        self.links.insert((np, nc));
                    }
                }
            }
            MergeOp::Vertical { parent, child } => {
                self.links.insert((parent, child));
            }
        }
        self.ops_applied += 1;
    }

    /// Run operations in the order chosen by `pick` until exhaustion.
    /// Returns the number of operations applied.
    pub fn run_with<F>(&mut self, sim: &dyn Similarity, mut pick: F) -> usize
    where
        F: FnMut(&[MergeOp]) -> usize,
    {
        let start = self.ops_applied;
        loop {
            let ops = self.applicable_ops(sim);
            if ops.is_empty() {
                break;
            }
            let idx = pick(&ops).min(ops.len() - 1);
            self.apply(ops[idx], sim);
        }
        self.ops_applied - start
    }

    /// The paper's optimal strategy: all horizontal merges first, then all
    /// vertical merges (Theorem 2). Uses the generic engine; the production
    /// builder has an indexed fast path with identical results.
    pub fn run_horizontal_first(&mut self, sim: &dyn Similarity) -> usize {
        let start = self.ops_applied;
        loop {
            let ops: Vec<MergeOp> = self
                .applicable_ops(sim)
                .into_iter()
                .filter(|op| matches!(op, MergeOp::Horizontal(..)))
                .collect();
            if ops.is_empty() {
                break;
            }
            self.apply(ops[0], sim);
        }
        loop {
            let ops: Vec<MergeOp> = self
                .applicable_ops(sim)
                .into_iter()
                .filter(|op| matches!(op, MergeOp::Vertical { .. }))
                .collect();
            if ops.is_empty() {
                break;
            }
            self.apply(ops[0], sim);
        }
        self.ops_applied - start
    }

    /// A canonical fingerprint of the final structure, independent of
    /// group indices: sorted groups as (label, children) plus links as
    /// (parent fingerprint, child fingerprint). Used to verify Theorem 1.
    pub fn canonical(&self) -> CanonicalState {
        let mut groups: Vec<GroupFingerprint> = self
            .live()
            .map(|i| {
                let g = &self.groups[i];
                (g.label, g.children.iter().copied().collect())
            })
            .collect();
        groups.sort();
        let fp = |i: usize| -> GroupFingerprint {
            let g = &self.groups[i];
            (g.label, g.children.iter().copied().collect())
        };
        let mut links: Vec<(GroupFingerprint, GroupFingerprint)> =
            self.links.iter().map(|&(p, c)| (fp(p), fp(c))).collect();
        links.sort();
        CanonicalState { groups, links }
    }
}

/// Index-free fingerprint of one group: its label plus sorted children.
pub type GroupFingerprint = (Symbol, Vec<Symbol>);

/// Index-free fingerprint of a merge state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalState {
    pub groups: Vec<GroupFingerprint>,
    pub links: Vec<(GroupFingerprint, GroupFingerprint)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::AbsoluteOverlap;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn lt(root: u32, children: &[u32], id: u64) -> LocalTaxonomy {
        LocalTaxonomy {
            root: Symbol(root),
            children: children.iter().map(|&c| Symbol(c)).collect(),
            sentence_id: id,
        }
    }

    /// The paper's Example 3 in symbolic form:
    /// plants=0 trees=1 grass=2 herbs=3 turbines=4 pumps=5 boilers=6
    /// organisms=7 animals=8 things=9
    fn example3() -> Vec<LocalTaxonomy> {
        vec![
            lt(0, &[1, 2], 0),          // a) plants: trees grass
            lt(0, &[1, 2, 3], 1),       // b) plants: trees grass herbs
            lt(0, &[4, 5, 6], 2),       // c) plants: turbines pumps boilers
            lt(7, &[0, 1, 2, 8], 3),    // d) organisms: plants trees grass animals
            lt(9, &[0, 1, 2, 5, 6], 4), // e) things: plants trees grass pumps boilers
        ]
    }

    #[test]
    fn horizontal_merge_fuses_same_sense() {
        let sim = AbsoluteOverlap { delta: 2 };
        let mut st = MergeState::from_locals(&example3());
        st.run_horizontal_first(&sim);
        // plants(a) and plants(b) merged; plants(c) stays a separate sense.
        let plant_groups: Vec<usize> = st
            .live()
            .filter(|&i| st.groups[i].label == Symbol(0))
            .collect();
        assert_eq!(plant_groups.len(), 2);
    }

    #[test]
    fn vertical_merge_links_parent_to_right_sense() {
        let sim = AbsoluteOverlap { delta: 2 };
        let mut st = MergeState::from_locals(&example3());
        st.run_horizontal_first(&sim);
        // organisms{plants,trees,grass,animals} links to flora-plants
        // {trees,grass,herbs}, not to equipment-plants.
        let flora: Vec<usize> = st
            .live()
            .filter(|&i| {
                st.groups[i].label == Symbol(0) && st.groups[i].children.contains(&Symbol(1))
            })
            .collect();
        let organisms: Vec<usize> = st
            .live()
            .filter(|&i| st.groups[i].label == Symbol(7))
            .collect();
        assert_eq!(flora.len(), 1);
        assert_eq!(organisms.len(), 1);
        assert!(st.links.contains(&(organisms[0], flora[0])));
        // equipment sense not linked from organisms
        let equip: Vec<usize> = st
            .live()
            .filter(|&i| {
                st.groups[i].label == Symbol(0) && st.groups[i].children.contains(&Symbol(4))
            })
            .collect();
        assert!(!st.links.contains(&(organisms[0], equip[0])));
    }

    #[test]
    fn things_links_to_both_plant_senses() {
        // Figure 3(b): "things" overlaps flora (trees, grass) and equipment
        // (pumps, boilers) — both links form.
        let sim = AbsoluteOverlap { delta: 2 };
        let mut st = MergeState::from_locals(&example3());
        st.run_horizontal_first(&sim);
        let things: usize = st
            .live()
            .find(|&i| st.groups[i].label == Symbol(9))
            .unwrap();
        let plant_targets: Vec<usize> = st
            .links
            .iter()
            .filter(|&&(p, _)| p == things)
            .map(|&(_, c)| c)
            .collect();
        assert_eq!(plant_targets.len(), 2, "links: {:?}", st.links);
    }

    #[test]
    fn theorem1_confluence_under_random_orders() {
        let sim = AbsoluteOverlap { delta: 2 };
        let mut reference: Option<CanonicalState> = None;
        for seed in 0..12 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut st = MergeState::from_locals(&example3());
            st.run_with(&sim, |ops| rng.gen_range(0..ops.len()));
            let canon = st.canonical();
            match &reference {
                None => reference = Some(canon),
                Some(r) => assert_eq!(r, &canon, "order changed the result (seed {seed})"),
            }
        }
    }

    #[test]
    fn theorem2_horizontal_first_minimizes_ops() {
        let sim = AbsoluteOverlap { delta: 2 };
        let mut hf = MergeState::from_locals(&example3());
        let hf_ops = hf.run_horizontal_first(&sim);
        for seed in 0..12 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut st = MergeState::from_locals(&example3());
            let ops = st.run_with(&sim, |ops| rng.gen_range(0..ops.len()));
            assert!(hf_ops <= ops, "hf {hf_ops} > random {ops}");
            assert_eq!(st.canonical(), hf.canonical());
        }
    }

    #[test]
    fn example4_vertical_first_costs_more() {
        // Figure 4: two A-groups and two B-groups. The figure's merges
        // include B1+B2, which share only one child — so it implicitly
        // runs at δ=1. Vertical-first creates redundant links that the
        // later horizontal merges collapse, costing extra operations.
        // A=0 B=1 C=2 D=3 E=4
        let locals = vec![
            lt(0, &[1, 2, 3], 0), // A1: B C D
            lt(0, &[1, 2, 4], 1), // A2: B C E
            lt(1, &[2, 3], 2),    // B1: C D
            lt(1, &[2, 4], 3),    // B2: C E
        ];
        let sim = AbsoluteOverlap { delta: 1 };
        let mut hf = MergeState::from_locals(&locals);
        let hf_ops = hf.run_horizontal_first(&sim);

        // Force verticals first.
        let mut vf = MergeState::from_locals(&locals);
        loop {
            let ops: Vec<MergeOp> = vf
                .applicable_ops(&sim)
                .into_iter()
                .filter(|op| matches!(op, MergeOp::Vertical { .. }))
                .collect();
            if ops.is_empty() {
                break;
            }
            vf.apply(ops[0], &sim);
        }
        let mut total_vf = vf.ops_applied;
        total_vf += vf.run_with(&sim, |_| 0);
        let _ = total_vf;
        assert!(
            hf_ops < vf.ops_applied,
            "hf {hf_ops} vs vf {}",
            vf.ops_applied
        );
        assert_eq!(hf.canonical(), vf.canonical());
    }

    #[test]
    fn child_counts_accumulate_across_merges() {
        let sim = AbsoluteOverlap { delta: 2 };
        let locals = vec![lt(0, &[1, 2], 0), lt(0, &[1, 2, 3], 1)];
        let mut st = MergeState::from_locals(&locals);
        st.run_horizontal_first(&sim);
        let g = st.live().next().unwrap();
        assert_eq!(st.groups[g].child_counts[&Symbol(1)], 2);
        assert_eq!(st.groups[g].child_counts[&Symbol(3)], 1);
        assert_eq!(st.groups[g].members.len(), 2);
    }
}
