//! Incremental taxonomy maintenance: fold evidence in without a full
//! rebuild.
//!
//! The paper's Theorem 1 (the merge process is confluent: the order in
//! which applicable merges run does not change the final structure) is a
//! license for *incrementality*: instead of rebuilding Algorithm 2's
//! output from scratch whenever new sentences arrive, fold each batch
//! into the existing merge state and re-run only the merges the batch
//! could possibly have enabled. [`IncrementalTaxonomy`] implements that
//! fold with a byte-identical contract — building after any sequence of
//! folds yields exactly the snapshot bytes and [`BuildStats`] a one-shot
//! [`crate::build::build_taxonomy`] over the concatenated stream yields
//! (property-tested in `tests/incremental_prop.rs` across seeds × batch
//! sizes × orderings × thread counts).
//!
//! ## What is maintained between folds
//!
//! The persistent state is the **post-horizontal-fixpoint** merge state
//! ("H-state"): the interner plus the group array after all applicable
//! horizontal merges, *before* absorption and vertical linking. The split
//! matters:
//!
//! * **Horizontal merging is confluent** (Property 4: absolute overlap
//!   is monotone — merging only grows child sets, so an applicable merge
//!   can never become inapplicable). The label-partitioned fixpoint the
//!   fold runs (Property 2: merges never cross labels) therefore lands
//!   on the same final partition as a global pass over the union, and
//!   because every pairwise fuse keeps the smaller index, the surviving
//!   index of a merge class is the class minimum regardless of order —
//!   the *group array itself*, not just its quotient, is identical.
//! * **Absorption and vertical linking are not batch-confluent**:
//!   absorption consults a frozen "established senses" set and vertical
//!   links are threshold reads of the converged child sets, so running
//!   them against a half-folded state could bake in decisions a later
//!   batch would change. They are deferred to [`IncrementalTaxonomy::build`],
//!   which runs them (plus assembly) on a clone — exactly the suffix of
//!   the one-shot pipeline downstream of the horizontal fixpoint.
//!
//! A fold is therefore: intern the batch in stream order (appending to
//! the shared interner — first-occurrence order is what snapshot bytes
//! key on), append one group per local taxonomy, and re-run the
//! horizontal fixpoint *restricted to the labels the batch touched*.
//! Untouched labels are already at fixpoint and monotonicity says the
//! new groups cannot enable merges under labels they do not carry.
//!
//! The serve layer's evidence-stream half lives here too:
//! [`shift_count_histogram`] maintains the edge-count histogram the urns
//! plausibility model is fitted from, so a WAL batch updates the model's
//! input in O(batch) instead of O(graph) (see `probase-serve`'s
//! durability module).

use crate::build::{
    absorb_small_groups, assemble, horizontal_pass, vertical_pass, BuildStats, BuiltTaxonomy,
    TaxonomyConfig,
};
use crate::local::{build_local_taxonomies_into, LocalTaxonomy};
use crate::merge::{Group, MergeState};
use crate::sim::AbsoluteOverlap;
use probase_extract::SentenceExtraction;
use probase_obs::{Counter, Registry};
use probase_store::{ConceptGraph, GraphView, Interner, NodeId, Symbol};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// What one fold did (also mirrored into `taxonomy.incremental.*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FoldOutcome {
    /// Local taxonomies appended by this batch (empty sentences skip).
    pub locals_added: usize,
    /// Horizontal merges the batch enabled.
    pub horizontal_merges: usize,
    /// Distinct root labels whose fixpoint was re-run.
    pub labels_touched: usize,
}

/// A continuously-maintained taxonomy: fold sentence batches in as they
/// arrive, build the full DAG on demand.
///
/// ```
/// use probase_extract::SentenceExtraction;
/// use probase_taxonomy::{build_taxonomy, IncrementalTaxonomy, TaxonomyConfig};
/// let s = |id, root: &str, items: &[&str]| SentenceExtraction {
///     sentence_id: id,
///     super_label: root.to_string(),
///     items: items.iter().map(|i| i.to_string()).collect(),
/// };
/// let batch1 = [s(0, "plant", &["tree", "grass"])];
/// let batch2 = [s(1, "plant", &["tree", "grass", "herb"])];
/// let cfg = TaxonomyConfig { threads: 1, ..Default::default() };
/// let mut inc = IncrementalTaxonomy::new(cfg.clone());
/// inc.fold(&batch1);
/// inc.fold(&batch2);
/// let union: Vec<_> = batch1.iter().chain(&batch2).cloned().collect();
/// let one_shot = build_taxonomy(&union, &cfg);
/// assert_eq!(inc.build().stats, one_shot.stats);
/// ```
#[derive(Debug)]
pub struct IncrementalTaxonomy {
    cfg: TaxonomyConfig,
    interner: Interner,
    /// H-state: groups at the horizontal fixpoint, no links yet.
    state: MergeState,
    /// Horizontal merges accumulated across folds (equals the one-shot
    /// build's count: merges = dead groups, and the dead set is
    /// order-invariant).
    horizontal_merges: usize,
    folds: u64,
    /// Synthetic sentence ids for [`Self::fold_graph`] locals.
    next_synthetic_id: u64,
    c_folds: Arc<Counter>,
    c_locals: Arc<Counter>,
    c_merges: Arc<Counter>,
    c_labels: Arc<Counter>,
    sim_calls: Arc<Counter>,
}

impl IncrementalTaxonomy {
    /// An empty maintained taxonomy recording to the process-global
    /// registry.
    pub fn new(cfg: TaxonomyConfig) -> Self {
        Self::with_registry(cfg, probase_obs::global())
    }

    /// [`Self::new`] with an explicit metric registry
    /// (`taxonomy.incremental.*`).
    pub fn with_registry(cfg: TaxonomyConfig, registry: &Registry) -> Self {
        Self {
            cfg,
            interner: Interner::new(),
            state: MergeState {
                groups: Vec::new(),
                links: BTreeSet::new(),
                ops_applied: 0,
            },
            horizontal_merges: 0,
            folds: 0,
            next_synthetic_id: 0,
            c_folds: registry.counter("taxonomy.incremental.folds"),
            c_locals: registry.counter("taxonomy.incremental.locals_added"),
            c_merges: registry.counter("taxonomy.incremental.merges"),
            c_labels: registry.counter("taxonomy.incremental.labels_touched"),
            sim_calls: registry.counter("taxonomy.incremental.similarity_calls"),
        }
    }

    /// The shared symbol table (grows in first-occurrence stream order).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Local taxonomies folded so far (== the one-shot
    /// `BuildStats::local_taxonomies`).
    pub fn locals_folded(&self) -> usize {
        self.state.groups.len()
    }

    /// Completed folds.
    pub fn folds(&self) -> u64 {
        self.folds
    }

    /// Fold one sentence batch into the maintained state. Batches are
    /// order-sensitive only down to snapshot bytes (symbol and node
    /// numbering track stream order); the *structure* is order-invariant
    /// by Theorem 1.
    pub fn fold(&mut self, sentences: &[SentenceExtraction]) -> FoldOutcome {
        let locals = build_local_taxonomies_into(&mut self.interner, sentences);
        self.next_synthetic_id = self.next_synthetic_id.max(
            sentences
                .iter()
                .map(|s| s.sentence_id + 1)
                .max()
                .unwrap_or(0),
        );
        self.fold_locals(locals)
    }

    /// Fold a built taxonomy graph in: every concept sense becomes one
    /// identity local (its whole child set) plus per-child weight
    /// re-injection so evidence counts survive — the [`crate::regraph`]
    /// encoding, batched through the incremental path.
    pub fn fold_graph(&mut self, graph: &ConceptGraph) -> FoldOutcome {
        let mut locals = Vec::new();
        for node in graph.concepts() {
            let root = self.interner.intern(graph.label(node));
            let children: BTreeSet<Symbol> = graph
                .children(node)
                .map(|(c, _)| self.interner.intern(graph.label(c)))
                .filter(|&c| c != root)
                .collect();
            if children.is_empty() {
                continue;
            }
            locals.push(LocalTaxonomy {
                root,
                children: children.clone(),
                sentence_id: self.next_synthetic_id,
            });
            self.next_synthetic_id += 1;
            for (c, data) in graph.children(node) {
                let sym = self.interner.intern(graph.label(c));
                if sym == root {
                    continue;
                }
                for _ in 1..data.count {
                    locals.push(LocalTaxonomy {
                        root,
                        children: std::iter::once(sym).collect(),
                        sentence_id: self.next_synthetic_id,
                    });
                    self.next_synthetic_id += 1;
                }
            }
        }
        self.fold_locals(locals)
    }

    /// Append pre-interned locals (symbols must come from
    /// [`Self::interner`]) and restore the horizontal fixpoint for the
    /// labels they touch.
    fn fold_locals(&mut self, locals: Vec<LocalTaxonomy>) -> FoldOutcome {
        let base = self.state.groups.len();
        let mut affected: BTreeSet<Symbol> = BTreeSet::new();
        for lt in locals {
            affected.insert(lt.root);
            let child_counts = lt.children.iter().map(|&c| (c, 1)).collect();
            self.state.groups.push(Group {
                label: lt.root,
                children: lt.children,
                child_counts,
                members: vec![lt.sentence_id],
                alive: true,
            });
        }
        let locals_added = self.state.groups.len() - base;

        // Live groups of the affected labels, ascending index — the same
        // bucket extraction as the parallel driver, restricted to the
        // labels whose fixpoint the batch could have perturbed.
        let mut buckets: BTreeMap<Symbol, Vec<usize>> = BTreeMap::new();
        for gi in 0..self.state.groups.len() {
            let g = &self.state.groups[gi];
            if g.alive && affected.contains(&g.label) {
                buckets.entry(g.label).or_default().push(gi);
            }
        }
        let sim = AbsoluteOverlap {
            delta: self.cfg.delta,
        };
        let mut merges = 0usize;
        for global in buckets.values() {
            if global.len() < 2 {
                continue;
            }
            // Lift the bucket into a private state (bucket-local order
            // mirrors global order, so min-index survivors agree), run
            // the serial fixpoint, write the groups back.
            let groups: Vec<Group> = global
                .iter()
                .map(|&gi| {
                    let label = self.state.groups[gi].label;
                    std::mem::replace(
                        &mut self.state.groups[gi],
                        Group {
                            label,
                            children: BTreeSet::new(),
                            child_counts: BTreeMap::new(),
                            members: Vec::new(),
                            alive: false,
                        },
                    )
                })
                .collect();
            let mut bucket = MergeState {
                groups,
                links: BTreeSet::new(),
                ops_applied: 0,
            };
            merges += horizontal_pass(&mut bucket, &sim, &self.sim_calls);
            self.state.ops_applied += bucket.ops_applied;
            for (group, &gi) in bucket.groups.into_iter().zip(global) {
                self.state.groups[gi] = group;
            }
        }
        self.horizontal_merges += merges;
        self.folds += 1;

        let outcome = FoldOutcome {
            locals_added,
            horizontal_merges: merges,
            labels_touched: affected.len(),
        };
        self.c_folds.inc();
        self.c_locals.add(outcome.locals_added as u64);
        self.c_merges.add(outcome.horizontal_merges as u64);
        self.c_labels.add(outcome.labels_touched as u64);
        outcome
    }

    /// Run the deferred pipeline suffix — absorption, vertical linking,
    /// assembly — on a clone of the maintained state. The result is
    /// byte-identical (graph snapshot and [`BuildStats`]) to a one-shot
    /// build over the concatenation of every folded batch, at any thread
    /// count.
    pub fn build(&self) -> BuiltTaxonomy {
        self.build_observed(probase_obs::global())
    }

    /// [`Self::build`] with an explicit registry for the
    /// `taxonomy.similarity_calls` counter.
    pub fn build_observed(&self, registry: &Registry) -> BuiltTaxonomy {
        let sim = AbsoluteOverlap {
            delta: self.cfg.delta,
        };
        let sim_calls = registry.counter("taxonomy.similarity_calls");
        let mut state = self.state.clone();
        let mut stats = BuildStats {
            local_taxonomies: state.groups.len(),
            horizontal_merges: self.horizontal_merges,
            ..Default::default()
        };
        if self.cfg.absorb {
            stats.absorbed = absorb_small_groups(&mut state, self.cfg.delta);
        }
        stats.vertical_links = vertical_pass(&mut state, &sim, &sim_calls);
        let (graph, dropped) = assemble(&state, &self.interner, &self.cfg);
        stats.cycle_edges_dropped = dropped;
        stats.senses = state.live().count();
        BuiltTaxonomy { graph, stats }
    }
}

/// Build the edge-count histogram of a whole graph: `hist[k]` = number of
/// edges observed exactly `k` times. This is the input the urns
/// plausibility model fits on; [`shift_count_histogram`] maintains it
/// incrementally as evidence folds in. Generic over [`GraphView`] so a
/// packed snapshot can be histogrammed without unpacking.
pub fn count_histogram<G: GraphView>(graph: &G) -> BTreeMap<u32, u64> {
    let mut hist = BTreeMap::new();
    for (_, _, e) in graph.edges() {
        *hist.entry(e.count.max(1)).or_insert(0u64) += 1;
    }
    hist
}

/// Shift the edge-count histogram for a batch of *already applied*
/// evidence: `touched` maps each updated edge to the total count the
/// batch added to it, and `graph` already reflects the batch. Each edge
/// moves from its pre-batch bucket (`post - delta`, absent when the edge
/// is new) to its post-batch bucket, so maintaining the histogram is
/// O(batch·log k) instead of the O(edges) full rescan. Returns the number
/// of distinct edges shifted.
pub fn shift_count_histogram(
    graph: &ConceptGraph,
    touched: impl IntoIterator<Item = ((NodeId, NodeId), u32)>,
    hist: &mut BTreeMap<u32, u64>,
) -> usize {
    let mut shifted = 0usize;
    for ((parent, child), delta) in touched {
        let Some(post) = graph.edge(parent, child).map(|e| e.count.max(1)) else {
            continue; // edge vanished (e.g. rebased away) — nothing to move
        };
        let pre = post.saturating_sub(delta);
        if pre > 0 {
            if let Some(w) = hist.get_mut(&pre.max(1)) {
                *w -= 1;
                if *w == 0 {
                    hist.remove(&pre.max(1));
                }
            }
        }
        *hist.entry(post).or_insert(0) += 1;
        shifted += 1;
    }
    shifted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_taxonomy;
    use probase_store::snapshot;

    fn se(id: u64, root: &str, items: &[&str]) -> SentenceExtraction {
        SentenceExtraction {
            sentence_id: id,
            super_label: root.to_string(),
            items: items.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn example3() -> Vec<SentenceExtraction> {
        vec![
            se(0, "plant", &["tree", "grass"]),
            se(1, "plant", &["tree", "grass", "herb"]),
            se(2, "plant", &["steam turbine", "pump", "boiler"]),
            se(3, "organism", &["plant", "tree", "grass", "animal"]),
            se(4, "thing", &["plant", "tree", "grass", "pump", "boiler"]),
        ]
    }

    fn serial_cfg() -> TaxonomyConfig {
        TaxonomyConfig {
            threads: 1,
            ..Default::default()
        }
    }

    #[test]
    fn folding_one_batch_matches_one_shot() {
        let sentences = example3();
        let mut inc = IncrementalTaxonomy::new(serial_cfg());
        inc.fold(&sentences);
        let built = inc.build();
        let one_shot = build_taxonomy(&sentences, &serial_cfg());
        assert_eq!(built.stats, one_shot.stats);
        assert_eq!(
            snapshot::to_bytes(&built.graph).unwrap(),
            snapshot::to_bytes(&one_shot.graph).unwrap()
        );
    }

    #[test]
    fn per_sentence_folds_match_one_shot() {
        let sentences = example3();
        let mut inc = IncrementalTaxonomy::new(serial_cfg());
        for s in &sentences {
            inc.fold(std::slice::from_ref(s));
        }
        let built = inc.build();
        let one_shot = build_taxonomy(&sentences, &serial_cfg());
        assert_eq!(built.stats, one_shot.stats);
        assert_eq!(
            snapshot::to_bytes(&built.graph).unwrap(),
            snapshot::to_bytes(&one_shot.graph).unwrap()
        );
    }

    #[test]
    fn build_is_repeatable_and_non_destructive() {
        let sentences = example3();
        let mut inc = IncrementalTaxonomy::new(serial_cfg());
        inc.fold(&sentences[..2]);
        let a = inc.build();
        let b = inc.build();
        assert_eq!(a.stats, b.stats);
        inc.fold(&sentences[2..]);
        let after = inc.build();
        let one_shot = build_taxonomy(&sentences, &serial_cfg());
        assert_eq!(after.stats, one_shot.stats);
    }

    #[test]
    fn fold_reports_merges_and_labels() {
        let mut inc = IncrementalTaxonomy::new(serial_cfg());
        let first = inc.fold(&[se(0, "plant", &["tree", "grass"])]);
        assert_eq!(first.locals_added, 1);
        assert_eq!(first.horizontal_merges, 0);
        assert_eq!(first.labels_touched, 1);
        let second = inc.fold(&[se(1, "plant", &["tree", "grass", "herb"])]);
        assert_eq!(second.horizontal_merges, 1, "same flora sense fuses");
        assert_eq!(inc.locals_folded(), 2);
        assert_eq!(inc.folds(), 2);
    }

    #[test]
    fn empty_and_self_only_sentences_fold_to_nothing() {
        let mut inc = IncrementalTaxonomy::new(serial_cfg());
        let out = inc.fold(&[se(0, "animal", &[]), se(1, "animal", &["animal"])]);
        assert_eq!(out.locals_added, 0);
        assert_eq!(inc.build().graph.node_count(), 0);
    }

    #[test]
    fn count_histogram_and_shift_agree() {
        let mut g = ConceptGraph::new();
        let a = g.ensure_node("a", 0);
        let b = g.ensure_node("b", 0);
        let c = g.ensure_node("c", 0);
        g.add_evidence(a, b, 3);
        g.add_evidence(a, c, 1);
        let mut hist = count_histogram(&g);
        assert_eq!(hist.get(&3), Some(&1));
        assert_eq!(hist.get(&1), Some(&1));

        // Apply a batch: (a,b) += 2 (3 → 5), (a,c) += 1 (1 → 2), new (b,c) = 4.
        g.add_evidence(a, b, 2);
        g.add_evidence(a, c, 1);
        g.add_evidence(b, c, 4);
        let shifted =
            shift_count_histogram(&g, [((a, b), 2u32), ((a, c), 1), ((b, c), 4)], &mut hist);
        assert_eq!(shifted, 3);
        assert_eq!(hist, count_histogram(&g), "shift must equal full rescan");
    }
}
