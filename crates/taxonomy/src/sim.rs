//! Similarity functions over child sets (paper §3.5).
//!
//! Both merge operators hinge on a similarity test `Sim(A, B)` between two
//! local taxonomies' child sets. The paper requires the test to satisfy
//!
//! > **Property 4.** If `A ⊆ A'` and `B ⊆ B'`, then
//! > `Sim(A, B) ⇒ Sim(A', B')`.
//!
//! because only then is the merge process confluent (Theorem 1). Relative
//! measures like Jaccard violate it — the paper's own example shows
//! `J({MS, IBM, HP}, {MS, IBM, Intel}) = 0.5` passing a 0.5 threshold
//! while the superset pair fails. The shipped similarity is therefore the
//! **absolute overlap** `|A ∩ B| ≥ δ`; Jaccard is retained only for the
//! ablation experiment (AB2 in DESIGN.md) that reproduces the absurdity.

use probase_store::Symbol;
use std::collections::BTreeSet;

/// A similarity test between child sets.
pub trait Similarity {
    /// Are `a` and `b` similar enough to justify a merge?
    fn similar(&self, a: &BTreeSet<Symbol>, b: &BTreeSet<Symbol>) -> bool;
}

/// Count of common elements (no allocation).
pub fn overlap(a: &BTreeSet<Symbol>, b: &BTreeSet<Symbol>) -> usize {
    if a.len() > b.len() {
        return overlap(b, a);
    }
    a.iter().filter(|x| b.contains(x)).count()
}

/// The paper's similarity: absolute overlap at least `delta`. Satisfies
/// Property 4 because `|A' ∩ B'| ≥ |A ∩ B|` whenever `A ⊆ A'`, `B ⊆ B'`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbsoluteOverlap {
    pub delta: usize,
}

impl Default for AbsoluteOverlap {
    fn default() -> Self {
        Self { delta: 2 }
    }
}

impl Similarity for AbsoluteOverlap {
    fn similar(&self, a: &BTreeSet<Symbol>, b: &BTreeSet<Symbol>) -> bool {
        overlap(a, b) >= self.delta
    }
}

/// Jaccard similarity with a relative threshold. **Violates Property 4**;
/// included only for the ablation that demonstrates why the paper rejects
/// relative measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jaccard {
    pub threshold: f64,
}

impl Similarity for Jaccard {
    fn similar(&self, a: &BTreeSet<Symbol>, b: &BTreeSet<Symbol>) -> bool {
        if a.is_empty() && b.is_empty() {
            return false;
        }
        let inter = overlap(a, b) as f64;
        let union = (a.len() + b.len()) as f64 - inter;
        inter / union >= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(xs: &[u32]) -> BTreeSet<Symbol> {
        xs.iter().map(|&x| Symbol(x)).collect()
    }

    #[test]
    fn overlap_counts_common() {
        assert_eq!(overlap(&set(&[1, 2, 3]), &set(&[2, 3, 4])), 2);
        assert_eq!(overlap(&set(&[]), &set(&[1])), 0);
    }

    #[test]
    fn absolute_overlap_threshold() {
        let s = AbsoluteOverlap { delta: 2 };
        assert!(s.similar(&set(&[1, 2, 3]), &set(&[2, 3])));
        assert!(!s.similar(&set(&[1, 2]), &set(&[2, 9])));
    }

    #[test]
    fn paper_jaccard_absurdity() {
        // A={MS, IBM, HP}=1,2,3  B={MS, IBM, Intel}=1,2,4
        // C={MS, IBM, HP, EMC, Intel, Google, Apple}=1..7 ⊇ A
        let a = set(&[1, 2, 3]);
        let b = set(&[1, 2, 4]);
        let c = set(&[1, 2, 3, 4, 5, 6, 7]);
        let j = Jaccard { threshold: 0.5 };
        assert!(j.similar(&a, &b)); // 2/4 = 0.5
        assert!(!j.similar(&a, &c)); // 3/7 ≈ 0.43 — absurd: A ⊆ C
                                     // Absolute overlap has no such anomaly.
        let o = AbsoluteOverlap { delta: 2 };
        assert!(o.similar(&a, &b));
        assert!(o.similar(&a, &c));
    }

    /// Property 4 spot check on randomized supersets.
    #[test]
    fn absolute_overlap_is_monotone() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        let s = AbsoluteOverlap { delta: 2 };
        for _ in 0..200 {
            let a: BTreeSet<Symbol> = (0..rng.gen_range(0..10))
                .map(|_| Symbol(rng.gen_range(0..20)))
                .collect();
            let b: BTreeSet<Symbol> = (0..rng.gen_range(0..10))
                .map(|_| Symbol(rng.gen_range(0..20)))
                .collect();
            let mut a2 = a.clone();
            let mut b2 = b.clone();
            for _ in 0..rng.gen_range(0..5) {
                a2.insert(Symbol(rng.gen_range(0..30)));
                b2.insert(Symbol(rng.gen_range(0..30)));
            }
            if s.similar(&a, &b) {
                assert!(s.similar(&a2, &b2), "Property 4 violated");
            }
        }
    }
}
