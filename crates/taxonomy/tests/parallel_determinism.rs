//! Parallel-vs-serial determinism suite.
//!
//! The parallel driver's whole contract is that thread count is invisible
//! in the output: for any corpus and any thread count, the built taxonomy
//! — symbol table, node set, edge list, plausibility defaults, and
//! `BuildStats` — is byte-identical to the serial builder's. These tests
//! enforce the contract over randomized synthetic corpora shaped to
//! exercise every merge feature: multi-sense labels, cross-shard label
//! repeats, absorption-sized short lists, vertical links, and cycles.

use probase_extract::SentenceExtraction;
use probase_store::snapshot;
use probase_taxonomy::{
    build_local_taxonomies, build_local_taxonomies_parallel, build_taxonomy,
    build_taxonomy_parallel, TaxonomyConfig,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A synthetic corpus with controlled sense structure: each root label
/// draws its items from one of a few vocabulary clusters (so same-label
/// sentences sometimes share a sense and sometimes don't), labels appear
/// as items of other sentences (vertical links, occasionally cycles), and
/// a fraction of sentences are shorter than δ (absorption fodder).
fn corpus(seed: u64, sentences: usize) -> Vec<SentenceExtraction> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let labels = 1 + sentences / 12;
    (0..sentences)
        .map(|id| {
            let root_id = rng.gen_range(0..labels);
            // Two clusters per label → two potential senses.
            let cluster = root_id * 2 + rng.gen_range(0..2usize);
            let n = rng.gen_range(1..7);
            let mut items: Vec<String> = (0..n)
                .map(|_| format!("item{}", cluster * 6 + rng.gen_range(0..9)))
                .collect();
            // Sometimes list another label as an item so vertical merges
            // (and occasionally mutual cycles) appear.
            if rng.gen_bool(0.35) {
                items.push(format!("label{}", rng.gen_range(0..labels)));
            }
            SentenceExtraction {
                sentence_id: id as u64,
                super_label: format!("label{root_id}"),
                items,
            }
        })
        .collect()
}

fn configs() -> Vec<TaxonomyConfig> {
    vec![
        TaxonomyConfig {
            threads: 1,
            ..Default::default()
        },
        TaxonomyConfig {
            delta: 1,
            threads: 1,
            ..Default::default()
        },
        TaxonomyConfig {
            absorb: false,
            threads: 1,
            ..Default::default()
        },
        TaxonomyConfig {
            link_fallback: false,
            threads: 1,
            ..Default::default()
        },
    ]
}

#[test]
fn parallel_build_is_byte_identical_to_serial() {
    for seed in [3, 17, 92] {
        let sentences = corpus(seed, 600);
        for base in configs() {
            let serial = build_taxonomy(&sentences, &base);
            let serial_bytes = snapshot::to_bytes(&serial.graph).expect("encode");
            for threads in THREAD_COUNTS {
                let cfg = TaxonomyConfig {
                    threads,
                    ..base.clone()
                };
                let par = build_taxonomy_parallel(&sentences, &cfg);
                assert_eq!(
                    serial.stats, par.stats,
                    "BuildStats diverged (seed {seed}, {threads} threads, cfg {cfg:?})"
                );
                assert_eq!(
                    serial_bytes,
                    snapshot::to_bytes(&par.graph).expect("encode"),
                    "graph bytes diverged (seed {seed}, {threads} threads, cfg {cfg:?})"
                );
            }
        }
    }
}

#[test]
fn config_dispatch_matches_forced_parallel_driver() {
    // `build_taxonomy` with threads > 1 must route through the same
    // parallel driver `build_taxonomy_parallel` exposes.
    let sentences = corpus(7, 400);
    for threads in [2, 8] {
        let cfg = TaxonomyConfig {
            threads,
            ..Default::default()
        };
        let via_dispatch = build_taxonomy(&sentences, &cfg);
        let via_driver = build_taxonomy_parallel(&sentences, &cfg);
        assert_eq!(via_dispatch.stats, via_driver.stats);
        assert_eq!(
            snapshot::to_bytes(&via_dispatch.graph).expect("encode"),
            snapshot::to_bytes(&via_driver.graph).expect("encode")
        );
    }
}

#[test]
fn sharded_interning_preserves_symbol_table_order() {
    for seed in [5, 31] {
        let sentences = corpus(seed, 500);
        let (serial_locals, serial_int) = build_local_taxonomies(&sentences);
        for threads in THREAD_COUNTS {
            let (par_locals, par_int) = build_local_taxonomies_parallel(&sentences, threads);
            assert_eq!(serial_locals, par_locals, "seed {seed}, {threads} threads");
            assert_eq!(serial_int.len(), par_int.len());
            for (sym, s) in serial_int.iter() {
                assert_eq!(par_int.resolve(sym), s, "seed {seed}, {threads} threads");
            }
        }
    }
}

#[test]
fn degenerate_corpora_do_not_panic() {
    for threads in THREAD_COUNTS {
        let cfg = TaxonomyConfig {
            threads,
            ..Default::default()
        };
        // Empty corpus.
        let empty = build_taxonomy_parallel(&[], &cfg);
        assert_eq!(empty.stats.local_taxonomies, 0);
        // Single sentence — fewer sentences than workers.
        let one = vec![SentenceExtraction {
            sentence_id: 0,
            super_label: "plant".into(),
            items: vec!["tree".into(), "grass".into()],
        }];
        let built = build_taxonomy_parallel(&one, &cfg);
        assert_eq!(built.stats.local_taxonomies, 1);
        // Every sentence shares one label: a single giant bucket.
        let same: Vec<SentenceExtraction> = (0..50)
            .map(|i| SentenceExtraction {
                sentence_id: i,
                super_label: "thing".into(),
                items: vec![format!("item{}", i % 5), format!("item{}", (i + 1) % 5)],
            })
            .collect();
        let serial = build_taxonomy(
            &same,
            &TaxonomyConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let par = build_taxonomy_parallel(&same, &cfg);
        assert_eq!(serial.stats, par.stats);
        assert_eq!(
            snapshot::to_bytes(&serial.graph).expect("encode"),
            snapshot::to_bytes(&par.graph).expect("encode")
        );
    }
}
