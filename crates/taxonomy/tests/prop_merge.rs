//! Property tests for taxonomy construction: Theorem 1 (confluence),
//! Theorem 2 (horizontal-first optimality), Property 4 (similarity
//! monotonicity), and DAG safety of the production builder.

use probase_extract::SentenceExtraction;
use probase_store::query::LevelMap;
use probase_store::Symbol;
use probase_taxonomy::{build_taxonomy, AbsoluteOverlap, MergeState, Similarity, TaxonomyConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Random local-taxonomy batches over a small symbol universe (so overlaps
/// actually happen).
fn locals() -> impl Strategy<Value = Vec<probase_taxonomy::LocalTaxonomy>> {
    proptest::collection::vec(
        (0u32..6, proptest::collection::btree_set(6u32..20, 1..6)),
        1..14,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (root, children))| probase_taxonomy::LocalTaxonomy {
                root: Symbol(root),
                children: children.into_iter().map(Symbol).collect::<BTreeSet<_>>(),
                sentence_id: i as u64,
            })
            .filter(|lt| !lt.children.contains(&lt.root))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1: any exhaustive operation order yields the same final
    /// structure.
    #[test]
    fn theorem1_confluence(ls in locals(), seed_a in 0u64..1000, seed_b in 0u64..1000) {
        let sim = AbsoluteOverlap { delta: 2 };
        let run = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut st = MergeState::from_locals(&ls);
            st.run_with(&sim, |ops| rng.gen_range(0..ops.len()));
            st.canonical()
        };
        prop_assert_eq!(run(seed_a), run(seed_b));
    }

    /// Theorem 2: horizontal-first never uses more operations than any
    /// random schedule, and reaches the same structure.
    #[test]
    fn theorem2_minimality(ls in locals(), seed in 0u64..1000) {
        let sim = AbsoluteOverlap { delta: 2 };
        let mut hf = MergeState::from_locals(&ls);
        let hf_ops = hf.run_horizontal_first(&sim);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut random = MergeState::from_locals(&ls);
        let rand_ops = random.run_with(&sim, |ops| rng.gen_range(0..ops.len()));
        prop_assert!(hf_ops <= rand_ops, "hf {hf_ops} > random {rand_ops}");
        prop_assert_eq!(hf.canonical(), random.canonical());
    }

    /// Property 4 for the shipped similarity, on arbitrary set pairs.
    #[test]
    fn property4_monotonicity(
        a in proptest::collection::btree_set(0u32..25, 0..8),
        b in proptest::collection::btree_set(0u32..25, 0..8),
        extra_a in proptest::collection::btree_set(0u32..40, 0..6),
        extra_b in proptest::collection::btree_set(0u32..40, 0..6),
        delta in 1usize..4,
    ) {
        let s = AbsoluteOverlap { delta };
        let to_set = |v: &BTreeSet<u32>| -> BTreeSet<Symbol> { v.iter().map(|&x| Symbol(x)).collect() };
        let (sa, sb) = (to_set(&a), to_set(&b));
        let mut sa2 = sa.clone();
        let mut sb2 = sb.clone();
        sa2.extend(to_set(&extra_a));
        sb2.extend(to_set(&extra_b));
        if s.similar(&sa, &sb) {
            prop_assert!(s.similar(&sa2, &sb2));
        }
    }

    /// The production builder always yields a DAG (LevelMap would panic on
    /// a cycle) and never drops evidence: every input pair of a surviving
    /// sense appears as an edge count somewhere.
    #[test]
    fn builder_output_is_dag(raw in proptest::collection::vec(
        ("[a-d]", proptest::collection::vec("[a-j]", 1..5)),
        1..20,
    )) {
        let sentences: Vec<SentenceExtraction> = raw
            .into_iter()
            .enumerate()
            .map(|(i, (root, items))| SentenceExtraction {
                sentence_id: i as u64,
                super_label: root,
                items,
            })
            .collect();
        let built = build_taxonomy(&sentences, &TaxonomyConfig::default());
        let levels = LevelMap::compute(&built.graph); // must not panic
        let _ = levels.max_level();
        // Node/edge sanity.
        prop_assert!(built.graph.edge_count() <= sentences.iter().map(|s| s.items.len()).sum::<usize>() * 2);
    }
}
