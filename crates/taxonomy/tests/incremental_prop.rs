//! Incremental-vs-one-shot differential determinism suite.
//!
//! The incremental maintainer's headline contract (DESIGN.md §16): for
//! any corpus, any partition of it into fold batches, and any thread
//! count on the one-shot side, folding the batches through
//! [`IncrementalTaxonomy`] and then building produces a taxonomy that is
//! **byte-identical** — canonical snapshot bytes and `BuildStats` — to a
//! from-scratch build over the concatenated evidence stream. The license
//! is Theorem 1: absolute-overlap similarity is monotone under merging,
//! so the horizontal fixpoint is confluent and reaching it in stages
//! lands on the same merge state as reaching it in one pass.
//!
//! Corpora are randomized with the same generator the parallel suite
//! uses, shaped to exercise every merge feature: multi-sense labels,
//! cross-batch label repeats, absorption-sized short lists, vertical
//! links, and cycles. Seeds are pinned; a failure message carries the
//! seed, batch count, thread count, and config for replay.

use probase_extract::SentenceExtraction;
use probase_store::snapshot;
use probase_taxonomy::{build_taxonomy, IncrementalTaxonomy, TaxonomyConfig};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Synthetic corpus with controlled sense structure (same shape as the
/// parallel determinism suite): clustered vocabularies give same-label
/// sentences that sometimes share a sense and sometimes don't, labels
/// recur as items (vertical links, occasional cycles), and short lists
/// provide absorption fodder.
fn corpus(seed: u64, sentences: usize) -> Vec<SentenceExtraction> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let labels = 1 + sentences / 12;
    (0..sentences)
        .map(|id| {
            let root_id = rng.gen_range(0..labels);
            let cluster = root_id * 2 + rng.gen_range(0..2usize);
            let n = rng.gen_range(1..7);
            let mut items: Vec<String> = (0..n)
                .map(|_| format!("item{}", cluster * 6 + rng.gen_range(0..9)))
                .collect();
            if rng.gen_bool(0.35) {
                items.push(format!("label{}", rng.gen_range(0..labels)));
            }
            SentenceExtraction {
                sentence_id: id as u64,
                super_label: format!("label{root_id}"),
                items,
            }
        })
        .collect()
}

fn configs() -> Vec<TaxonomyConfig> {
    vec![
        TaxonomyConfig {
            threads: 1,
            ..Default::default()
        },
        TaxonomyConfig {
            delta: 1,
            threads: 1,
            ..Default::default()
        },
        TaxonomyConfig {
            absorb: false,
            threads: 1,
            ..Default::default()
        },
        TaxonomyConfig {
            link_fallback: false,
            threads: 1,
            ..Default::default()
        },
    ]
}

/// Fold a batched stream and build.
fn fold_all(stream: &[Vec<SentenceExtraction>], cfg: &TaxonomyConfig) -> (Vec<u8>, String) {
    let mut inc = IncrementalTaxonomy::new(cfg.clone());
    for batch in stream {
        inc.fold(batch);
    }
    let built = inc.build();
    let bytes = snapshot::to_bytes(&built.graph)
        .expect("encode incremental")
        .to_vec();
    (bytes, format!("{:?}", built.stats))
}

#[test]
fn incremental_folds_match_one_shot_at_any_batching_and_ordering() {
    for seed in [3u64, 17, 92] {
        let base_corpus = corpus(seed, 360);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x1AC0);
        for batches in [1usize, 3, 7, 16] {
            // Contiguous runs, folded in a random order: the union
            // stream the one-shot side sees is exactly the fold order.
            let chunk = base_corpus.len().div_ceil(batches).max(1);
            let mut stream: Vec<Vec<SentenceExtraction>> =
                base_corpus.chunks(chunk).map(|c| c.to_vec()).collect();
            stream.shuffle(&mut rng);
            let union: Vec<SentenceExtraction> = stream.iter().flatten().cloned().collect();
            for base in configs() {
                let mut inc = IncrementalTaxonomy::new(base.clone());
                for batch in &stream {
                    inc.fold(batch);
                }
                let built = inc.build();
                let built_bytes = snapshot::to_bytes(&built.graph).expect("encode incremental");
                for threads in THREAD_COUNTS {
                    let cfg = TaxonomyConfig {
                        threads,
                        ..base.clone()
                    };
                    let oneshot = build_taxonomy(&union, &cfg);
                    assert_eq!(
                        oneshot.stats, built.stats,
                        "BuildStats diverged (seed {seed}, {batches} batches, {threads} threads, cfg {cfg:?})"
                    );
                    assert_eq!(
                        snapshot::to_bytes(&oneshot.graph).expect("encode one-shot"),
                        built_bytes,
                        "snapshot bytes diverged (seed {seed}, {batches} batches, {threads} threads, cfg {cfg:?})"
                    );
                }
            }
        }
    }
}

#[test]
fn batch_size_is_invisible_at_fixed_order() {
    // The purest Theorem 1 statement: the same stream, cut anywhere —
    // per-sentence drip, uneven chunks, one big batch — folds to the
    // same bytes as the one-shot build over that stream.
    for seed in [5u64, 41] {
        let sentences = corpus(seed, 240);
        let cfg = TaxonomyConfig {
            threads: 1,
            ..Default::default()
        };
        let oneshot = build_taxonomy(&sentences, &cfg);
        let reference = snapshot::to_bytes(&oneshot.graph).expect("encode one-shot");
        for size in [1usize, 5, 64, 240] {
            let stream: Vec<Vec<SentenceExtraction>> =
                sentences.chunks(size).map(|c| c.to_vec()).collect();
            let (bytes, stats) = fold_all(&stream, &cfg);
            assert_eq!(
                stats,
                format!("{:?}", oneshot.stats),
                "stats diverged (seed {seed}, batch size {size})"
            );
            assert_eq!(
                bytes,
                reference.to_vec(),
                "bytes diverged (seed {seed}, batch size {size})"
            );
        }
    }
}

#[test]
fn order_invariant_stats_agree_across_fold_orderings() {
    // Different fold orders permute the symbol table, so bytes rightly
    // differ between orderings — each ordering is byte-checked against
    // its own one-shot above. But the merge *partition* is confluent
    // (Theorem 1), so the order-insensitive stats must agree across
    // orderings: group count, horizontal merges, absorbed short lists,
    // surviving senses, and vertical links (similarity sees child *sets*,
    // which absorption cannot change). `cycle_edges_dropped` is excluded:
    // tie-breaking on counts may legally pick different cycle edges.
    let sentences = corpus(23, 300);
    let cfg = TaxonomyConfig {
        threads: 1,
        ..Default::default()
    };
    let mut rng = SmallRng::seed_from_u64(99);
    let chunks: Vec<Vec<SentenceExtraction>> = sentences.chunks(30).map(|c| c.to_vec()).collect();
    let mut reference: Option<probase_taxonomy::BuildStats> = None;
    for trial in 0..4 {
        let mut stream = chunks.clone();
        stream.shuffle(&mut rng);
        let mut inc = IncrementalTaxonomy::new(cfg.clone());
        for batch in &stream {
            inc.fold(batch);
        }
        let stats = inc.build().stats;
        match &reference {
            None => reference = Some(stats),
            Some(r) => {
                assert_eq!(r.local_taxonomies, stats.local_taxonomies, "trial {trial}");
                assert_eq!(
                    r.horizontal_merges, stats.horizontal_merges,
                    "trial {trial}"
                );
                assert_eq!(r.absorbed, stats.absorbed, "trial {trial}");
                assert_eq!(r.senses, stats.senses, "trial {trial}");
                assert_eq!(r.vertical_links, stats.vertical_links, "trial {trial}");
            }
        }
    }
}

#[test]
fn degenerate_folds_do_not_panic_or_drift() {
    let cfg = TaxonomyConfig {
        threads: 1,
        ..Default::default()
    };

    // Nothing folded: empty graph.
    let empty = IncrementalTaxonomy::new(cfg.clone()).build();
    assert_eq!(empty.graph.node_count(), 0);
    assert_eq!(empty.stats.local_taxonomies, 0);

    // Empty batches interleaved with real ones are invisible.
    let sentences = corpus(11, 80);
    let oneshot = build_taxonomy(&sentences, &cfg);
    let mut inc = IncrementalTaxonomy::new(cfg.clone());
    inc.fold(&[]);
    for batch in sentences.chunks(17) {
        inc.fold(batch);
        inc.fold(&[]);
    }
    let built = inc.build();
    assert_eq!(oneshot.stats, built.stats);
    assert_eq!(
        snapshot::to_bytes(&oneshot.graph).expect("encode"),
        snapshot::to_bytes(&built.graph).expect("encode")
    );

    // Build is non-destructive: folding after a build continues the
    // stream exactly where it left off.
    let more = corpus(13, 60);
    let mut all = sentences.clone();
    all.extend(more.iter().cloned());
    inc.fold(&more);
    let extended = inc.build();
    let oneshot_all = build_taxonomy(&all, &cfg);
    assert_eq!(oneshot_all.stats, extended.stats);
    assert_eq!(
        snapshot::to_bytes(&oneshot_all.graph).expect("encode"),
        snapshot::to_bytes(&extended.graph).expect("encode")
    );
}
