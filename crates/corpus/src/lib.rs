//! # probase-corpus
//!
//! The synthetic web: a ground-truth world model and a corpus simulator.
//!
//! The Probase paper extracts its taxonomy from 1.68 billion proprietary
//! web pages. This crate is the reproduction's substitution for that input
//! (DESIGN.md §2): it builds a sense-annotated ground-truth taxonomy (the
//! [`world::World`]) and renders from it a stream of Hearst-pattern
//! sentences — [`sentence::SentenceRecord`]s — exhibiting exactly the
//! ambiguity classes the paper's extraction algorithm must resolve:
//!
//! * "X **other than** D such as y…" distractor super-concepts (§2.1),
//! * instances that are not noun phrases ("Gone with the Wind", §2.2),
//! * instances with embedded conjunctions ("Proctor and Gamble", §2.3.3),
//! * list-boundary drift ("…, Europe, and other countries", §2.2),
//! * homograph concept labels ("plants", §3.2),
//! * modifier-derived concepts ("tropical countries" ⊆ "countries"),
//! * page-level noise (source quality, corrupted pairs).
//!
//! Because every sentence carries its ground truth (hidden from the
//! extractor, visible to the judge), the evaluation crate can measure true
//! precision and recall — the role played by human judges in the paper.

#![warn(missing_docs)]

pub mod attributes;
pub mod benchmark;
pub mod generator;
pub mod ids;
pub mod names;
pub mod sentence;
pub mod world;
pub mod worldgen;
pub mod zipf;

pub use generator::{CorpusConfig, CorpusGenerator};
pub use ids::{ConceptId, InstanceId};
pub use sentence::{SentenceRecord, SentenceTruth, SourceMeta, TruthPair};
pub use world::{ConceptSpec, InstanceKind, InstanceSpec, Membership, World, WorldIndex};
pub use worldgen::{generate, WorldConfig};
pub use zipf::Zipf;
