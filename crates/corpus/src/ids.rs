//! Typed identifiers for world-model entities.

use serde::{Deserialize, Serialize};

/// Identifier of a concept *sense* in the ground-truth world. Two concepts
/// sharing a surface label but with different `ConceptId`s are homographs
/// (e.g. *plant* the organism vs *plant* the facility).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConceptId(pub u32);

/// Identifier of an instance in the ground-truth world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstanceId(pub u32);

impl ConceptId {
    /// Index into the world's concept table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl InstanceId {
    /// Index into the world's instance table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ConceptId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl std::fmt::Display for InstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "i{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ConceptId(7).to_string(), "c7");
        assert_eq!(InstanceId(3).to_string(), "i3");
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(ConceptId(42).index(), 42);
        assert_eq!(InstanceId(42).index(), 42);
    }
}
