//! Curated seed data: the paper's 40 benchmark concepts (Table 5) plus the
//! running examples of §1–§3 (countries, animals, the two senses of
//! *plant*, …).
//!
//! The world generator plants these concepts — with their real, recognizable
//! instances — into every generated world so that Table 5, Figure 9, and
//! Figure 11 reproduce with the same concept names the paper reports.
//! Coined filler concepts and instances are layered around them by
//! `crate::worldgen`.

/// One curated concept sense.
#[derive(Debug, Clone, Copy)]
pub struct CuratedConcept {
    /// Canonical singular label.
    pub label: &'static str,
    /// Label of the parent concept (must appear earlier in [`CURATED`] or
    /// be a root). `None` for roots.
    pub parent: Option<&'static str>,
    /// Curated instance surfaces. Kinds are inferred: capitalized →
    /// proper, contains `" and "` → conjunction name, lowercase → common.
    pub instances: &'static [&'static str],
    /// Curated attribute vocabulary (used by the Fig. 12 application).
    pub attributes: &'static [&'static str],
    /// Part of the paper's Table 5 benchmark?
    pub benchmark: bool,
    /// Vague concept (borderline membership, e.g. "largest company").
    pub vague: bool,
}

const fn c(
    label: &'static str,
    parent: Option<&'static str>,
    instances: &'static [&'static str],
    attributes: &'static [&'static str],
    benchmark: bool,
    vague: bool,
) -> CuratedConcept {
    CuratedConcept { label, parent, instances, attributes, benchmark, vague }
}

/// Upper-ontology roots. Intentionally coarse; the paper's taxonomy has no
/// single root either.
pub const ROOTS: &[&str] = &[
    "person",
    "organization",
    "place",
    "creative work",
    "product",
    "event",
    "field",
    "organism",
    "substance",
    "technology",
    "facility",
    "food",
];

/// The curated concept inventory. Parents must precede children.
pub const CURATED: &[CuratedConcept] = &[
    // ---- paper running examples -------------------------------------
    c("country", Some("place"), &[
        "China", "India", "Brazil", "Russia", "USA", "Germany", "Japan", "France", "Singapore",
        "Malaysia", "Mexico", "Canada", "Australia", "Italy", "Spain", "Egypt", "Kenya",
        "Thailand", "Indonesia", "Vietnam", "Nigeria", "Poland", "Sweden", "Norway",
    ], &["population", "capital", "currency", "president", "area", "gdp"], false, false),
    c("tropical country", Some("country"), &[
        "Singapore", "Malaysia", "Brazil", "Thailand", "Indonesia", "Vietnam", "Kenya", "Nigeria",
    ], &[], false, false),
    c("developing country", Some("country"), &[
        "China", "India", "Brazil", "Mexico", "Indonesia", "Vietnam", "Nigeria", "Egypt", "Kenya",
    ], &[], false, false),
    c("industrialized country", Some("country"), &[
        "USA", "Germany", "Japan", "France", "Canada", "Italy", "Sweden", "Norway",
    ], &[], false, false),
    c("asian country", Some("country"), &[
        "China", "India", "Japan", "Singapore", "Malaysia", "Thailand", "Indonesia", "Vietnam",
    ], &[], false, false),
    c("european country", Some("country"), &[
        "Germany", "France", "Italy", "Spain", "Poland", "Sweden", "Norway",
    ], &[], false, false),
    c("bric country", Some("country"), &["Brazil", "Russia", "India", "China"], &[], false, false),
    c("emerging market", Some("place"), &[
        "China", "India", "Brazil", "Russia", "Mexico", "Indonesia", "Vietnam",
    ], &[], false, true),
    c("continent", Some("place"), &[
        "Europe", "Asia", "Africa", "North America", "South America", "Australia", "Antarctica",
    ], &["area", "population"], false, false),
    c("region", Some("place"), &[
        "the Middle East", "Southeast Asia", "Latin America", "Scandinavia", "the Balkans",
    ], &[], false, false),
    c("organism", None, &[], &[], false, false),
    c("animal", Some("organism"), &[
        "cat", "dog", "horse", "cow", "rabbit", "lion", "tiger", "elephant", "wolf", "bear",
        "robin", "ostrich", "snake", "goat", "pig", "chicken", "duck", "deer", "fox", "monkey",
    ], &["habitat", "diet", "lifespan"], false, false),
    c("domestic animal", Some("animal"), &[
        "cat", "dog", "horse", "cow", "rabbit", "goat", "pig", "chicken", "duck",
    ], &[], false, false),
    c("wild animal", Some("animal"), &[
        "lion", "tiger", "elephant", "wolf", "bear", "snake", "deer", "fox", "monkey",
    ], &[], false, false),
    c("household pet", Some("domestic animal"), &[
        "cat", "dog", "rabbit", "hamster", "goldfish", "parrot",
    ], &[], false, false),
    c("bird", Some("animal"), &["robin", "ostrich", "sparrow", "eagle", "penguin", "parrot"], &[], false, false),
    // plant sense 0: flora (under organism)
    c("plant", Some("organism"), &[
        "tree", "grass", "herb", "flower", "shrub", "moss", "fern", "vine",
    ], &[], false, false),
    // plant sense 1: industrial equipment (under facility). Same label —
    // worldgen creates it as a second sense.
    c("plant", Some("facility"), &[
        "steam turbine", "pump", "boiler", "generator", "compressor", "condenser",
    ], &[], false, false),
    c("fruit", Some("food"), &[
        "apple", "banana", "orange", "mango", "pear", "grape", "peach", "cherry",
    ], &[], false, false),
    c("vegetable", Some("food"), &[
        "carrot", "potato", "onion", "spinach", "broccoli", "cabbage",
    ], &[], false, false),
    // ---- Table 5 benchmark concepts ----------------------------------
    c("actor", Some("person"), &[
        "Tom Hanks", "Marlon Brando", "George Clooney", "Meryl Streep", "Denzel Washington",
        "Al Pacino", "Robert De Niro", "Nicole Kidman", "Johnny Depp", "Cate Blanchett",
    ], &["birthday", "nationality", "awards", "movies"], true, false),
    c("aircraft model", Some("product"), &[
        "Airbus A320-200", "Piper PA-32", "Beech-18", "Boeing 747", "Cessna 172",
        "Airbus A380", "Boeing 737-800",
    ], &["wingspan", "range", "capacity"], true, false),
    c("airline", Some("organization"), &[
        "British Airways", "Delta", "Lufthansa", "United Airlines", "Air France", "Qantas",
        "Singapore Airlines", "Emirates", "KLM",
    ], &["fleet size", "hub", "destinations"], true, false),
    c("airport", Some("facility"), &[
        "Heathrow", "Gatwick", "Stansted", "JFK", "Changi", "Schiphol", "Narita", "O'Hare",
    ], &["runways", "terminals", "passengers"], true, false),
    c("album", Some("creative work"), &[
        "Thriller", "Big Calm", "Dirty Mind", "Abbey Road", "Nevermind", "Rumours",
        "The Wall", "Purple Rain",
    ], &["release date", "label", "tracks"], true, false),
    c("architect", Some("person"), &[
        "Frank Gehry", "Le Corbusier", "Zaha Hadid", "Frank Lloyd Wright", "Norman Foster",
        "Renzo Piano", "Mies van der Rohe",
    ], &["buildings", "style", "awards"], true, false),
    c("artist", Some("person"), &[
        "Picasso", "Bob Dylan", "Madonna", "Monet", "Warhol", "Van Gogh", "Banksy", "Dali",
        "Rembrandt", "Matisse",
    ], &["style", "works", "period"], true, false),
    c("book", Some("creative work"), &[
        "Bible", "Harry Potter", "Treasure Island", "Moby Dick", "War and Peace",
        "Pride and Prejudice", "The Hobbit", "Don Quixote",
    ], &["author", "publisher", "isbn", "pages"], true, false),
    c("cancer center", Some("facility"), &[
        "Fox Chase", "Care Alliance", "Dana-Farber", "MD Anderson", "Memorial Sloan Kettering",
    ], &["location", "specialties"], true, false),
    c("celebrity", Some("person"), &[
        "Madonna", "Paris Hilton", "Angelina Jolie", "Brad Pitt", "Oprah Winfrey",
        "David Beckham", "Kim Kardashian",
    ], &["net worth", "spouse"], true, false),
    c("chemical compound", Some("substance"), &[
        "carbon dioxide", "phenanthrene", "carbon monoxide", "sodium chloride", "ammonia",
        "methane", "ethanol", "benzene",
    ], &["formula", "molar mass", "boiling point"], true, false),
    c("city", Some("place"), &[
        "New York", "Chicago", "Los Angeles", "London", "Paris", "Tokyo", "Beijing", "Singapore",
        "Sydney", "Berlin", "Madrid", "Rome", "Moscow", "Toronto", "Seoul", "Mumbai",
    ], &["population", "mayor", "area"], true, false),
    c("asian city", Some("city"), &[
        "Tokyo", "Beijing", "Singapore", "Seoul", "Mumbai",
    ], &[], false, false),
    c("company", Some("organization"), &[
        "IBM", "Microsoft", "Google", "Apple", "Intel", "HP", "EMC", "Nokia",
        "Proctor and Gamble", "China Mobile", "Tata Group", "PetroBras", "Samsung", "Sony",
        "Toyota", "Shell", "Walmart", "ExxonMobil", "Siemens", "Oracle",
    ], &["ceo", "headquarters", "revenue", "employees", "founder"], true, false),
    c("it company", Some("company"), &[
        "IBM", "Microsoft", "Google", "Apple", "Intel", "HP", "EMC", "Oracle", "Samsung",
    ], &[], false, false),
    c("big company", Some("company"), &[
        "IBM", "Microsoft", "Walmart", "ExxonMobil", "Toyota", "Shell", "Samsung",
    ], &[], false, true),
    c("largest company", Some("company"), &[
        "China Mobile", "Tata Group", "PetroBras", "Walmart", "ExxonMobil", "Shell",
    ], &[], false, true),
    c("software company", Some("it company"), &[
        "Microsoft", "Google", "Oracle", "Adobe", "SAP",
    ], &[], false, false),
    c("digital camera", Some("product"), &[
        "Canon", "Nikon", "Olympus", "Sony Alpha", "Fujifilm X100", "Leica M",
    ], &["megapixels", "sensor", "price"], true, false),
    c("disease", Some("field"), &[
        "AIDS", "Alzheimer", "chlamydia", "diabetes", "malaria", "tuberculosis", "influenza",
        "asthma", "cholera",
    ], &["symptoms", "treatment", "causes"], true, false),
    c("drug", Some("substance"), &[
        "tobacco", "heroin", "alcohol", "aspirin", "morphine", "penicillin", "caffeine",
        "insulin",
    ], &["dosage", "side effects"], true, false),
    c("festival", Some("event"), &[
        "Sundance", "Christmas", "Diwali", "Oktoberfest", "Carnival", "Easter", "Hanukkah",
        "Ramadan",
    ], &["date", "location"], true, false),
    c("file format", Some("technology"), &[
        "PDF", "JPEG", "TIFF", "PNG", "XML", "CSV", "MP3", "ZIP", "HTML",
    ], &["extension", "mime type"], true, false),
    c("film", Some("creative work"), &[
        "Blade Runner", "Star Wars", "Clueless", "Gone with the Wind", "Casablanca",
        "The Godfather", "Pulp Fiction", "Titanic", "Jaws", "Vertigo",
    ], &["director", "release date", "cast", "budget"], true, false),
    c("classic movie", Some("film"), &[
        "Gone with the Wind", "Casablanca", "Vertigo", "The Godfather",
    ], &[], false, true),
    c("cartoon", Some("creative work"), &[
        "Tom and Jerry", "Mickey Mouse", "Bugs Bunny", "Scooby-Doo", "Popeye",
    ], &["creator", "studio"], false, false),
    // food root doubles as the benchmark concept
    c("dish", Some("food"), &[
        "beef", "dairy", "French fries", "pizza", "sushi", "pasta", "curry", "salad",
    ], &["calories", "cuisine"], true, false),
    c("football team", Some("organization"), &[
        "Real Madrid", "AC Milan", "Manchester United", "Barcelona", "Bayern Munich",
        "Liverpool", "Juventus", "Chelsea",
    ], &["stadium", "coach", "titles"], true, false),
    c("game publisher", Some("organization"), &[
        "Electronic Arts", "Ubisoft", "Eidos", "Activision", "Nintendo", "Valve", "Capcom",
    ], &["games", "founded"], true, false),
    c("internet protocol", Some("technology"), &[
        "HTTP", "FTP", "SMTP", "TCP", "UDP", "DNS", "SSH", "IMAP", "POP3",
    ], &["port", "rfc"], true, false),
    c("mountain", Some("place"), &[
        "Everest", "the Alps", "the Himalayas", "K2", "Kilimanjaro", "Mont Blanc", "Denali",
        "Fuji",
    ], &["height", "location", "first ascent"], true, false),
    c("museum", Some("facility"), &[
        "the Louvre", "Smithsonian", "the Guggenheim", "the Met", "British Museum", "Uffizi",
        "Prado", "Hermitage",
    ], &["location", "collection", "visitors"], true, false),
    c("olympic sport", Some("event"), &[
        "gymnastics", "athletics", "cycling", "swimming", "rowing", "fencing", "judo",
        "archery",
    ], &["events", "federation"], true, false),
    c("operating system", Some("technology"), &[
        "Linux", "Solaris", "Microsoft Windows", "macOS", "FreeBSD", "Android", "iOS",
    ], &["kernel", "vendor", "version"], true, false),
    c("political party", Some("organization"), &[
        "NLD", "ANC", "Awami League", "Labour Party", "Democratic Party", "Republican Party",
        "Congress Party",
    ], &["leader", "ideology", "founded"], true, false),
    c("politician", Some("person"), &[
        "Barack Obama", "Bush", "Tony Blair", "Angela Merkel", "Nelson Mandela",
        "Margaret Thatcher", "Winston Churchill",
    ], &["party", "office", "term"], true, false),
    c("programming language", Some("technology"), &[
        "Java", "Perl", "PHP", "Python", "Ruby", "Haskell", "Lisp", "Fortran", "Rust",
        "JavaScript",
    ], &["paradigm", "designer", "typing"], true, false),
    c("public library", Some("facility"), &[
        "Haringey", "Calcutta", "Norwich", "Boston Public Library", "Seattle Central Library",
    ], &["branches", "collection size"], true, false),
    c("religion", Some("field"), &[
        "Christianity", "Islam", "Buddhism", "Hinduism", "Judaism", "Sikhism", "Taoism",
    ], &["followers", "founder", "scripture"], true, false),
    c("restaurant", Some("organization"), &[
        "Burger King", "Red Lobster", "McDonalds", "KFC", "Subway", "Pizza Hut", "Taco Bell",
        "Wendys",
    ], &["cuisine", "locations", "menu"], true, false),
    c("river", Some("place"), &[
        "Mississippi", "the Nile", "Ganges", "Amazon", "Yangtze", "Danube", "Thames", "Rhine",
        "Volga",
    ], &["length", "source", "mouth"], true, false),
    c("skyscraper", Some("facility"), &[
        "the Empire State Building", "the Sears Tower", "Burj Dubai", "Taipei 101",
        "Petronas Towers", "the Chrysler Building",
    ], &["height", "floors", "architect"], true, false),
    c("tennis player", Some("person"), &[
        "Maria Sharapova", "Andre Agassi", "Roger Federer", "Serena Williams", "Rafael Nadal",
        "Novak Djokovic", "Steffi Graf",
    ], &["ranking", "grand slams", "coach"], true, false),
    c("theater", Some("facility"), &[
        "Metro", "Pacific Place", "Criterion", "the Globe", "La Scala", "Broadway Theatre",
    ], &["capacity", "location"], true, false),
    c("university", Some("organization"), &[
        "Harvard", "Stanford", "Yale", "MIT", "Oxford", "Cambridge", "Princeton", "Berkeley",
        "Columbia", "Cornell",
    ], &["enrollment", "tuition", "president", "founded"], true, false),
    c("best university", Some("university"), &[
        "Harvard", "Stanford", "MIT", "Oxford", "Cambridge",
    ], &[], false, true),
    c("web browser", Some("technology"), &[
        "Internet Explorer", "Firefox", "Safari", "Chrome", "Opera", "Netscape",
    ], &["engine", "vendor"], true, false),
    c("website", Some("technology"), &[
        "YouTube", "Facebook", "MySpace", "Wikipedia", "Twitter", "Amazon", "eBay", "Reddit",
    ], &["url", "founder", "traffic"], true, false),
    c("musician", Some("person"), &[
        "Bob Dylan", "Madonna", "Prince", "Beethoven", "Mozart", "Elvis Presley",
        "Michael Jackson",
    ], &["instrument", "genre", "albums"], false, false),
    c("database conference", Some("event"), &[
        "SIGMOD", "VLDB", "ICDE", "EDBT", "CIDR", "PODS",
    ], &["venue", "deadline"], false, false),
    c("renewable energy technology", Some("technology"), &[
        "solar power", "wind power", "hydropower", "geothermal energy", "biomass",
    ], &[], false, false),
    c("meteorological phenomenon", Some("field"), &[
        "hurricane", "tornado", "monsoon", "blizzard", "drought", "hailstorm",
    ], &[], false, false),
    c("common sleep disorder", Some("field"), &[
        "insomnia", "sleep apnea", "narcolepsy", "restless legs syndrome",
    ], &[], false, false),
];

/// Labels of the 40 Table-5 benchmark concepts, in the paper's order where
/// applicable. ("food" appears in the paper; our curated food concept is
/// labeled "dish" to keep "food" as a root — the benchmark maps to "dish".)
pub fn benchmark_labels() -> Vec<&'static str> {
    CURATED.iter().filter(|c| c.benchmark).map(|c| c.label).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn forty_benchmark_concepts() {
        assert_eq!(benchmark_labels().len(), 40, "Table 5 has exactly 40 concepts");
    }

    #[test]
    fn parents_precede_children_or_are_roots() {
        let mut seen: HashSet<&str> = ROOTS.iter().copied().collect();
        for cc in CURATED {
            if let Some(p) = cc.parent {
                assert!(seen.contains(p), "{}: parent {p} not yet defined", cc.label);
            }
            seen.insert(cc.label);
        }
    }

    #[test]
    fn paper_examples_present() {
        let labels: HashSet<&str> = CURATED.iter().map(|c| c.label).collect();
        for l in ["bric country", "emerging market", "tropical country", "domestic animal", "it company", "classic movie"] {
            assert!(labels.contains(l), "missing {l}");
        }
        // homograph: plant occurs twice
        assert_eq!(CURATED.iter().filter(|c| c.label == "plant").count(), 2);
    }

    #[test]
    fn instances_nonempty_for_benchmark() {
        for cc in CURATED.iter().filter(|c| c.benchmark) {
            assert!(cc.instances.len() >= 5, "{} has too few curated instances", cc.label);
        }
    }

    #[test]
    fn labels_are_canonical() {
        for cc in CURATED {
            assert_eq!(cc.label, probase_text::normalize_concept(cc.label), "{}", cc.label);
        }
    }
}
