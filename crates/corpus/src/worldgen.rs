//! World generation.
//!
//! Builds a [`World`] by planting the curated benchmark inventory
//! (`crate::benchmark`) and growing coined filler concepts, instances,
//! modifier-derived sub-concepts, homograph label pairs, and attribute
//! vocabulary around it. Everything is driven by a single seed: the same
//! [`WorldConfig`] always yields byte-identical worlds.

use crate::benchmark::{CURATED, ROOTS};
use crate::ids::{ConceptId, InstanceId};
use crate::names::NameCoiner;
use crate::world::{ConceptSpec, InstanceKind, InstanceSpec, Membership, World};
use crate::zipf::Zipf;
use probase_text::{LexEntry, Lexicon};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Parameters controlling world generation.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// RNG seed; all structure and names derive from it.
    pub seed: u64,
    /// Number of coined filler concepts grown around the curated core.
    pub filler_concepts: usize,
    /// Range (inclusive) of instances per filler concept.
    pub filler_instances: (usize, usize),
    /// Coined instances added to each curated concept on top of its
    /// curated inventory.
    pub extra_instances_per_curated: usize,
    /// Probability that a concept with enough instances receives
    /// modifier-derived sub-concepts ("tropical X").
    pub modifier_children_rate: f64,
    /// Maximum modifier-derived sub-concepts per concept.
    pub max_modifier_children: usize,
    /// Number of coined homograph label pairs (two senses, one label).
    pub homograph_pairs: usize,
    /// Probability that an instance also joins a second, unrelated concept.
    pub multi_membership_rate: f64,
    /// Instance-kind mixture for coined instances (remaining mass goes to
    /// plain proper names): share with embedded conjunctions
    /// ("Proctor and Gamble").
    pub conjunction_instance_rate: f64,
    /// Share of non-NP titles ("Gone with the Wind").
    pub title_instance_rate: f64,
    /// Share of lowercase common-noun instances ("cat").
    pub common_instance_rate: f64,
    /// Fraction of proper coined instances with two-word names.
    pub multiword_instance_rate: f64,
    /// Zipf exponent for within-concept typicality.
    pub zipf_typicality: f64,
    /// Zipf exponent for concept popularity.
    pub zipf_popularity: f64,
    /// Coined attributes added per concept.
    pub attributes_per_concept: usize,
    /// Maximum hierarchy depth for filler concepts.
    pub max_depth: usize,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            filler_concepts: 1200,
            filler_instances: (4, 36),
            extra_instances_per_curated: 14,
            modifier_children_rate: 0.22,
            max_modifier_children: 3,
            homograph_pairs: 25,
            multi_membership_rate: 0.04,
            conjunction_instance_rate: 0.03,
            title_instance_rate: 0.02,
            common_instance_rate: 0.12,
            multiword_instance_rate: 0.35,
            zipf_typicality: 1.0,
            zipf_popularity: 0.9,
            attributes_per_concept: 16,
            max_depth: 5,
        }
    }
}

impl WorldConfig {
    /// A small world for unit tests: fast to generate, still exhibits every
    /// ambiguity class.
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            filler_concepts: 80,
            filler_instances: (3, 12),
            extra_instances_per_curated: 4,
            homograph_pairs: 4,
            ..Self::default()
        }
    }
}

/// Generate a world from `config`.
pub fn generate(config: &WorldConfig) -> World {
    Builder::new(config).build()
}

struct Builder<'a> {
    config: &'a WorldConfig,
    rng: SmallRng,
    coiner: NameCoiner,
    concepts: Vec<ConceptSpec>,
    instances: Vec<InstanceSpec>,
    lexicon: Lexicon,
    /// surface (exact) → instance id, for dedup/merging of memberships.
    by_surface: HashMap<String, InstanceId>,
    /// label → number of senses created so far.
    senses: HashMap<String, u32>,
    depth: Vec<usize>,
    /// Real modifier adjectives cycled before coining new ones.
    real_modifiers: Vec<&'static str>,
    next_real_modifier: usize,
}

impl<'a> Builder<'a> {
    fn new(config: &'a WorldConfig) -> Self {
        let mut coiner = NameCoiner::new();
        for root in ROOTS {
            coiner.reserve(root);
        }
        for cc in CURATED {
            coiner.reserve(cc.label);
            for i in cc.instances {
                coiner.reserve(i);
            }
        }
        Self {
            config,
            rng: SmallRng::seed_from_u64(config.seed),
            coiner,
            concepts: Vec::new(),
            instances: Vec::new(),
            lexicon: Lexicon::new(),
            by_surface: HashMap::new(),
            senses: HashMap::new(),
            depth: Vec::new(),
            real_modifiers: vec![
                "northern", "southern", "eastern", "western", "coastal", "ancient", "modern",
                "regional", "urban", "rural", "major", "minor", "popular", "rare", "classic",
            ],
            next_real_modifier: 0,
        }
    }

    fn add_concept(&mut self, label: &str, parent: Option<ConceptId>, depth: usize) -> ConceptId {
        let sense = {
            let s = self.senses.entry(label.to_string()).or_insert(0);
            let v = *s;
            *s += 1;
            v
        };
        let id = ConceptId(self.concepts.len() as u32);
        self.concepts.push(ConceptSpec {
            id,
            label: label.to_string(),
            sense,
            parents: parent.into_iter().collect(),
            children: vec![],
            instances: vec![],
            popularity: 0.0,
            attributes: vec![],
            curated: false,
            vague: false,
        });
        if let Some(p) = parent {
            self.concepts[p.index()].children.push(id);
        }
        self.depth.push(depth);
        id
    }

    /// Get or create the instance for `surface`; ensure membership in `cid`.
    fn attach_instance(&mut self, surface: &str, kind: InstanceKind, cid: ConceptId) -> InstanceId {
        let id = match self.by_surface.get(surface) {
            Some(&id) => id,
            None => {
                let id = InstanceId(self.instances.len() as u32);
                self.instances.push(InstanceSpec {
                    id,
                    surface: surface.to_string(),
                    kind,
                    concepts: vec![],
                });
                self.by_surface.insert(surface.to_string(), id);
                id
            }
        };
        let inst = &mut self.instances[id.index()];
        if !inst.concepts.contains(&cid) {
            inst.concepts.push(cid);
            // Typicality is assigned in `finalize`; store order for now.
            self.concepts[cid.index()].instances.push(Membership {
                instance: id,
                typicality: 0.0,
            });
        }
        id
    }

    fn infer_kind(surface: &str) -> InstanceKind {
        const TITLE_OPENERS: &[&str] = &["Gone", "Lost", "Born", "Running", "Waiting", "Falling"];
        let first = surface.split(' ').next().unwrap_or("");
        if TITLE_OPENERS.contains(&first) {
            return InstanceKind::Title;
        }
        if surface.contains(" and ") {
            return InstanceKind::ConjunctionName;
        }
        // Any capitalized word makes the surface a proper name ("the
        // Alps", "eBay" is the lone exception we accept as common-ish).
        if surface
            .split(' ')
            .any(|w| w.chars().next().is_some_and(|c| c.is_uppercase()))
            || surface.chars().any(|c| c.is_uppercase())
        {
            InstanceKind::Proper
        } else {
            InstanceKind::Common
        }
    }

    fn coin_instance(&mut self) -> (String, InstanceKind) {
        let r: f64 = self.rng.gen();
        let c = self.config;
        if r < c.conjunction_instance_rate {
            (
                self.coiner.conjunction_name(&mut self.rng),
                InstanceKind::ConjunctionName,
            )
        } else if r < c.conjunction_instance_rate + c.title_instance_rate {
            (self.coiner.title_name(&mut self.rng), InstanceKind::Title)
        } else if r < c.conjunction_instance_rate + c.title_instance_rate + c.common_instance_rate {
            (self.coiner.common_noun(&mut self.rng), InstanceKind::Common)
        } else {
            let words = if self.rng.gen_bool(c.multiword_instance_rate) {
                2
            } else {
                1
            };
            (
                self.coiner.proper_name(&mut self.rng, words),
                InstanceKind::Proper,
            )
        }
    }

    fn next_modifier(&mut self) -> String {
        if self.next_real_modifier < self.real_modifiers.len() && self.rng.gen_bool(0.5) {
            let m = self.real_modifiers[self.next_real_modifier];
            self.next_real_modifier += 1;
            m.to_string()
        } else {
            let adj = self.coiner.adjective(&mut self.rng);
            self.lexicon.insert(&adj, LexEntry::Adjective);
            adj
        }
    }

    fn build(mut self) -> World {
        // 1. Roots.
        let mut label_to_id: HashMap<&'static str, ConceptId> = HashMap::new();
        for &root in ROOTS {
            let id = self.add_concept(root, None, 0);
            label_to_id.insert(root, id);
        }

        // 2. Curated concepts with their instances.
        for cc in CURATED {
            let parent = cc.parent.map(|p| label_to_id[p]);
            let depth = parent.map(|p| self.depth[p.index()] + 1).unwrap_or(0);
            let id = self.add_concept(cc.label, parent, depth);
            // First sense wins the label_to_id slot (homographs keep both
            // ConceptSpecs; children attach to the first sense).
            label_to_id.entry(cc.label).or_insert(id);
            {
                let c = &mut self.concepts[id.index()];
                c.curated = true;
                c.vague = cc.vague;
                c.attributes = cc.attributes.iter().map(|a| a.to_string()).collect();
            }
            for surf in cc.instances {
                let kind = Self::infer_kind(surf);
                self.attach_instance(surf, kind, id);
            }
        }

        // 3. Filler concepts.
        for _ in 0..self.config.filler_concepts {
            let parent = self.pick_parent();
            let depth = self.depth[parent.index()] + 1;
            let label = self.coiner.common_noun(&mut self.rng);
            let id = self.add_concept(&label, Some(parent), depth);
            let (lo, hi) = self.config.filler_instances;
            let n = self.rng.gen_range(lo..=hi);
            for _ in 0..n {
                let (surface, kind) = self.coin_instance();
                self.attach_instance(&surface, kind, id);
            }
        }

        // 4. Modifier-derived sub-concepts over filler + curated concepts
        //    that don't already have curated modifier children.
        let candidates: Vec<ConceptId> = self
            .concepts
            .iter()
            .filter(|c| c.instances.len() >= 6 && c.children.is_empty())
            .map(|c| c.id)
            .collect();
        for cid in candidates {
            if !self.rng.gen_bool(self.config.modifier_children_rate) {
                continue;
            }
            let k = self.rng.gen_range(1..=self.config.max_modifier_children);
            for _ in 0..k {
                let modifier = self.next_modifier();
                let parent_label = self.concepts[cid.index()].label.clone();
                let label = format!("{modifier} {parent_label}");
                if self.senses.contains_key(&label) {
                    continue;
                }
                let depth = self.depth[cid.index()] + 1;
                let sub = self.add_concept(&label, Some(cid), depth);
                // Subset of parent instances, biased to the head.
                let parent_members: Vec<InstanceId> = self.concepts[cid.index()]
                    .instances
                    .iter()
                    .map(|m| m.instance)
                    .collect();
                let take = (parent_members.len() / 2).max(2).min(parent_members.len());
                let mut chosen = parent_members;
                chosen.shuffle(&mut self.rng);
                chosen.truncate(take);
                for iid in chosen {
                    let surface = self.instances[iid.index()].surface.clone();
                    let kind = self.instances[iid.index()].kind;
                    self.attach_instance(&surface, kind, sub);
                }
            }
        }

        // 5. Coined homograph pairs: relabel a filler concept with another
        //    filler concept's label, in a different subtree.
        let filler_ids: Vec<ConceptId> = self
            .concepts
            .iter()
            .filter(|c| !c.curated && !c.parents.is_empty() && c.label.split(' ').count() == 1)
            .map(|c| c.id)
            .collect();
        for _ in 0..self.config.homograph_pairs {
            if filler_ids.len() < 2 {
                break;
            }
            let a = filler_ids[self.rng.gen_range(0..filler_ids.len())];
            let b = filler_ids[self.rng.gen_range(0..filler_ids.len())];
            if a == b {
                continue;
            }
            let (la, lb) = (
                self.concepts[a.index()].label.clone(),
                self.concepts[b.index()].label.clone(),
            );
            if la == lb || self.concepts[a.index()].parents == self.concepts[b.index()].parents {
                continue;
            }
            // b takes a's label as a new sense.
            let sense = {
                let s = self.senses.entry(la.clone()).or_insert(0);
                let v = *s;
                *s += 1;
                v
            };
            let cb = &mut self.concepts[b.index()];
            cb.label = la;
            cb.sense = sense;
        }

        // 6. Extra coined instances on curated concepts.
        let curated_ids: Vec<ConceptId> = self
            .concepts
            .iter()
            .filter(|c| c.curated)
            .map(|c| c.id)
            .collect();
        for cid in curated_ids {
            for _ in 0..self.config.extra_instances_per_curated {
                let (surface, kind) = self.coin_instance();
                self.attach_instance(&surface, kind, cid);
            }
        }

        // 7. Multi-membership noise.
        let n_extra = (self.instances.len() as f64 * self.config.multi_membership_rate) as usize;
        for _ in 0..n_extra {
            let iid = InstanceId(self.rng.gen_range(0..self.instances.len() as u32));
            let cid = ConceptId(self.rng.gen_range(0..self.concepts.len() as u32));
            let surface = self.instances[iid.index()].surface.clone();
            let kind = self.instances[iid.index()].kind;
            self.attach_instance(&surface, kind, cid);
        }

        // 8. Coined attributes everywhere.
        for idx in 0..self.concepts.len() {
            for _ in 0..self.config.attributes_per_concept {
                let a = self.coiner.common_noun(&mut self.rng);
                self.concepts[idx].attributes.push(a);
            }
        }

        self.finalize()
    }

    fn pick_parent(&mut self) -> ConceptId {
        // Prefer shallower parents so the tree stays broad; retry a few
        // times if we land too deep.
        for _ in 0..16 {
            let idx = self.rng.gen_range(0..self.concepts.len());
            if self.depth[idx] < self.config.max_depth {
                return ConceptId(idx as u32);
            }
        }
        ConceptId(0)
    }

    fn finalize(mut self) -> World {
        // Typicality: Zipf over membership order (curated order first).
        for c in &mut self.concepts {
            if c.instances.is_empty() {
                continue;
            }
            let z = Zipf::new(c.instances.len(), self.config.zipf_typicality);
            let probs = z.probabilities();
            for (m, p) in c.instances.iter_mut().zip(probs) {
                m.typicality = p;
            }
        }
        // Popularity: Zipf by a seeded permutation rank; curated concepts
        // are boosted into the head (they model well-known concepts).
        let n = self.concepts.len();
        let z = Zipf::new(n, self.config.zipf_popularity);
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut self.rng);
        // Stable partition: curated first (keep shuffled order within each
        // group) so curated concepts occupy head ranks.
        let (head, tail): (Vec<usize>, Vec<usize>) =
            order.into_iter().partition(|&i| self.concepts[i].curated);
        for (rank, idx) in head.into_iter().chain(tail).enumerate() {
            self.concepts[idx].popularity = z.pmf(rank);
        }
        World {
            concepts: self.concepts,
            instances: self.instances,
            lexicon: self.lexicon,
            seed: self.config.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldIndex;

    fn small() -> World {
        generate(&WorldConfig::small(7))
    }

    #[test]
    fn generated_world_is_structurally_valid() {
        let w = small();
        let errors = w.validate();
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn deterministic_generation() {
        let a = generate(&WorldConfig::small(9));
        let b = generate(&WorldConfig::small(9));
        assert_eq!(a.concept_count(), b.concept_count());
        assert_eq!(a.instance_count(), b.instance_count());
        assert_eq!(a.concepts[50].label, b.concepts[50].label);
        let c = generate(&WorldConfig::small(10));
        assert!(a
            .concepts
            .iter()
            .zip(&c.concepts)
            .any(|(x, y)| x.label != y.label));
    }

    #[test]
    fn curated_concepts_present_with_instances() {
        let w = small();
        let idx = WorldIndex::new(&w);
        for label in ["country", "company", "animal", "city", "film"] {
            let senses = idx.senses(label);
            assert!(!senses.is_empty(), "missing {label}");
            assert!(!w.concept(senses[0]).instances.is_empty());
        }
    }

    #[test]
    fn plant_has_two_senses() {
        let w = small();
        assert!(w.senses_of("plant").len() >= 2);
    }

    #[test]
    fn coined_homographs_exist() {
        let w = small();
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for c in &w.concepts {
            *counts.entry(c.label.as_str()).or_default() += 1;
        }
        let homographs = counts.values().filter(|&&v| v >= 2).count();
        assert!(
            homographs >= 2,
            "expected coined homographs, got {homographs}"
        );
    }

    #[test]
    fn typicality_normalized_and_sorted_head_heavy() {
        let w = small();
        for c in &w.concepts {
            if c.instances.is_empty() {
                continue;
            }
            let sum: f64 = c.instances.iter().map(|m| m.typicality).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: {sum}", c.label);
            for win in c.instances.windows(2) {
                assert!(win[0].typicality >= win[1].typicality - 1e-12);
            }
        }
    }

    #[test]
    fn paper_table5_typical_instances_rank_first() {
        let w = small();
        let idx = WorldIndex::new(&w);
        let actor = w.concept(idx.senses("actor")[0]);
        let top = w.instance(actor.instances[0].instance);
        assert_eq!(top.surface, "Tom Hanks");
    }

    #[test]
    fn world_has_ambiguity_classes() {
        let w = small();
        use crate::world::InstanceKind::*;
        let kinds: Vec<_> = w.instances.iter().map(|i| i.kind).collect();
        for k in [Proper, Common, ConjunctionName, Title] {
            assert!(kinds.contains(&k), "missing kind {k:?}");
        }
    }

    #[test]
    fn popularity_positive_and_curated_boosted() {
        let w = small();
        assert!(w.concepts.iter().all(|c| c.popularity > 0.0));
        let avg = |f: &dyn Fn(&ConceptSpec) -> bool| {
            let v: Vec<f64> = w
                .concepts
                .iter()
                .filter(|c| f(c))
                .map(|c| c.popularity)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(avg(&|c| c.curated) > avg(&|c| !c.curated));
    }

    #[test]
    fn depth_bounded() {
        let w = generate(&WorldConfig::small(3));
        // longest chain from any root must be <= max_depth + modifier layer
        fn depth_of(w: &World, id: ConceptId, memo: &mut HashMap<ConceptId, usize>) -> usize {
            if let Some(&d) = memo.get(&id) {
                return d;
            }
            let d = w
                .concept(id)
                .children
                .iter()
                .map(|&c| depth_of(w, c, memo) + 1)
                .max()
                .unwrap_or(0);
            memo.insert(id, d);
            d
        }
        let mut memo = HashMap::new();
        let max = w
            .roots()
            .iter()
            .map(|&r| depth_of(&w, r, &mut memo))
            .max()
            .unwrap();
        assert!(max <= WorldConfig::small(3).max_depth + 2, "depth {max}");
    }

    #[test]
    fn attributes_assigned() {
        let w = small();
        assert!(w.concepts.iter().all(|c| !c.attributes.is_empty()));
        let idx = WorldIndex::new(&w);
        let country = w.concept(idx.senses("country")[0]);
        assert!(country.attributes.iter().any(|a| a == "population"));
    }
}
