//! Sentence records: what the extractor sees, plus hidden ground truth.
//!
//! A [`SentenceRecord`] carries the raw sentence text and page-level
//! metadata (the extractor's entire view), and a [`SentenceTruth`] that only
//! the evaluation judge may consult. This mirrors the paper's setup: the
//! extraction pipeline works on opaque web text; humans (here: the truth
//! channel) judge the output afterwards (§5.2).

use crate::ids::{ConceptId, InstanceId};
use serde::{Deserialize, Serialize};

/// Which surface construction a sentence was rendered with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternKind {
    /// Hearst 1: `NP such as NP, NP, (and|or) NP`.
    SuchAs,
    /// Hearst 2: `such NP as NP, …`.
    SuchNpAs,
    /// Hearst 3: `NP, including NP, …`.
    Including,
    /// Hearst 4: `NP, NP, …, and other NP`.
    AndOther,
    /// Hearst 5: `NP, NP, …, or other NP`.
    OrOther,
    /// Hearst 6: `NP, especially NP, …`.
    Especially,
    /// Meronymy: `NP is comprised of NP, …` (negative isA evidence, §4.1).
    PartOf,
    /// No pattern at all (background prose).
    Noise,
}

impl PatternKind {
    /// The six genuine Hearst patterns (paper Table 2), in order.
    pub const HEARST: [PatternKind; 6] = [
        PatternKind::SuchAs,
        PatternKind::SuchNpAs,
        PatternKind::Including,
        PatternKind::AndOther,
        PatternKind::OrOther,
        PatternKind::Especially,
    ];

    /// Index of a Hearst pattern in [`Self::HEARST`], if it is one.
    pub fn hearst_index(self) -> Option<usize> {
        Self::HEARST.iter().position(|&p| p == self)
    }
}

/// What a listed item actually refers to, per ground truth.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Referent {
    /// A true instance of the sentence's super-concept (possibly indirect).
    Instance(InstanceId),
    /// A true sub-concept of the sentence's super-concept.
    Concept(ConceptId),
    /// Deliberate garbage: a corruption or a drifted list item that does
    /// not belong under the super-concept.
    Junk,
}

/// One listed item with its ground-truth status.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TruthPair {
    /// Surface exactly as rendered in the sentence (e.g. `"cats"`,
    /// `"Proctor and Gamble"`, `"the Middle East"`).
    pub surface: String,
    /// What the item is, per ground truth.
    pub referent: Referent,
}

impl TruthPair {
    /// Is the item truly subordinate to the sentence's super-concept?
    pub fn is_valid(&self) -> bool {
        !matches!(self.referent, Referent::Junk)
    }
}

/// Hidden ground truth attached to a sentence.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SentenceTruth {
    /// The intended super-concept sense, when the sentence encodes an isA
    /// list (`None` for noise).
    pub concept: Option<ConceptId>,
    /// Listed items in sentence order (for `AndOther`/`OrOther` this is
    /// the order of appearance, i.e. *reversed* keyword distance).
    pub items: Vec<TruthPair>,
    /// Plural surface of an "other than" distractor NP, when present.
    pub distractor: Option<String>,
    /// Construction used.
    pub pattern: Option<PatternKind>,
}

/// Page-level metadata, the raw material for plausibility features
/// (paper §4.1: PageRank of the source page, etc.).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SourceMeta {
    /// Identifier of the simulated web page the sentence came from.
    pub page_id: u64,
    /// PageRank-style importance score in `[0, 1]`.
    pub page_rank: f64,
    /// Source credibility in `[0, 1]` ("New York Times vs public forum").
    /// Correlates with the generator's corruption rate, which is what makes
    /// it an informative plausibility feature.
    pub source_quality: f64,
}

/// A sentence as delivered to the extraction pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SentenceRecord {
    /// Dense sentence id (position in the corpus).
    pub id: u64,
    /// Raw sentence text.
    pub text: String,
    /// Page metadata visible to the extractor.
    pub meta: SourceMeta,
    /// Ground truth — judge-only. Extraction code must not read this; the
    /// public pipeline API only exposes `text` and `meta`.
    pub truth: SentenceTruth,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hearst_patterns_enumerate_six() {
        assert_eq!(PatternKind::HEARST.len(), 6);
        for (i, p) in PatternKind::HEARST.iter().enumerate() {
            assert_eq!(p.hearst_index(), Some(i));
        }
        assert_eq!(PatternKind::Noise.hearst_index(), None);
        assert_eq!(PatternKind::PartOf.hearst_index(), None);
    }

    #[test]
    fn truth_pair_validity() {
        let valid = TruthPair {
            surface: "cats".into(),
            referent: Referent::Instance(InstanceId(0)),
        };
        let junk = TruthPair {
            surface: "tables".into(),
            referent: Referent::Junk,
        };
        assert!(valid.is_valid());
        assert!(!junk.is_valid());
    }
}
