//! Zipf-distributed sampling.
//!
//! Web text is heavy-tailed everywhere Probase looks: concept mention
//! frequencies, instance typicality within a concept, and query frequencies
//! all follow approximately Zipfian laws (paper §5.1, "User web queries has
//! a well-known long-tail distribution"). This module provides a small,
//! allocation-free-after-construction Zipf sampler over ranks `0..n`.

use rand::Rng;

/// Sampler for a Zipf distribution over `n` ranks with exponent `s`.
///
/// Rank `k` (0-based) has probability proportional to `1 / (k + 1)^s`.
/// Sampling is O(log n) via binary search over the precomputed CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a sampler over `n ≥ 1` ranks with exponent `s > 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite and positive.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(s.is_finite() && s > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the sampler has a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            return 0.0;
        }
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// The weights (unnormalized ranks) as normalized probabilities, useful
    /// for assigning typicality mass deterministically without sampling.
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.len()).map(|k| self.pmf(k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.0);
        let sum: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_is_decreasing() {
        let z = Zipf::new(50, 1.2);
        for k in 1..50 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }

    #[test]
    fn sampling_respects_head_heaviness() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut head = 0usize;
        const N: usize = 20_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Top-10 of Zipf(1.0, 1000) holds ~39% of the mass.
        let frac = head as f64 / N as f64;
        assert!(frac > 0.30 && frac < 0.50, "head fraction {frac}");
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn out_of_range_pmf_is_zero() {
        let z = Zipf::new(3, 1.0);
        assert_eq!(z.pmf(3), 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
