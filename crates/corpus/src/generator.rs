//! The web-corpus simulator.
//!
//! Renders a stream of [`SentenceRecord`]s from a ground-truth [`World`].
//! The mixture of constructions and the rates of each ambiguity class are
//! controlled by [`CorpusConfig`]; every knob corresponds to a phenomenon
//! the paper's extraction algorithm must handle (references inline).

use crate::ids::{ConceptId, InstanceId};
use crate::sentence::{
    PatternKind, Referent, SentenceRecord, SentenceTruth, SourceMeta, TruthPair,
};
use crate::world::{InstanceKind, World};
use crate::zipf::Zipf;
use probase_text::pluralize;
use rand::distributions::WeightedIndex;
use rand::prelude::Distribution;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the corpus simulator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// RNG seed (independent of the world seed).
    pub seed: u64,
    /// Number of sentences to render.
    pub sentences: usize,
    /// Relative weights of the six Hearst patterns (paper Table 2). "such
    /// as" dominates real web text.
    pub pattern_mix: [f64; 6],
    /// Probability that a `SuchAs`/`Including` sentence carries an
    /// "other than D" distractor (§2.1: "animals other than dogs such as
    /// cats").
    pub other_than_rate: f64,
    /// Probability that an `AndOther`/`OrOther` list is prefixed by items
    /// from a *sibling* concept (§2.2 Example 2(4): continents before
    /// countries).
    pub list_drift_rate: f64,
    /// Number of drifted items when drift occurs (upper bound).
    pub max_drift_items: usize,
    /// Base probability that one list item is replaced by garbage (web
    /// noise). Scaled up on low-quality pages, which is what makes
    /// `source_quality` an informative plausibility feature (§4.1).
    pub corrupt_rate: f64,
    /// Fraction of sentences that are background prose with no pattern.
    pub noise_rate: f64,
    /// Fraction of sentences that are part-of constructions (negative isA
    /// evidence, §4.1).
    pub partof_rate: f64,
    /// Probability that a valid list item is a *sub-concept label* rather
    /// than an instance (feeds vertical merging, §3.4 Property 3).
    pub subconcept_item_rate: f64,
    /// Minimum list length (inclusive).
    pub min_list: usize,
    /// Maximum list length (inclusive).
    pub max_list: usize,
    /// Average sentences per simulated page.
    pub sentences_per_page: usize,
    /// Source-credibility range pages are drawn from. Encyclopedic
    /// corpora sit high; forum scrapes sit low. Interacts with
    /// `corrupt_rate` (corruption scales with low quality).
    pub quality_range: (f64, f64),
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            sentences: 60_000,
            pattern_mix: [0.42, 0.08, 0.18, 0.14, 0.05, 0.13],
            other_than_rate: 0.06,
            list_drift_rate: 0.08,
            max_drift_items: 3,
            corrupt_rate: 0.025,
            noise_rate: 0.12,
            partof_rate: 0.03,
            subconcept_item_rate: 0.10,
            min_list: 1,
            max_list: 6,
            sentences_per_page: 3,
            quality_range: (0.2, 1.0),
        }
    }
}

impl CorpusConfig {
    /// Small corpus for unit tests.
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            sentences: 2_000,
            ..Self::default()
        }
    }

    /// Encyclopedia-like profile: curated, high-credibility pages with
    /// very little corruption (the Wikipedia-ish end of the web).
    pub fn encyclopedia(seed: u64, sentences: usize) -> Self {
        Self {
            seed,
            sentences,
            corrupt_rate: 0.006,
            noise_rate: 0.08,
            quality_range: (0.7, 1.0),
            ..Self::default()
        }
    }

    /// Forum-like profile: low-credibility pages, heavy corruption and
    /// drift — the messy end of the web the paper's robustness story is
    /// about.
    pub fn forum(seed: u64, sentences: usize) -> Self {
        Self {
            seed,
            sentences,
            corrupt_rate: 0.06,
            noise_rate: 0.2,
            list_drift_rate: 0.14,
            other_than_rate: 0.1,
            quality_range: (0.2, 0.6),
            ..Self::default()
        }
    }
}

/// Streaming generator over a world. Use [`CorpusGenerator::generate_all`]
/// for a batch or iterate with [`CorpusGenerator::next_record`].
pub struct CorpusGenerator<'w> {
    world: &'w World,
    config: CorpusConfig,
    rng: SmallRng,
    /// Weighted sampler over concepts with at least one instance.
    concept_sampler: WeightedIndex<f64>,
    eligible: Vec<ConceptId>,
    pattern_sampler: WeightedIndex<f64>,
    next_id: u64,
    /// Current page state.
    page_id: u64,
    page_left: usize,
    page_rank: f64,
    page_quality: f64,
}

impl<'w> CorpusGenerator<'w> {
    /// Create a generator; panics if the world has no populated concepts.
    pub fn new(world: &'w World, config: CorpusConfig) -> Self {
        let eligible: Vec<ConceptId> = world
            .concepts
            .iter()
            .filter(|c| !c.instances.is_empty())
            .map(|c| c.id)
            .collect();
        assert!(!eligible.is_empty(), "world has no populated concepts");
        let weights: Vec<f64> = eligible
            .iter()
            .map(|&id| world.concept(id).popularity.max(1e-12))
            .collect();
        let concept_sampler = WeightedIndex::new(&weights).expect("positive weights");
        let pattern_sampler = WeightedIndex::new(config.pattern_mix).expect("pattern mix");
        let rng = SmallRng::seed_from_u64(config.seed);
        Self {
            world,
            config,
            rng,
            concept_sampler,
            eligible,
            pattern_sampler,
            next_id: 0,
            page_id: 0,
            page_left: 0,
            page_rank: 0.0,
            page_quality: 0.0,
        }
    }

    /// Render the whole corpus.
    pub fn generate_all(mut self) -> Vec<SentenceRecord> {
        let mut out = Vec::with_capacity(self.config.sentences);
        for _ in 0..self.config.sentences {
            out.push(self.next_record());
        }
        out
    }

    /// Render one sentence.
    pub fn next_record(&mut self) -> SentenceRecord {
        if self.page_left == 0 {
            self.page_id += 1;
            self.page_left = 1 + self.rng.gen_range(0..self.config.sentences_per_page * 2);
            // PageRank: heavy-tailed toward 0.
            let u: f64 = self.rng.gen();
            self.page_rank = u.powf(3.0);
            let (lo, hi) = self.config.quality_range;
            self.page_quality = self.rng.gen_range(lo..hi.max(lo + 1e-9));
        }
        self.page_left -= 1;
        let meta = SourceMeta {
            page_id: self.page_id,
            page_rank: self.page_rank,
            source_quality: self.page_quality,
        };

        let roll: f64 = self.rng.gen();
        let (text, truth) = if roll < self.config.noise_rate {
            (self.noise_sentence(), SentenceTruth::default())
        } else if roll < self.config.noise_rate + self.config.partof_rate {
            self.partof_sentence()
        } else {
            self.hearst_sentence()
        };

        let id = self.next_id;
        self.next_id += 1;
        SentenceRecord {
            id,
            text,
            meta,
            truth,
        }
    }

    // ---- sentence builders ------------------------------------------

    fn pick_concept(&mut self) -> ConceptId {
        self.eligible[self.concept_sampler.sample(&mut self.rng)]
    }

    /// Draw up to `n` distinct instances of `cid` by typicality weight.
    fn draw_instances(&mut self, cid: ConceptId, n: usize) -> Vec<InstanceId> {
        let members = &self.world.concept(cid).instances;
        let z = Zipf::new(members.len(), 1.0);
        let mut chosen: Vec<InstanceId> = Vec::with_capacity(n);
        let mut guard = 0;
        while chosen.len() < n.min(members.len()) && guard < 50 * n + 50 {
            guard += 1;
            let k = z.sample(&mut self.rng);
            let iid = members[k].instance;
            if !chosen.contains(&iid) {
                chosen.push(iid);
            }
        }
        chosen
    }

    /// Surface of an instance as it appears inside a list. Common nouns are
    /// rendered in the plural ("animals such as cats"); proper names,
    /// conjunction names and titles stay verbatim.
    fn render_instance(&self, iid: InstanceId) -> String {
        let inst = self.world.instance(iid);
        match inst.kind {
            InstanceKind::Common => pluralize_phrase(&inst.surface),
            _ => inst.surface.clone(),
        }
    }

    /// Plural surface of a concept label ("tropical country" →
    /// "tropical countries").
    fn render_concept(&self, cid: ConceptId) -> String {
        pluralize_phrase(&self.world.concept(cid).label)
    }

    fn hearst_sentence(&mut self) -> (String, SentenceTruth) {
        let cid = self.pick_concept();
        let pattern = PatternKind::HEARST[self.pattern_sampler.sample(&mut self.rng)];
        let c = self.world.concept(cid);

        let want = self
            .rng
            .gen_range(self.config.min_list..=self.config.max_list);
        let drawn = self.draw_instances(cid, want);
        let mut items: Vec<TruthPair> = drawn
            .iter()
            .map(|&iid| TruthPair {
                surface: self.render_instance(iid),
                referent: Referent::Instance(iid),
            })
            .collect();

        // Sub-concept items (vertical-merge fuel): occasionally list a
        // child concept label among the instances, together with a few of
        // the child's own instances — the co-listing evidence Property 3
        // (paper §3.3, sentence d: "organisms such as plants, trees, grass
        // and animals") relies on. Child instances are valid under the
        // parent transitively.
        if !c.children.is_empty() && self.rng.gen_bool(self.config.subconcept_item_rate) {
            let child = c.children[self.rng.gen_range(0..c.children.len())];
            if !self.world.concept(child).instances.is_empty() {
                let surface = self.render_concept(child);
                let pos = self.rng.gen_range(0..=items.len());
                items.insert(
                    pos.min(items.len()),
                    TruthPair {
                        surface,
                        referent: Referent::Concept(child),
                    },
                );
                let extra = self.rng.gen_range(1..=3);
                for iid in self.draw_instances(child, extra) {
                    let surface = self.render_instance(iid);
                    if !items.iter().any(|t| t.surface == surface) {
                        items.push(TruthPair {
                            surface,
                            referent: Referent::Instance(iid),
                        });
                    }
                }
            }
        }

        // Corruption: replace a non-first item with garbage, more often on
        // low-quality pages.
        let effective_corrupt = self.config.corrupt_rate * (1.6 - self.page_quality);
        if items.len() >= 2 && self.rng.gen_bool(effective_corrupt.clamp(0.0, 1.0)) {
            let pos = self.rng.gen_range(1..items.len());
            items[pos] = TruthPair {
                surface: self.junk_surface(cid),
                referent: Referent::Junk,
            };
        }

        // Distractor and drift.
        let mut distractor = None;
        match pattern {
            PatternKind::SuchAs | PatternKind::Including | PatternKind::Especially
                if self.rng.gen_bool(self.config.other_than_rate) =>
            {
                distractor = self.pick_distractor(cid, &items);
            }
            PatternKind::AndOther | PatternKind::OrOther
                if self.rng.gen_bool(self.config.list_drift_rate) =>
            {
                let k = self.rng.gen_range(1..=self.config.max_drift_items);
                let drift = self.drift_items(cid, k);
                for (i, d) in drift.into_iter().enumerate() {
                    items.insert(i, d);
                }
            }
            _ => {}
        }

        let text = self.render_hearst(pattern, cid, &items, distractor.as_deref());
        let truth = SentenceTruth {
            concept: Some(cid),
            items,
            distractor,
            pattern: Some(pattern),
        };
        (text, truth)
    }

    /// A plural common-noun co-instance to use as an "other than"
    /// distractor ("dogs" for animals). Falls back to `None` when the
    /// concept has no suitable common-noun member outside the listed items.
    fn pick_distractor(&mut self, cid: ConceptId, items: &[TruthPair]) -> Option<String> {
        let c = self.world.concept(cid);
        let candidates: Vec<&str> = c
            .instances
            .iter()
            .map(|m| self.world.instance(m.instance))
            .filter(|i| i.kind == InstanceKind::Common)
            .map(|i| i.surface.as_str())
            .filter(|s| {
                let plural = pluralize_phrase(s);
                !items.iter().any(|t| t.surface == plural)
            })
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let pick = candidates[self.rng.gen_range(0..candidates.len())];
        Some(pluralize_phrase(pick))
    }

    /// Items drifted in from a sibling concept (invalid under `cid`).
    fn drift_items(&mut self, cid: ConceptId, k: usize) -> Vec<TruthPair> {
        let sibling = self.sibling_of(cid);
        let Some(sib) = sibling else {
            return Vec::new();
        };
        self.draw_instances(sib, k)
            .into_iter()
            .map(|iid| TruthPair {
                surface: self.render_instance(iid),
                referent: Referent::Junk,
            })
            .collect()
    }

    fn sibling_of(&mut self, cid: ConceptId) -> Option<ConceptId> {
        let c = self.world.concept(cid);
        let parent = *c.parents.first()?;
        let siblings: Vec<ConceptId> = self
            .world
            .concept(parent)
            .children
            .iter()
            .copied()
            .filter(|&s| s != cid && !self.world.concept(s).instances.is_empty())
            .collect();
        if siblings.is_empty() {
            None
        } else {
            Some(siblings[self.rng.gen_range(0..siblings.len())])
        }
    }

    /// A garbage surface for corruption: an attribute noun of the concept
    /// (pluralized) or a random instance of an unrelated concept.
    fn junk_surface(&mut self, cid: ConceptId) -> String {
        let c = self.world.concept(cid);
        if !c.attributes.is_empty() && self.rng.gen_bool(0.4) {
            return pluralize_phrase(&c.attributes[self.rng.gen_range(0..c.attributes.len())]);
        }
        // Random unrelated instance.
        for _ in 0..8 {
            let other = self.eligible[self.rng.gen_range(0..self.eligible.len())];
            if other != cid {
                let drawn = self.draw_instances(other, 1);
                if let Some(iid) = drawn.first() {
                    return self.render_instance(*iid);
                }
            }
        }
        "miscellanea".to_string()
    }

    fn render_hearst(
        &mut self,
        pattern: PatternKind,
        cid: ConceptId,
        items: &[TruthPair],
        distractor: Option<&str>,
    ) -> String {
        let x = self.render_concept(cid);
        let x = match distractor {
            Some(d) => format!("{x} other than {d}"),
            None => x,
        };
        let list = self.render_list(items);
        let prefix = self.prefix();
        let suffix = self.suffix();
        let body = match pattern {
            PatternKind::SuchAs => format!("{x} such as {list}"),
            PatternKind::SuchNpAs => format!("such {x} as {list}"),
            PatternKind::Including => format!("{x}, including {list}"),
            PatternKind::AndOther => format!("{list}, and other {x}"),
            PatternKind::OrOther => format!("{list}, or other {x}"),
            PatternKind::Especially => format!("{x}, especially {list}"),
            _ => unreachable!("not a Hearst pattern"),
        };
        format!("{prefix}{body}{suffix}")
    }

    /// Comma-separated list with a final "and"/"or" before the last item
    /// (as real prose has), sometimes plain commas only.
    fn render_list(&mut self, items: &[TruthPair]) -> String {
        let surfaces: Vec<&str> = items.iter().map(|t| t.surface.as_str()).collect();
        match surfaces.len() {
            0 => String::new(),
            1 => surfaces[0].to_string(),
            _ => {
                let conj = if self.rng.gen_bool(0.75) { "and" } else { "or" };
                let joiner = if self.rng.gen_bool(0.85) {
                    format!(" {conj} ")
                } else {
                    ", ".to_string()
                };
                let head = surfaces[..surfaces.len() - 1].join(", ");
                format!("{head}{joiner}{}", surfaces[surfaces.len() - 1])
            }
        }
    }

    fn prefix(&mut self) -> String {
        const PREFIXES: &[&str] = &[
            "",
            "",
            "",
            "many experts recommend ",
            "the report covers ",
            "we studied ",
            "visitors often mention ",
            "the market for ",
            "there is growing interest in ",
            "analysts track ",
        ];
        PREFIXES[self.rng.gen_range(0..PREFIXES.len())].to_string()
    }

    fn suffix(&mut self) -> String {
        const SUFFIXES: &[&str] = &[
            ".",
            ".",
            " in recent years.",
            " around the world.",
            " among many others.",
            " according to the survey.",
            ", which keeps growing.",
        ];
        SUFFIXES[self.rng.gen_range(0..SUFFIXES.len())].to_string()
    }

    /// Background prose with no Hearst pattern.
    fn noise_sentence(&mut self) -> String {
        let cid = self.pick_concept();
        let x = self.render_concept(cid);
        let drawn = self.draw_instances(cid, 1);
        let inst = drawn
            .first()
            .map(|&i| self.render_instance(i))
            .unwrap_or_else(|| "things".to_string());
        const TEMPLATES: &[&str] = &[
            "the history of {X} is long and well documented.",
            "{I} remains a popular choice for many families.",
            "few people realize how quickly {X} have changed.",
            "{I} was mentioned twice in the annual report.",
            "prices for {X} rose sharply this quarter.",
            "the committee discussed {I} at length.",
        ];
        let t = TEMPLATES[self.rng.gen_range(0..TEMPLATES.len())];
        t.replace("{X}", &x).replace("{I}", &inst)
    }

    /// Part-of construction: negative isA evidence (§4.1). Claims that the
    /// concept's *attributes* are parts, so any corrupted isA pair built
    /// from an attribute can be counteracted.
    fn partof_sentence(&mut self) -> (String, SentenceTruth) {
        let cid = self.pick_concept();
        let c = self.world.concept(cid);
        let n = self.rng.gen_range(2..=3.min(c.attributes.len().max(2)));
        let mut parts: Vec<String> = Vec::new();
        for _ in 0..n {
            if c.attributes.is_empty() {
                break;
            }
            let a = &c.attributes[self.rng.gen_range(0..c.attributes.len())];
            let p = pluralize_phrase(a);
            if !parts.contains(&p) {
                parts.push(p);
            }
        }
        let x = self.render_concept(cid);
        let list = parts.join(", ");
        let text = format!("{x} are comprised of {list}.");
        let truth = SentenceTruth {
            concept: Some(cid),
            items: parts
                .into_iter()
                .map(|surface| TruthPair {
                    surface,
                    referent: Referent::Junk,
                })
                .collect(),
            distractor: None,
            pattern: Some(PatternKind::PartOf),
        };
        (text, truth)
    }
}

/// Pluralize the head (final word) of a phrase: `"tropical country"` →
/// `"tropical countries"`, `"steam turbine"` → `"steam turbines"`.
pub fn pluralize_phrase(phrase: &str) -> String {
    match phrase.rsplit_once(' ') {
        Some((head, last)) => format!("{head} {}", pluralize(last)),
        None => pluralize(phrase),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worldgen::{generate, WorldConfig};

    fn corpus(seed: u64, n: usize) -> (World, Vec<SentenceRecord>) {
        let world = generate(&WorldConfig::small(seed));
        let cfg = CorpusConfig {
            seed,
            sentences: n,
            ..CorpusConfig::default()
        };
        let records = CorpusGenerator::new(&world, cfg).generate_all();
        (world, records)
    }

    #[test]
    fn generates_requested_count_with_dense_ids() {
        let (_, recs) = corpus(3, 500);
        assert_eq!(recs.len(), 500);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (_, a) = corpus(5, 200);
        let (_, b) = corpus(5, 200);
        assert_eq!(
            a.iter().map(|r| &r.text).collect::<Vec<_>>(),
            b.iter().map(|r| &r.text).collect::<Vec<_>>()
        );
    }

    #[test]
    fn mixture_contains_all_constructions() {
        let (_, recs) = corpus(7, 4000);
        let mut kinds = std::collections::HashSet::new();
        for r in &recs {
            kinds.insert(r.truth.pattern);
        }
        for p in PatternKind::HEARST {
            assert!(kinds.contains(&Some(p)), "missing {p:?}");
        }
        assert!(kinds.contains(&None), "missing noise");
        assert!(kinds.contains(&Some(PatternKind::PartOf)));
    }

    #[test]
    fn such_as_sentences_contain_keyword_and_items() {
        let (_, recs) = corpus(11, 3000);
        let mut seen = 0;
        for r in recs
            .iter()
            .filter(|r| r.truth.pattern == Some(PatternKind::SuchAs))
        {
            assert!(r.text.contains("such as"), "{}", r.text);
            for item in &r.truth.items {
                assert!(
                    r.text.contains(&item.surface),
                    "{} missing {}",
                    r.text,
                    item.surface
                );
            }
            seen += 1;
        }
        assert!(seen > 100);
    }

    #[test]
    fn other_than_distractors_appear_in_text() {
        let (_, recs) = corpus(13, 6000);
        let with = recs.iter().filter(|r| r.truth.distractor.is_some()).count();
        assert!(with > 10, "expected some distractor sentences, got {with}");
        for r in recs.iter().filter(|r| r.truth.distractor.is_some()) {
            let d = r.truth.distractor.as_ref().unwrap();
            assert!(r.text.contains(&format!("other than {d}")), "{}", r.text);
        }
    }

    #[test]
    fn drift_items_marked_junk() {
        let (_, recs) = corpus(17, 8000);
        let drifted: Vec<_> = recs
            .iter()
            .filter(|r| {
                matches!(
                    r.truth.pattern,
                    Some(PatternKind::AndOther | PatternKind::OrOther)
                ) && r.truth.items.first().is_some_and(|t| !t.is_valid())
            })
            .collect();
        assert!(!drifted.is_empty(), "expected drifted and-other sentences");
    }

    #[test]
    fn corruption_rate_roughly_respected() {
        let (_, recs) = corpus(19, 6000);
        let hearst: Vec<_> = recs
            .iter()
            .filter(|r| r.truth.pattern.is_some_and(|p| p.hearst_index().is_some()))
            .collect();
        let corrupted = hearst
            .iter()
            .filter(|r| r.truth.items.iter().any(|t| !t.is_valid()) && r.truth.distractor.is_none())
            .count();
        let frac = corrupted as f64 / hearst.len() as f64;
        assert!(frac > 0.005 && frac < 0.25, "corruption fraction {frac}");
    }

    #[test]
    fn page_metadata_in_range_and_grouped() {
        let (_, recs) = corpus(23, 1000);
        for r in &recs {
            assert!((0.0..=1.0).contains(&r.meta.page_rank));
            assert!((0.0..=1.0).contains(&r.meta.source_quality));
        }
        // Consecutive sentences on the same page share metadata.
        let same_page: Vec<_> = recs
            .windows(2)
            .filter(|w| w[0].meta.page_id == w[1].meta.page_id)
            .collect();
        assert!(!same_page.is_empty());
        for w in same_page {
            assert_eq!(w[0].meta.source_quality, w[1].meta.source_quality);
        }
    }

    #[test]
    fn pluralize_phrase_handles_multiword() {
        assert_eq!(pluralize_phrase("tropical country"), "tropical countries");
        assert_eq!(pluralize_phrase("steam turbine"), "steam turbines");
        assert_eq!(pluralize_phrase("cat"), "cats");
    }

    #[test]
    fn partof_sentences_use_comprised_of() {
        let (_, recs) = corpus(29, 4000);
        let part: Vec<_> = recs
            .iter()
            .filter(|r| r.truth.pattern == Some(PatternKind::PartOf))
            .collect();
        assert!(!part.is_empty());
        for r in part {
            assert!(r.text.contains("are comprised of"), "{}", r.text);
            assert!(r.truth.items.iter().all(|t| !t.is_valid()));
        }
    }
}
