//! Attribute-sentence corpus for the attribute-extraction application
//! (paper §5.3.1, Figure 12).
//!
//! Pasca's weakly-supervised attribute harvester — the baseline the paper
//! compares against — mines constructions like *"the population of China"*
//! from query logs and web text. This module renders the synthetic
//! equivalent: `"the <attribute> of <instance>"` sentences where the
//! attribute truly belongs to the instance's concept, mixed with generic
//! junk attributes ("the rest of China") that a frequency-based harvester
//! must learn to rank below the real ones.

use crate::ids::ConceptId;
use crate::world::World;
use crate::zipf::Zipf;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One attribute mention.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttributeMention {
    /// Full sentence text (`"the population of China is large."`).
    pub text: String,
    /// Instance surface as rendered.
    pub instance: String,
    /// Attribute word.
    pub attribute: String,
    /// Ground truth: is the attribute genuinely an attribute of the
    /// instance's concept?
    pub valid: bool,
}

/// Generic words that appear in "the X of Y" constructions without being
/// attributes — the noise a real harvester fights.
pub const JUNK_ATTRIBUTES: &[&str] = &[
    "rest", "list", "number", "part", "side", "top", "bottom", "end", "middle", "story", "picture",
    "photo", "map", "best", "future", "idea", "case", "cost", "kind", "sort",
];

/// Configuration for the attribute corpus.
#[derive(Debug, Clone)]
pub struct AttributeCorpusConfig {
    /// RNG seed.
    pub seed: u64,
    /// Mentions per (concept, attribute) pair on average.
    pub mentions_per_attribute: usize,
    /// Fraction of mentions that use a junk attribute instead.
    pub junk_rate: f64,
}

impl Default for AttributeCorpusConfig {
    fn default() -> Self {
        Self {
            seed: 77,
            mentions_per_attribute: 6,
            junk_rate: 0.35,
        }
    }
}

/// Render the attribute corpus for the given concepts (typically the
/// benchmark set). Mentions are skewed toward typical instances, matching
/// how attribute evidence concentrates on famous entities.
pub fn generate_attribute_corpus(
    world: &World,
    concepts: &[ConceptId],
    config: &AttributeCorpusConfig,
) -> Vec<AttributeMention> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut out = Vec::new();
    const TEMPLATES: &[&str] = &[
        "the {A} of {I} is well known.",
        "what is the {A} of {I}?",
        "he asked about the {A} of {I}.",
        "the {A} of {I} changed last year.",
        "see the {A} of {I} for details.",
    ];
    for &cid in concepts {
        let c = world.concept(cid);
        if c.instances.is_empty() || c.attributes.is_empty() {
            continue;
        }
        let z = Zipf::new(c.instances.len(), 1.0);
        let total = c.attributes.len() * config.mentions_per_attribute;
        for _ in 0..total {
            let iid = c.instances[z.sample(&mut rng)].instance;
            let inst = world.instance(iid).surface.clone();
            let (attr, valid) = if rng.gen_bool(config.junk_rate) {
                (
                    JUNK_ATTRIBUTES[rng.gen_range(0..JUNK_ATTRIBUTES.len())].to_string(),
                    false,
                )
            } else {
                (
                    c.attributes[rng.gen_range(0..c.attributes.len())].clone(),
                    true,
                )
            };
            let t = TEMPLATES[rng.gen_range(0..TEMPLATES.len())];
            out.push(AttributeMention {
                text: t.replace("{A}", &attr).replace("{I}", &inst),
                instance: inst,
                attribute: attr,
                valid,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worldgen::{generate, WorldConfig};

    #[test]
    fn corpus_mixes_valid_and_junk() {
        let world = generate(&WorldConfig::small(5));
        let concepts: Vec<ConceptId> = world
            .concepts
            .iter()
            .filter(|c| c.curated)
            .map(|c| c.id)
            .take(10)
            .collect();
        let corpus =
            generate_attribute_corpus(&world, &concepts, &AttributeCorpusConfig::default());
        assert!(!corpus.is_empty());
        let valid = corpus.iter().filter(|m| m.valid).count();
        let junk = corpus.len() - valid;
        assert!(valid > 0 && junk > 0);
        for m in &corpus {
            assert!(m.text.contains(&m.attribute));
            assert!(m.text.contains(&m.instance));
        }
    }

    #[test]
    fn deterministic() {
        let world = generate(&WorldConfig::small(5));
        let concepts: Vec<ConceptId> = world.concepts.iter().take(20).map(|c| c.id).collect();
        let a = generate_attribute_corpus(&world, &concepts, &AttributeCorpusConfig::default());
        let b = generate_attribute_corpus(&world, &concepts, &AttributeCorpusConfig::default());
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.text == y.text));
    }

    #[test]
    fn junk_rate_extremes() {
        let world = generate(&WorldConfig::small(6));
        let concepts: Vec<ConceptId> = world
            .concepts
            .iter()
            .filter(|c| c.curated)
            .map(|c| c.id)
            .take(5)
            .collect();
        let all_junk = generate_attribute_corpus(
            &world,
            &concepts,
            &AttributeCorpusConfig {
                junk_rate: 1.0,
                ..Default::default()
            },
        );
        assert!(all_junk.iter().all(|m| !m.valid));
        let none_junk = generate_attribute_corpus(
            &world,
            &concepts,
            &AttributeCorpusConfig {
                junk_rate: 0.0,
                ..Default::default()
            },
        );
        assert!(none_junk.iter().all(|m| m.valid));
    }
}
