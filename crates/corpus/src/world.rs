//! The ground-truth world model.
//!
//! A [`World`] is the synthetic stand-in for "what is actually true" behind
//! the 1.68 B web pages the paper crawled. It is a sense-disambiguated
//! taxonomy: every concept node is a *sense* (two senses of "plant" are two
//! [`ConceptSpec`]s sharing a label), instances may belong to several
//! concepts, membership carries a ground-truth typicality weight, and every
//! concept has a popularity governing how often the corpus simulator
//! mentions it.
//!
//! The world is consulted by two parties with very different privileges:
//!
//! * the **corpus generator** reads everything (it must render truthful and
//!   deliberately ambiguous sentences), and
//! * the **evaluation judge** reads everything (it decides whether an
//!   extracted pair is correct, playing the role of the paper's human
//!   judges, §5.2).
//!
//! The extraction pipeline itself never sees a `World` — it only sees
//! sentence text and page metadata.

use crate::ids::{ConceptId, InstanceId};
use probase_text::Lexicon;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// How an instance's surface form behaves syntactically — the ambiguity
/// classes of paper §2.2 Example 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstanceKind {
    /// Capitalized proper name: `"IBM"`, `"Dramor Plisk"`.
    Proper,
    /// Lowercase common noun: `"cat"`, `"carbon dioxide"`.
    Common,
    /// Proper name with an embedded conjunction: `"Proctor and Gamble"`.
    ConjunctionName,
    /// A title that is not a noun phrase: `"Gone with the Wind"`.
    Title,
}

/// Membership of an instance in a concept, with ground-truth typicality.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Membership {
    /// The member instance.
    pub instance: InstanceId,
    /// Ground-truth typicality weight within the concept; weights of a
    /// concept's memberships sum to 1.
    pub typicality: f64,
}

/// A concept sense in the ground-truth taxonomy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConceptSpec {
    /// Identifier (index into [`World::concepts`]).
    pub id: ConceptId,
    /// Canonical label: lowercase, singular head (`"tropical country"`).
    pub label: String,
    /// Sense index among concepts sharing this label (0-based).
    pub sense: u32,
    /// Direct super-concepts.
    pub parents: Vec<ConceptId>,
    /// Direct sub-concepts.
    pub children: Vec<ConceptId>,
    /// Direct instance memberships, sorted by descending typicality.
    pub instances: Vec<Membership>,
    /// Relative mention frequency in the simulated web (unnormalized).
    pub popularity: f64,
    /// Attribute vocabulary of the concept (`"population"`, `"capital"`),
    /// used by the attribute-extraction application (paper Fig. 12).
    pub attributes: Vec<String>,
    /// Part of the curated 40-concept benchmark (paper Table 5)?
    pub curated: bool,
    /// Vague concept ("largest company") — intrinsically borderline
    /// membership, paper §1.
    pub vague: bool,
}

/// An instance in the ground-truth world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InstanceSpec {
    /// Identifier (index into [`World::instances`]).
    pub id: InstanceId,
    /// Surface form as it appears in text (`"Proctor and Gamble"`).
    pub surface: String,
    /// Syntactic behaviour class of the surface.
    pub kind: InstanceKind,
    /// Concepts this instance directly belongs to.
    pub concepts: Vec<ConceptId>,
}

/// The complete ground-truth world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct World {
    /// All concept senses, indexed by [`ConceptId`].
    pub concepts: Vec<ConceptSpec>,
    /// All instances, indexed by [`InstanceId`].
    pub instances: Vec<InstanceSpec>,
    /// Tagger overrides for coined vocabulary (adjectives, domain nouns).
    pub lexicon: Lexicon,
    /// Seed the world was generated with, for provenance.
    pub seed: u64,
}

impl World {
    /// The concept sense with this id.
    pub fn concept(&self, id: ConceptId) -> &ConceptSpec {
        &self.concepts[id.index()]
    }

    /// The instance with this id.
    pub fn instance(&self, id: InstanceId) -> &InstanceSpec {
        &self.instances[id.index()]
    }

    /// All concept senses carrying `label` (canonical form).
    pub fn senses_of(&self, label: &str) -> Vec<ConceptId> {
        self.concepts
            .iter()
            .filter(|c| c.label == label)
            .map(|c| c.id)
            .collect()
    }

    /// Number of concepts.
    pub fn concept_count(&self) -> usize {
        self.concepts.len()
    }

    /// Number of instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Root concepts (no parents).
    pub fn roots(&self) -> Vec<ConceptId> {
        self.concepts
            .iter()
            .filter(|c| c.parents.is_empty())
            .map(|c| c.id)
            .collect()
    }

    /// All descendant concepts of `id` (excluding `id` itself).
    pub fn descendant_concepts(&self, id: ConceptId) -> HashSet<ConceptId> {
        let mut out = HashSet::new();
        let mut stack: Vec<ConceptId> = self.concept(id).children.clone();
        while let Some(c) = stack.pop() {
            if out.insert(c) {
                stack.extend(self.concept(c).children.iter().copied());
            }
        }
        out
    }

    /// All instances reachable from `id` through any chain of sub-concepts,
    /// including direct memberships.
    pub fn closure_instances(&self, id: ConceptId) -> HashSet<InstanceId> {
        let mut out: HashSet<InstanceId> = self
            .concept(id)
            .instances
            .iter()
            .map(|m| m.instance)
            .collect();
        for c in self.descendant_concepts(id) {
            out.extend(self.concept(c).instances.iter().map(|m| m.instance));
        }
        out
    }

    /// Validate structural invariants; returns a list of violations (empty
    /// when the world is well-formed). Checked by worldgen tests and by the
    /// `quickstart` example.
    pub fn validate(&self) -> Vec<String> {
        let mut errors = Vec::new();
        // parent/child symmetry
        for c in &self.concepts {
            for &p in &c.parents {
                if !self.concept(p).children.contains(&c.id) {
                    errors.push(format!("{}: parent {} lacks child link", c.id, p));
                }
            }
            for &ch in &c.children {
                if !self.concept(ch).parents.contains(&c.id) {
                    errors.push(format!("{}: child {} lacks parent link", c.id, ch));
                }
            }
            for m in &c.instances {
                if !self.instance(m.instance).concepts.contains(&c.id) {
                    errors.push(format!("{}: instance {} lacks back link", c.id, m.instance));
                }
            }
            let t: f64 = c.instances.iter().map(|m| m.typicality).sum();
            if !c.instances.is_empty() && (t - 1.0).abs() > 1e-6 {
                errors.push(format!("{}: typicality sums to {t}", c.id));
            }
        }
        // acyclicity via DFS coloring
        if self.has_cycle() {
            errors.push("concept hierarchy has a cycle".to_string());
        }
        // Unique instance surfaces, case-sensitively: "apple" (the fruit)
        // and "Apple" (the company) are deliberately distinct homograph
        // instances, but two specs with the identical surface would make
        // ground truth ambiguous.
        let mut seen = HashMap::new();
        for i in &self.instances {
            if let Some(prev) = seen.insert(i.surface.clone(), i.id) {
                errors.push(format!(
                    "duplicate instance surface {:?} ({} and {})",
                    i.surface, prev, i.id
                ));
            }
        }
        errors
    }

    fn has_cycle(&self) -> bool {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color = vec![Color::White; self.concepts.len()];
        // Iterative DFS with explicit post-visit marking.
        for start in 0..self.concepts.len() {
            if color[start] != Color::White {
                continue;
            }
            let mut stack = vec![(ConceptId(start as u32), false)];
            while let Some((node, processed)) = stack.pop() {
                if processed {
                    color[node.index()] = Color::Black;
                    continue;
                }
                match color[node.index()] {
                    Color::Black => continue,
                    Color::Gray => return true,
                    Color::White => {}
                }
                color[node.index()] = Color::Gray;
                stack.push((node, true));
                for &ch in &self.concept(node).children {
                    match color[ch.index()] {
                        Color::Gray => return true,
                        Color::White => stack.push((ch, false)),
                        Color::Black => {}
                    }
                }
            }
        }
        false
    }
}

/// Precomputed lookup structures over a [`World`], used by the judge and
/// the applications' oracle side. Building one is O(world size).
#[derive(Debug)]
pub struct WorldIndex<'w> {
    world: &'w World,
    label_to_senses: HashMap<String, Vec<ConceptId>>,
    surface_to_instances: HashMap<String, Vec<InstanceId>>,
    /// Memoized closure of instances per concept.
    closures: HashMap<ConceptId, HashSet<InstanceId>>,
}

impl<'w> WorldIndex<'w> {
    /// Build all lookup structures (O(world size)).
    pub fn new(world: &'w World) -> Self {
        let mut label_to_senses: HashMap<String, Vec<ConceptId>> = HashMap::new();
        for c in &world.concepts {
            label_to_senses
                .entry(c.label.clone())
                .or_default()
                .push(c.id);
        }
        let mut surface_to_instances: HashMap<String, Vec<InstanceId>> = HashMap::new();
        for i in &world.instances {
            surface_to_instances
                .entry(i.surface.to_lowercase())
                .or_default()
                .push(i.id);
        }
        let mut closures = HashMap::new();
        for c in &world.concepts {
            closures.insert(c.id, world.closure_instances(c.id));
        }
        Self {
            world,
            label_to_senses,
            surface_to_instances,
            closures,
        }
    }

    /// The underlying world.
    pub fn world(&self) -> &'w World {
        self.world
    }

    /// Concept senses for a canonical label.
    pub fn senses(&self, label: &str) -> &[ConceptId] {
        self.label_to_senses
            .get(label)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Instances whose surface (case-insensitively) equals `surface`.
    pub fn instances_for_surface(&self, surface: &str) -> &[InstanceId] {
        self.surface_to_instances
            .get(&surface.to_lowercase())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Ground-truth check: is `sub_surface` a valid instance or descendant
    /// concept of *some sense* of `super_label`? This is the judge's notion
    /// of a correct isA pair (paper §5.2 human evaluation), accepting
    /// transitive membership.
    pub fn is_valid_isa(&self, super_label: &str, sub_surface: &str) -> bool {
        let sub_lower = sub_surface.to_lowercase();
        for &cid in self.senses(super_label) {
            // Sub-concept by label anywhere below the sense.
            let descendants = self.world.descendant_concepts(cid);
            if descendants
                .iter()
                .any(|d| self.world.concept(*d).label == sub_lower)
            {
                return true;
            }
            // Instance anywhere in the closure.
            if let Some(closure) = self.closures.get(&cid) {
                for &iid in self.instances_for_surface(&sub_lower) {
                    if closure.contains(&iid) {
                        return true;
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny hand-built world: animal > {domestic animal}, with cat/dog under
    /// both, plus a homograph "plant" (flora vs equipment).
    pub(crate) fn tiny_world() -> World {
        let mut w = World {
            concepts: Vec::new(),
            instances: Vec::new(),
            lexicon: Lexicon::new(),
            seed: 0,
        };
        let mk_c = |id: u32, label: &str, sense: u32| ConceptSpec {
            id: ConceptId(id),
            label: label.to_string(),
            sense,
            parents: vec![],
            children: vec![],
            instances: vec![],
            popularity: 1.0,
            attributes: vec![],
            curated: false,
            vague: false,
        };
        w.concepts.push(mk_c(0, "animal", 0));
        w.concepts.push(mk_c(1, "domestic animal", 0));
        w.concepts.push(mk_c(2, "plant", 0));
        w.concepts.push(mk_c(3, "plant", 1));
        w.concepts[0].children.push(ConceptId(1));
        w.concepts[1].parents.push(ConceptId(0));

        let mk_i = |id: u32, surface: &str, kind: InstanceKind, cs: Vec<ConceptId>| InstanceSpec {
            id: InstanceId(id),
            surface: surface.to_string(),
            kind,
            concepts: cs,
        };
        w.instances
            .push(mk_i(0, "cat", InstanceKind::Common, vec![ConceptId(1)]));
        w.instances
            .push(mk_i(1, "dog", InstanceKind::Common, vec![ConceptId(1)]));
        w.instances
            .push(mk_i(2, "tree", InstanceKind::Common, vec![ConceptId(2)]));
        w.instances
            .push(mk_i(3, "boiler", InstanceKind::Common, vec![ConceptId(3)]));
        w.concepts[1].instances = vec![
            Membership {
                instance: InstanceId(0),
                typicality: 0.6,
            },
            Membership {
                instance: InstanceId(1),
                typicality: 0.4,
            },
        ];
        w.concepts[2].instances = vec![Membership {
            instance: InstanceId(2),
            typicality: 1.0,
        }];
        w.concepts[3].instances = vec![Membership {
            instance: InstanceId(3),
            typicality: 1.0,
        }];
        w
    }

    #[test]
    fn tiny_world_is_valid() {
        assert!(tiny_world().validate().is_empty());
    }

    #[test]
    fn senses_of_homograph() {
        let w = tiny_world();
        assert_eq!(w.senses_of("plant").len(), 2);
        assert_eq!(w.senses_of("animal").len(), 1);
        assert!(w.senses_of("nonexistent").is_empty());
    }

    #[test]
    fn closure_includes_descendant_instances() {
        let w = tiny_world();
        let closure = w.closure_instances(ConceptId(0));
        assert!(closure.contains(&InstanceId(0))); // cat via domestic animal
        assert!(!closure.contains(&InstanceId(2))); // tree is not an animal
    }

    #[test]
    fn index_is_valid_isa_transitive() {
        let w = tiny_world();
        let idx = WorldIndex::new(&w);
        assert!(idx.is_valid_isa("animal", "cat"));
        assert!(idx.is_valid_isa("animal", "domestic animal"));
        assert!(idx.is_valid_isa("domestic animal", "cat"));
        assert!(!idx.is_valid_isa("animal", "tree"));
        assert!(!idx.is_valid_isa("dog", "cat"));
        // both plant senses judge their own instances valid
        assert!(idx.is_valid_isa("plant", "tree"));
        assert!(idx.is_valid_isa("plant", "boiler"));
    }

    #[test]
    fn validate_detects_broken_backlink() {
        let mut w = tiny_world();
        w.concepts[0].children.push(ConceptId(2)); // no parent backlink
        assert!(!w.validate().is_empty());
    }

    #[test]
    fn validate_detects_cycle() {
        let mut w = tiny_world();
        w.concepts[1].children.push(ConceptId(0));
        w.concepts[0].parents.push(ConceptId(1));
        assert!(w.validate().iter().any(|e| e.contains("cycle")));
    }

    #[test]
    fn validate_detects_bad_typicality() {
        let mut w = tiny_world();
        w.concepts[1].instances[0].typicality = 0.9; // now sums to 1.3
        assert!(w.validate().iter().any(|e| e.contains("typicality")));
    }

    #[test]
    fn roots_are_parentless() {
        let w = tiny_world();
        let roots = w.roots();
        assert!(roots.contains(&ConceptId(0)));
        assert!(!roots.contains(&ConceptId(1)));
    }
}
