//! Deterministic coined-name generation.
//!
//! The synthetic world needs far more vocabulary than any curated list can
//! supply: filler concept nouns, proper-name instances, adjectives for
//! modifier-derived concepts, and attribute nouns. Names are coined from
//! syllables so they are pronounceable, collision-checked against a
//! registry, and — crucially — *morphologically regular*, so the heuristic
//! tagger in `probase-text` treats them exactly like real vocabulary.

use rand::Rng;
use std::collections::HashSet;

const ONSETS: &[&str] = &[
    "b", "br", "c", "cr", "d", "dr", "f", "fl", "g", "gl", "gr", "h", "j", "k", "kl", "l", "m",
    "n", "p", "pl", "pr", "qu", "r", "s", "sk", "sl", "sp", "st", "t", "tr", "v", "w", "z",
];
const NUCLEI: &[&str] = &[
    "a", "e", "i", "o", "u", "ar", "er", "or", "an", "en", "on", "el", "al",
];
const CODAS: &[&str] = &[
    "", "n", "m", "l", "r", "s", "t", "x", "nd", "rk", "st", "th",
];

/// Suffixes that make a coined word read as a common noun.
const NOUN_SUFFIXES: &[&str] = &["on", "ite", "ant", "oid", "ide", "ome", "ine", "ode"];
/// Suffixes that make a coined word read as an adjective to the tagger
/// (must be among `probase-text`'s adjective suffixes).
const ADJ_SUFFIXES: &[&str] = &["ous", "ive", "ish", "ful"];

/// A name coiner that guarantees uniqueness within its lifetime.
#[derive(Debug, Default)]
pub struct NameCoiner {
    used: HashSet<String>,
}

impl NameCoiner {
    /// An empty coiner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve an externally supplied name so coined names never collide
    /// with curated vocabulary.
    pub fn reserve(&mut self, name: &str) {
        self.used.insert(name.to_lowercase());
    }

    fn syllable<R: Rng + ?Sized>(rng: &mut R) -> String {
        let o = ONSETS[rng.gen_range(0..ONSETS.len())];
        let n = NUCLEI[rng.gen_range(0..NUCLEI.len())];
        let c = CODAS[rng.gen_range(0..CODAS.len())];
        format!("{o}{n}{c}")
    }

    fn fresh<R: Rng + ?Sized>(&mut self, rng: &mut R, make: impl Fn(&mut R) -> String) -> String {
        for _ in 0..1000 {
            let candidate = make(rng);
            if self.used.insert(candidate.to_lowercase()) {
                return candidate;
            }
        }
        // Practically unreachable: fall back to a counter-suffixed name.
        let mut i = self.used.len();
        loop {
            let candidate = format!("{}{}", make(rng), i);
            if self.used.insert(candidate.to_lowercase()) {
                return candidate;
            }
            i += 1;
        }
    }

    /// Coin a singular common noun, lowercase (e.g. `"brathone"`).
    pub fn common_noun<R: Rng + ?Sized>(&mut self, rng: &mut R) -> String {
        self.fresh(rng, |rng| {
            let n = rng.gen_range(1..=2);
            let mut w: String = (0..n).map(|_| Self::syllable(rng)).collect();
            w.push_str(NOUN_SUFFIXES[rng.gen_range(0..NOUN_SUFFIXES.len())]);
            w
        })
    }

    /// Coin an adjective the heuristic tagger will classify as such.
    pub fn adjective<R: Rng + ?Sized>(&mut self, rng: &mut R) -> String {
        self.fresh(rng, |rng| {
            let mut w = Self::syllable(rng);
            w.push_str(ADJ_SUFFIXES[rng.gen_range(0..ADJ_SUFFIXES.len())]);
            w
        })
    }

    /// Coin a capitalized proper name of `words` words (e.g. `"Dramor Plisk"`).
    pub fn proper_name<R: Rng + ?Sized>(&mut self, rng: &mut R, words: usize) -> String {
        self.fresh(rng, |rng| {
            (0..words.max(1))
                .map(|_| {
                    let n = rng.gen_range(1..=2);
                    let w: String = (0..n).map(|_| Self::syllable(rng)).collect();
                    capitalize(&w)
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
    }

    /// Coin a proper name containing an embedded conjunction, like
    /// `"Proctor and Gamble"` — the §2.3.3 ambiguity class.
    pub fn conjunction_name<R: Rng + ?Sized>(&mut self, rng: &mut R) -> String {
        let a = self.proper_name(rng, 1);
        let b = self.proper_name(rng, 1);
        let joined = format!("{a} and {b}");
        self.used.insert(joined.to_lowercase());
        joined
    }

    /// Coin a title that is not a noun phrase, like `"Gone with the Wind"`
    /// — the §2.2 Example 2(2) ambiguity class.
    pub fn title_name<R: Rng + ?Sized>(&mut self, rng: &mut R) -> String {
        const OPENERS: &[&str] = &["Gone", "Lost", "Born", "Running", "Waiting", "Falling"];
        const LINKS: &[&str] = &["with the", "of the", "in the", "under the", "beyond the"];
        self.fresh(rng, |rng| {
            let opener = OPENERS[rng.gen_range(0..OPENERS.len())];
            let link = LINKS[rng.gen_range(0..LINKS.len())];
            let noun = capitalize(&Self::syllable(rng));
            format!("{opener} {link} {noun}")
        })
    }
}

fn capitalize(w: &str) -> String {
    let mut cs = w.chars();
    match cs.next() {
        Some(c) => c.to_uppercase().collect::<String>() + cs.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probase_text::{is_plural, pluralize};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn coined_nouns_are_unique_and_lowercase() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut coiner = NameCoiner::new();
        let mut seen = HashSet::new();
        for _ in 0..500 {
            let w = coiner.common_noun(&mut rng);
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w}");
            assert!(seen.insert(w.clone()), "duplicate {w}");
        }
    }

    #[test]
    fn coined_nouns_pluralize_regularly() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut coiner = NameCoiner::new();
        for _ in 0..200 {
            let w = coiner.common_noun(&mut rng);
            let p = pluralize(&w);
            assert!(
                is_plural(&p),
                "pluralized coined noun {p} not detected as plural"
            );
        }
    }

    #[test]
    fn adjectives_carry_adjective_suffix() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut coiner = NameCoiner::new();
        for _ in 0..100 {
            let w = coiner.adjective(&mut rng);
            assert!(ADJ_SUFFIXES.iter().any(|s| w.ends_with(s)), "{w}");
        }
    }

    #[test]
    fn proper_names_are_capitalized() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut coiner = NameCoiner::new();
        for _ in 0..100 {
            let name = coiner.proper_name(&mut rng, 2);
            for word in name.split(' ') {
                assert!(word.chars().next().unwrap().is_uppercase(), "{name}");
            }
        }
    }

    #[test]
    fn conjunction_names_contain_and() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut coiner = NameCoiner::new();
        let n = coiner.conjunction_name(&mut rng);
        assert!(n.contains(" and "), "{n}");
    }

    #[test]
    fn titles_are_not_noun_phrases() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut coiner = NameCoiner::new();
        let t = coiner.title_name(&mut rng);
        assert!(t.split(' ').count() >= 3, "{t}");
    }

    #[test]
    fn reserve_prevents_collision() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut coiner = NameCoiner::new();
        coiner.reserve("Testname");
        for _ in 0..200 {
            assert_ne!(coiner.proper_name(&mut rng, 1).to_lowercase(), "testname");
        }
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let gen = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut c = NameCoiner::new();
            (0..20).map(|_| c.common_noun(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(gen(11), gen(11));
        assert_ne!(gen(11), gen(12));
    }
}
