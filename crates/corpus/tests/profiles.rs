//! Tests for the corpus profiles and generator knobs.

use probase_corpus::{generate, CorpusConfig, CorpusGenerator, WorldConfig};

fn world() -> probase_corpus::World {
    generate(&WorldConfig::small(81))
}

#[test]
fn profiles_respect_quality_ranges() {
    let w = world();
    let enc = CorpusGenerator::new(&w, CorpusConfig::encyclopedia(81, 800)).generate_all();
    let forum = CorpusGenerator::new(&w, CorpusConfig::forum(81, 800)).generate_all();
    assert!(enc.iter().all(|r| r.meta.source_quality >= 0.7));
    assert!(forum.iter().all(|r| r.meta.source_quality <= 0.6));
}

#[test]
fn forum_is_noisier_than_encyclopedia() {
    let w = world();
    let corrupt_fraction = |cfg: CorpusConfig| -> f64 {
        let recs = CorpusGenerator::new(&w, cfg).generate_all();
        let hearst: Vec<_> = recs
            .iter()
            .filter(|r| r.truth.pattern.is_some_and(|p| p.hearst_index().is_some()))
            .collect();
        let bad = hearst
            .iter()
            .filter(|r| r.truth.items.iter().any(|t| !t.is_valid()))
            .count();
        bad as f64 / hearst.len().max(1) as f64
    };
    let enc = corrupt_fraction(CorpusConfig::encyclopedia(82, 4_000));
    let forum = corrupt_fraction(CorpusConfig::forum(82, 4_000));
    assert!(
        forum > enc * 2.0,
        "forum {forum:.4} vs encyclopedia {enc:.4}"
    );
}

#[test]
fn zero_noise_config_produces_only_patterns() {
    let w = world();
    let cfg = CorpusConfig {
        seed: 83,
        sentences: 500,
        noise_rate: 0.0,
        partof_rate: 0.0,
        ..CorpusConfig::default()
    };
    let recs = CorpusGenerator::new(&w, cfg).generate_all();
    assert!(recs
        .iter()
        .all(|r| r.truth.pattern.is_some_and(|p| p.hearst_index().is_some())));
}

#[test]
fn list_bounds_are_respected() {
    let w = world();
    let cfg = CorpusConfig {
        seed: 84,
        sentences: 1_000,
        min_list: 2,
        max_list: 3,
        subconcept_item_rate: 0.0,
        list_drift_rate: 0.0,
        other_than_rate: 0.0,
        corrupt_rate: 0.0,
        noise_rate: 0.0,
        partof_rate: 0.0,
        ..CorpusConfig::default()
    };
    let recs = CorpusGenerator::new(&w, cfg).generate_all();
    for r in &recs {
        let n = r.truth.items.len();
        // Lists may fall short only when the concept has too few instances.
        assert!(n <= 3, "list too long: {n} in {:?}", r.text);
        assert!(n >= 1);
    }
}

#[test]
fn pattern_mix_extremes_pin_the_pattern() {
    use probase_corpus::sentence::PatternKind;
    let w = world();
    let cfg = CorpusConfig {
        seed: 85,
        sentences: 300,
        pattern_mix: [0.0, 0.0, 0.0, 1.0, 0.0, 0.0], // AndOther only
        noise_rate: 0.0,
        partof_rate: 0.0,
        ..CorpusConfig::default()
    };
    let recs = CorpusGenerator::new(&w, cfg).generate_all();
    assert!(recs
        .iter()
        .all(|r| r.truth.pattern == Some(PatternKind::AndOther)));
}

#[test]
fn sentences_always_contain_their_concept_surface() {
    let w = world();
    let recs = CorpusGenerator::new(&w, CorpusConfig::small(86)).generate_all();
    for r in recs
        .iter()
        .filter(|r| r.truth.pattern.is_some_and(|p| p.hearst_index().is_some()))
    {
        let cid = r.truth.concept.expect("hearst sentences name a concept");
        let label = &w.concept(cid).label;
        // The plural surface of the head word must appear in the text.
        let head = label.rsplit(' ').next().unwrap();
        let plural = probase_text::pluralize(head);
        assert!(
            r.text.contains(&plural),
            "sentence {:?} lacks concept surface {plural:?}",
            r.text
        );
    }
}
