//! Property tests for the world generator and corpus simulator.

use probase_corpus::{generate, CorpusConfig, CorpusGenerator, WorldConfig, WorldIndex, Zipf};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any seed yields a structurally valid world.
    #[test]
    fn worlds_always_validate(seed in 0u64..10_000) {
        let w = generate(&WorldConfig { seed, filler_concepts: 60, ..WorldConfig::small(seed) });
        let errors = w.validate();
        prop_assert!(errors.is_empty(), "{errors:?}");
    }

    /// Every Hearst sentence's listed valid items are truly subordinate
    /// per the world index (the generator never lies in its own truth
    /// channel).
    #[test]
    fn truth_channel_is_consistent(seed in 0u64..1_000) {
        let w = generate(&WorldConfig::small(seed));
        let idx = WorldIndex::new(&w);
        let corpus = CorpusGenerator::new(
            &w,
            CorpusConfig { seed, sentences: 300, ..CorpusConfig::default() },
        )
        .generate_all();
        for rec in &corpus {
            let Some(cid) = rec.truth.concept else { continue };
            if rec.truth.pattern.and_then(|p| p.hearst_index()).is_none() {
                continue;
            }
            let label = &w.concept(cid).label;
            for item in rec.truth.items.iter().filter(|t| t.is_valid()) {
                // Strip the plural rendering the generator applies to
                // common nouns by consulting the judge-style check.
                let ok = idx.is_valid_isa(label, &item.surface)
                    || idx.is_valid_isa(label, &probase_text::normalize_concept(&item.surface));
                prop_assert!(ok, "({label}, {}) marked valid but not true", item.surface);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Zipf pmf is a distribution and is non-increasing in rank.
    #[test]
    fn zipf_is_distribution(n in 1usize..300, s in 0.2f64..2.5) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for k in 1..n {
            prop_assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }

    /// Corpus generation is deterministic in (world seed, corpus seed).
    #[test]
    fn corpus_deterministic(seed in 0u64..500) {
        let w = generate(&WorldConfig::small(seed));
        let mk = || {
            CorpusGenerator::new(
                &w,
                CorpusConfig { seed, sentences: 50, ..CorpusConfig::default() },
            )
            .generate_all()
            .into_iter()
            .map(|r| r.text)
            .collect::<Vec<_>>()
        };
        prop_assert_eq!(mk(), mk());
    }
}
