//! Interactive Probase explorer — the reproduction's equivalent of the
//! paper's demo site (research.microsoft.com/probase).
//!
//! ```sh
//! cargo run --release --bin probase-cli              # build a fresh simulation
//! cargo run --release --bin probase-cli -- 60000     # bigger corpus
//! cargo run --release --bin probase-cli -- --load t.pb   # load a snapshot
//! ```
//!
//! Commands:
//! ```text
//! instances <concept> [k]      typical instances by T(i|x)
//! concepts <term> [k]          typical concepts by T(x|i)
//! abstract <t1>; <t2>; ...     conceptualize a term set
//! senses <label>               concept senses and their children
//! ner <free text>              fine-grained entity tagging
//! search <keywords>            taxonomy keyword search (\[9\])
//! stats                        Table 4-style graph statistics
//! dot <label> [path]           GraphViz export of a label's senses
//! save <path>                  write a binary snapshot of the graph
//! help | quit
//! ```

use probase::apps::{tag_entities, NerConfig};
use probase::corpus::{CorpusConfig, WorldConfig};
use probase::prob::ProbaseModel;
use probase::store::{snapshot, GraphStats};
use probase::{ProbaseConfig, Simulation};
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let model = if args.first().map(|a| a == "--load").unwrap_or(false) {
        let path = args.get(1).expect("--load needs a path");
        let bytes = std::fs::read(path).expect("snapshot readable");
        let mut graph = snapshot::from_bytes(&bytes[..]).expect("snapshot decodes");
        graph.rebuild_indexes();
        eprintln!("loaded {} nodes / {} edges from {path}", graph.node_count(), graph.edge_count());
        ProbaseModel::new(graph)
    } else {
        let sentences: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(30_000);
        eprintln!("building Probase over a {sentences}-sentence simulated crawl ...");
        let sim = Simulation::run(
            &WorldConfig::default(),
            &CorpusConfig { sentences, ..CorpusConfig::default() },
            &ProbaseConfig::paper(),
        );
        eprintln!(
            "ready: {} pairs, {} concepts",
            sim.probase.extraction.knowledge.pair_count(),
            sim.probase.graph_stats.concepts
        );
        sim.probase.model
    };

    let stdin = std::io::stdin();
    print!("probase> ");
    std::io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let line = line.trim();
        if !line.is_empty() && !dispatch(&model, line) {
            break;
        }
        print!("probase> ");
        std::io::stdout().flush().ok();
    }
}

/// Handle one command; returns false to quit.
fn dispatch(model: &ProbaseModel, line: &str) -> bool {
    let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
    match cmd {
        "quit" | "exit" => return false,
        "help" => {
            println!(
                "instances <concept> [k] | concepts <term> [k] | abstract <t1>; <t2>; ... |\n\
                 senses <label> | ner <text> | search <keywords> | stats |\n\
                 dot <label> [path] | save <path> | quit"
            );
        }
        "instances" => {
            let (term, k) = split_k(rest, 10);
            for (i, t) in model.typical_instances(&term, k) {
                println!("  {t:.4}  {i}");
            }
        }
        "concepts" => {
            let (term, k) = split_k(rest, 10);
            for (c, t) in model.typical_concepts(&term, k) {
                println!("  {t:.4}  {c}");
            }
        }
        "abstract" => {
            let terms: Vec<&str> = rest.split(';').map(str::trim).filter(|t| !t.is_empty()).collect();
            for (c, s) in model.conceptualize(&terms, 8) {
                println!("  {s:.4}  {c}");
            }
        }
        "senses" => {
            let senses = model.senses(rest.trim());
            println!("  {} concept sense(s)", senses.len());
            let g = model.graph();
            for s in senses {
                let kids: Vec<&str> = g.children(s).take(8).map(|(c, _)| g.label(c)).collect();
                println!("  {} -> {}", g.display(s), kids.join(", "));
            }
        }
        "ner" => {
            for tag in tag_entities(model, rest, &NerConfig::default()) {
                println!("  {} -> {} ({:.2})", tag.surface, tag.concept, tag.confidence);
            }
        }
        "search" => {
            let idx = probase::apps::TaxonomyIndex::build(model);
            let keywords: Vec<&str> = rest.split_whitespace().collect();
            for hit in idx.search(&keywords, 8) {
                println!(
                    "  [{}] {:<24} via {}",
                    hit.covered,
                    hit.concept,
                    hit.witnesses.join(", ")
                );
            }
        }
        "dot" => {
            let mut parts = rest.split_whitespace();
            let label = parts.next().unwrap_or("");
            let roots = model.senses(label);
            if roots.is_empty() {
                println!("  unknown concept {label:?}");
            } else {
                let dot = probase::store::to_dot(
                    model.graph(),
                    &roots,
                    &probase::store::DotOptions::default(),
                );
                match parts.next() {
                    Some(path) => match std::fs::write(path, &dot) {
                        Ok(()) => println!("  wrote {} bytes to {path}", dot.len()),
                        Err(e) => println!("  error: {e}"),
                    },
                    None => println!("{dot}"),
                }
            }
        }
        "stats" => {
            println!("  {:#?}", GraphStats::compute(model.graph()));
        }
        "save" => {
            let path = rest.trim();
            if path.is_empty() {
                println!("  usage: save <path>");
            } else {
                let bytes = snapshot::to_bytes(model.graph());
                match std::fs::write(path, &bytes) {
                    Ok(()) => println!("  wrote {} bytes to {path}", bytes.len()),
                    Err(e) => println!("  error: {e}"),
                }
            }
        }
        other => println!("  unknown command {other:?}; try 'help'"),
    }
    true
}

fn split_k(rest: &str, default_k: usize) -> (String, usize) {
    match rest.rsplit_once(' ') {
        Some((term, k)) => match k.parse::<usize>() {
            Ok(k) => (term.trim().to_string(), k),
            Err(_) => (rest.trim().to_string(), default_k),
        },
        None => (rest.trim().to_string(), default_k),
    }
}
