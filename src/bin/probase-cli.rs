//! Interactive Probase explorer and server launcher — the reproduction's
//! equivalent of the paper's demo site (research.microsoft.com/probase)
//! plus the serving front end of §5.3.
//!
//! ```sh
//! cargo run --release --bin probase-cli                    # explorer REPL
//! cargo run --release --bin probase-cli -- --sentences 60000
//! cargo run --release --bin probase-cli -- --load t.pb     # load a snapshot
//! cargo run --release --bin probase-cli -- serve           # TCP server
//! cargo run --release --bin probase-cli -- serve --addr 127.0.0.1:7878
//! cargo run --release --bin probase-cli -- serve --shards 4   # sharded
//! cargo run --release --bin probase-cli -- route \
//!     --shard-addrs 10.0.0.1:7878,10.0.0.2:7878           # router only
//! ```
//!
//! REPL commands:
//! ```text
//! instances <concept> [k]      typical instances by T(i|x)
//! concepts <term> [k]          typical concepts by T(x|i)
//! abstract <t1>; <t2>; ...     conceptualize a term set
//! senses <label>               concept senses and their children
//! ner <free text>              fine-grained entity tagging
//! search <keywords>            taxonomy keyword search (\[9\])
//! stats                        Table 4-style graph statistics
//! dot <label> [path]           GraphViz export of a label's senses
//! save <path>                  write a binary snapshot of the graph
//! help | quit
//! ```

use probase::apps::{tag_entities, NerConfig};
use probase::corpus::{CorpusConfig, WorldConfig};
use probase::prob::ProbaseModel;
use probase::store::{
    shard_dir, snapshot, sniff_format, ConceptGraph, GraphHandle, GraphStats, PackedGraph,
    SharedStore, SnapshotFormat,
};
use probase::{ProbaseConfig, Simulation};
use probase_router::{partition, Router, RouterConfig, RouterServer, RoutingTable};
use probase_serve::{DurabilityConfig, ServeConfig, Server, WalSync};
use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
Usage: probase-cli [OPTIONS] [SENTENCES]
       probase-cli serve [OPTIONS]
       probase-cli route --shard-addrs A,B,... [OPTIONS]

Modes:
  (default)             interactive explorer REPL
  serve                 start the probase-serve TCP server
  route                 start only the shard router, over already-running
                        shard servers

Options (both modes):
  --load <PATH>         load a binary snapshot instead of simulating
  --sentences <N>       simulated crawl size (default 30000)
  --metrics-out <PATH>  write the pipeline metrics report (JSON) to PATH
  -h, --help            print this help

Options (serve only):
  --addr <HOST:PORT>    bind address (default 127.0.0.1:7878)
  --workers <N>         worker pool size (default 4)
  --queue <N>           bounded request queue capacity (default 1024)
  --cache <N>           response cache entries (default 4096)
  --deadline-ms <N>     per-request queue deadline (default 2000)
  --snapshot-dir <DIR>  durable write path: WAL + checkpoints in DIR,
                        crash recovery at startup, sandboxed snapshot-load
  --wal-sync <MODE>     fsync policy: always | batch:<N> | os
                        (default always; needs --snapshot-dir)
  --rebuild-writes <N>  background rebuild after N writes, 0 = off
                        (default 1024; needs --snapshot-dir)
  --rebuild-secs <N>    background rebuild every N seconds, 0 = off
                        (default 60; needs --snapshot-dir)
  --shards <N>          split the taxonomy into N component-closed shards,
                        run one serve stack per shard on loopback, and
                        front them with the router on --addr (default 1 =
                        single-node, exactly the historical behavior)
  --replicas <R>        total copies per shard (default 1 = primary only).
                        With R >= 2 each shard gets R-1 replicas fed by
                        synchronous op shipping from the primary; router
                        hedges rotate onto them, so a dead primary costs
                        reads one hedge interval instead of availability

Options (route only):
  --shard-addrs <LIST>  comma-separated shard server addresses, in shard
                        order (required)
  --addr <HOST:PORT>    router bind address (default 127.0.0.1:7878)
  --routing-table <P>   JSON routing table written by `serve --shards`
                        (default: rebuild the table by querying the shards'
                        label inventories at startup — survives migrations
                        that would invalidate a stale table file)
  --deadline-ms <N>     per-request fan-out deadline (default 2000)
";

#[derive(Debug, PartialEq)]
struct CliArgs {
    serve: bool,
    route: bool,
    load: Option<String>,
    sentences: usize,
    metrics_out: Option<String>,
    addr: String,
    workers: usize,
    queue: usize,
    cache: usize,
    deadline_ms: u64,
    snapshot_dir: Option<String>,
    wal_sync: WalSync,
    rebuild_writes: u64,
    rebuild_secs: u64,
    shards: usize,
    replicas: usize,
    shard_addrs: Vec<String>,
    routing_table: Option<String>,
}

impl Default for CliArgs {
    fn default() -> Self {
        let d = ServeConfig::default();
        Self {
            serve: false,
            route: false,
            load: None,
            sentences: 30_000,
            metrics_out: None,
            addr: d.addr,
            workers: d.workers,
            queue: d.queue_capacity,
            cache: d.cache_capacity,
            deadline_ms: d.deadline.as_millis() as u64,
            snapshot_dir: None,
            wal_sync: WalSync::Always,
            rebuild_writes: 1024,
            rebuild_secs: 60,
            shards: 1,
            replicas: 1,
            shard_addrs: Vec::new(),
            routing_table: None,
        }
    }
}

/// Parse argv (no binary name). `Err` carries the message to print
/// before the usage text; `Ok(None)` means `--help` was requested.
fn parse_args(argv: &[String]) -> Result<Option<CliArgs>, String> {
    let mut args = CliArgs::default();
    let mut it = argv.iter().peekable();
    match it.peek().map(|a| a.as_str()) {
        Some("serve") => {
            args.serve = true;
            it.next();
        }
        Some("route") => {
            args.route = true;
            it.next();
        }
        _ => {}
    }
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--load" => args.load = Some(take("--load")?.clone()),
            "--metrics-out" => args.metrics_out = Some(take("--metrics-out")?.clone()),
            "--sentences" => {
                let v = take("--sentences")?;
                args.sentences = v
                    .parse()
                    .map_err(|_| format!("--sentences: not a number: {v:?}"))?;
            }
            "--addr" if args.serve || args.route => args.addr = take("--addr")?.clone(),
            "--shards" if args.serve => {
                let v = take("--shards")?;
                args.shards = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--shards: need a positive number, got {v:?}"))?;
            }
            "--replicas" if args.serve => {
                let v = take("--replicas")?;
                args.replicas = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--replicas: need a positive number, got {v:?}"))?;
            }
            "--shard-addrs" if args.route => {
                let v = take("--shard-addrs")?;
                args.shard_addrs = v
                    .split(',')
                    .map(str::trim)
                    .filter(|a| !a.is_empty())
                    .map(str::to_string)
                    .collect();
                if args.shard_addrs.is_empty() {
                    return Err("--shard-addrs: need at least one address".to_string());
                }
            }
            "--routing-table" if args.route => {
                args.routing_table = Some(take("--routing-table")?.clone());
            }
            "--workers" if args.serve => {
                let v = take("--workers")?;
                args.workers = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--workers: need a positive number, got {v:?}"))?;
            }
            "--queue" if args.serve => {
                let v = take("--queue")?;
                args.queue = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--queue: need a positive number, got {v:?}"))?;
            }
            "--cache" if args.serve => {
                let v = take("--cache")?;
                args.cache = v
                    .parse()
                    .map_err(|_| format!("--cache: not a number: {v:?}"))?;
            }
            "--deadline-ms" if args.serve || args.route => {
                let v = take("--deadline-ms")?;
                args.deadline_ms = v
                    .parse()
                    .map_err(|_| format!("--deadline-ms: not a number: {v:?}"))?;
            }
            "--snapshot-dir" if args.serve => {
                args.snapshot_dir = Some(take("--snapshot-dir")?.clone());
            }
            "--wal-sync" if args.serve => {
                let v = take("--wal-sync")?;
                args.wal_sync = WalSync::parse(v).map_err(|e| format!("--wal-sync: {e}"))?;
            }
            "--rebuild-writes" if args.serve => {
                let v = take("--rebuild-writes")?;
                args.rebuild_writes = v
                    .parse()
                    .map_err(|_| format!("--rebuild-writes: not a number: {v:?}"))?;
            }
            "--rebuild-secs" if args.serve => {
                let v = take("--rebuild-secs")?;
                args.rebuild_secs = v
                    .parse()
                    .map_err(|_| format!("--rebuild-secs: not a number: {v:?}"))?;
            }
            positional if !positional.starts_with('-') && !args.serve && !args.route => {
                // Back-compat: `probase-cli 60000`.
                args.sentences = positional
                    .parse()
                    .map_err(|_| format!("unexpected argument {positional:?}"))?;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if args.load.is_some() && argv.iter().any(|a| a == "--sentences") {
        return Err("--load and --sentences are mutually exclusive".to_string());
    }
    if args.snapshot_dir.is_none() {
        for flag in ["--wal-sync", "--rebuild-writes", "--rebuild-secs"] {
            if argv.iter().any(|a| a == flag) {
                return Err(format!("{flag} needs --snapshot-dir"));
            }
        }
    }
    if args.route {
        if args.shard_addrs.is_empty() {
            return Err("route mode needs --shard-addrs".to_string());
        }
        for flag in ["--load", "--sentences"] {
            if argv.iter().any(|a| a == flag) {
                return Err(format!("{flag} makes no sense in route mode"));
            }
        }
    }
    Ok(Some(args))
}

fn load_graph(args: &CliArgs) -> Result<GraphHandle, String> {
    match &args.load {
        Some(path) => {
            let bytes =
                std::fs::read(path).map_err(|e| format!("cannot read snapshot {path:?}: {e}"))?;
            // Packed (v2) snapshots mmap straight into serving shape;
            // legacy (v1) snapshots decode edge by edge as before.
            let handle = match sniff_format(&bytes) {
                Some(SnapshotFormat::Packed) => {
                    drop(bytes);
                    let packed = PackedGraph::open(std::path::Path::new(path))
                        .map_err(|e| format!("cannot open packed snapshot {path:?}: {e}"))?;
                    GraphHandle::Packed(packed)
                }
                _ => {
                    let mut graph = snapshot::from_bytes(&bytes[..])
                        .map_err(|e| format!("cannot decode snapshot {path:?}: {e}"))?;
                    graph.rebuild_indexes();
                    GraphHandle::Mutable(graph)
                }
            };
            eprintln!(
                "loaded {} nodes / {} edges from {path}{}",
                handle.node_count(),
                handle.edge_count(),
                if handle.is_packed() {
                    " (zero-copy mmap)"
                } else {
                    ""
                }
            );
            Ok(handle)
        }
        None => {
            let sentences = args.sentences;
            eprintln!("building Probase over a {sentences}-sentence simulated crawl ...");
            let sim = Simulation::run(
                &WorldConfig::default(),
                &CorpusConfig {
                    sentences,
                    ..CorpusConfig::default()
                },
                &ProbaseConfig::paper(),
            );
            eprintln!(
                "ready: {} pairs, {} concepts",
                sim.probase.extraction.knowledge.pair_count(),
                sim.probase.graph_stats.concepts
            );
            Ok(sim.probase.model.graph().clone())
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    if args.route {
        run_route(&args);
    }
    let graph = match load_graph(&args) {
        Ok(g) => g,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    };
    if args.serve && (args.shards > 1 || args.replicas > 1) {
        run_sharded_serve(&args, graph);
    }
    // Host the graph in the shared store in both modes so `store.*`
    // metrics (snapshot swaps, query counts) appear in the report.
    let store = SharedStore::new(graph);

    if args.serve {
        let config = ServeConfig {
            addr: args.addr.clone(),
            workers: args.workers,
            queue_capacity: args.queue,
            cache_capacity: args.cache,
            cache_shards: 16,
            deadline: Duration::from_millis(args.deadline_ms),
            durability: args.snapshot_dir.as_ref().map(|dir| DurabilityConfig {
                snapshot_dir: dir.into(),
                wal_sync: args.wal_sync,
                rebuild_after_writes: args.rebuild_writes,
                rebuild_interval: match args.rebuild_secs {
                    0 => None,
                    secs => Some(Duration::from_secs(secs)),
                },
            }),
            ..ServeConfig::default()
        };
        // Serve metrics join the same global registry the pipeline
        // recorded into, so the report covers build + serving.
        let server =
            match Server::start_with_registry(store, &config, probase::obs::global().clone()) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot bind {}: {e}", config.addr);
                    std::process::exit(1);
                }
            };
        write_metrics(&args);
        eprintln!(
            "probase-serve listening on {} ({} workers, queue {}, cache {} entries)",
            server.local_addr(),
            config.workers,
            config.queue_capacity,
            config.cache_capacity
        );
        if let Some(dir) = &args.snapshot_dir {
            eprintln!(
                "durable writes: WAL + checkpoints in {dir} ({:?} sync)",
                args.wal_sync
            );
        }
        let bound = server.local_addr();
        eprintln!(
            "try: printf '{{\"endpoint\":\"stats\"}}\\n' | nc {} {}",
            bound.ip(),
            bound.port()
        );
        // Serve until the process is killed; the Drop impl would drain,
        // but there is nothing to drain into on SIGKILL anyway.
        loop {
            std::thread::park();
        }
    }

    let model = ProbaseModel::new(store.clone_graph());
    write_metrics(&args);
    repl(&model);
}

/// One shard-fleet member's serve configuration (primaries and
/// replicas differ only in directory and in who ships to whom).
fn fleet_member_config(
    args: &CliArgs,
    dir: Option<std::path::PathBuf>,
    replica_addrs: Vec<std::net::SocketAddr>,
) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: args.workers,
        queue_capacity: args.queue,
        cache_capacity: args.cache,
        cache_shards: 16,
        deadline: Duration::from_millis(args.deadline_ms),
        durability: dir.map(|snapshot_dir| DurabilityConfig {
            snapshot_dir,
            wal_sync: args.wal_sync,
            rebuild_after_writes: args.rebuild_writes,
            rebuild_interval: match args.rebuild_secs {
                0 => None,
                secs => Some(Duration::from_secs(secs)),
            },
        }),
        replica_addrs,
        ..ServeConfig::default()
    }
}

/// `serve --shards N [--replicas R]`: split Γ into component-closed
/// shards, run one full serve stack per shard (plus R-1 op-shipped
/// replicas each) on loopback, and front the fleet with the router on
/// the public address. Never returns.
fn run_sharded_serve(args: &CliArgs, graph: GraphHandle) -> ! {
    let n = args.shards;
    eprintln!(
        "partitioning {} nodes / {} edges into {n} shards ...",
        graph.node_count(),
        graph.edge_count()
    );
    let p = partition(&graph, n);
    drop(graph);

    let mut servers = Vec::with_capacity(n);
    let mut replica_servers = Vec::new();
    let mut shard_addrs = Vec::with_capacity(n);
    let mut replica_groups: Vec<Vec<String>> = Vec::with_capacity(n);
    for (i, shard_graph) in p.shards.into_iter().enumerate() {
        let shard_root = args
            .snapshot_dir
            .as_ref()
            .map(|root| shard_dir(std::path::Path::new(root), i));
        // Replicas come up first so the primary knows where to ship.
        let mut replica_addrs = Vec::new();
        for j in 1..args.replicas {
            let dir = shard_root.as_ref().map(|d| d.join(format!("replica-{j}")));
            let config = fleet_member_config(args, dir, Vec::new());
            if let Some(d) = &config.durability {
                if let Err(e) = std::fs::create_dir_all(&d.snapshot_dir) {
                    eprintln!("error: cannot create {:?}: {e}", d.snapshot_dir);
                    std::process::exit(1);
                }
            }
            let server = match Server::start(SharedStore::new(shard_graph.clone()), &config) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot start shard {i} replica {j}: {e}");
                    std::process::exit(1);
                }
            };
            replica_addrs.push(server.local_addr());
            replica_servers.push(server);
        }
        replica_groups.push(replica_addrs.iter().map(|a| a.to_string()).collect());
        let config = fleet_member_config(args, shard_root, replica_addrs);
        if let Some(d) = &config.durability {
            if let Err(e) = std::fs::create_dir_all(&d.snapshot_dir) {
                eprintln!("error: cannot create {:?}: {e}", d.snapshot_dir);
                std::process::exit(1);
            }
        }
        // Each shard keeps a private registry; the router records the
        // fleet-level `router.*` metrics into the global one.
        let server = match Server::start(SharedStore::new(shard_graph), &config) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot start shard {i}: {e}");
                std::process::exit(1);
            }
        };
        shard_addrs.push(server.local_addr().to_string());
        servers.push(server);
    }

    // Heal any migration a crash interrupted mid-protocol: a component
    // imported on one shard but not yet drained from another would
    // otherwise serve from both. Must run before the routing table is
    // derived so the table reflects the healed placement.
    if n > 1 {
        let states: Vec<_> = servers.iter().map(|s| s.state()).collect();
        match probase_router::reconcile_fleet(&states) {
            Ok(report) if report.components_dropped > 0 => eprintln!(
                "reconciled {} interrupted migration(s) across {} duplicated label(s)",
                report.components_dropped, report.duplicate_labels
            ),
            Ok(_) => {}
            Err(e) => eprintln!("warning: migration reconciliation failed: {e}"),
        }
    }

    // Rebuild the routing table from what the shards actually serve:
    // with a durable dir, crash recovery may have replayed WAL writes
    // (including migrations) on top of the fresh partition, and those
    // labels must route to the shard that owns them.
    let shard_graphs: Vec<ConceptGraph> = servers
        .iter()
        .map(|s| s.state().store().clone_graph())
        .collect();
    let table = RoutingTable::from_shard_graphs(&shard_graphs);
    drop(shard_graphs);
    if let Some(root) = &args.snapshot_dir {
        let path = std::path::Path::new(root).join("routing-table.json");
        match table.save(&path) {
            Ok(()) => eprintln!("wrote routing table to {}", path.display()),
            Err(e) => eprintln!("warning: cannot write routing table: {e}"),
        }
    }

    let config = RouterConfig {
        shard_addrs: shard_addrs.clone(),
        replica_addrs: if args.replicas > 1 {
            replica_groups
        } else {
            Vec::new()
        },
        deadline: Duration::from_millis(args.deadline_ms),
        snapshot_root: args.snapshot_dir.as_ref().map(Into::into),
        ..RouterConfig::default()
    };
    let router = match Router::new(config, table, probase::obs::global()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let front = match RouterServer::start(Arc::new(router), &args.addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    write_metrics(args);
    eprintln!(
        "probase-router listening on {} over {n} shards: {}",
        front.local_addr(),
        shard_addrs.join(", ")
    );
    if args.replicas > 1 {
        eprintln!(
            "replication: {} op-shipped replica(s) per shard; read hedges fail over",
            args.replicas - 1
        );
    }
    if let Some(dir) = &args.snapshot_dir {
        eprintln!("durable writes: per-shard WAL + checkpoints under {dir}/shard-<i>");
    }
    // Shard servers, replicas, and the router stay alive until the
    // process dies.
    let _keep_alive = replica_servers;
    loop {
        std::thread::park();
    }
}

/// `route`: front already-running shard servers with a router. Never
/// returns.
fn run_route(args: &CliArgs) -> ! {
    let table = match &args.routing_table {
        Some(path) => match RoutingTable::load(std::path::Path::new(path)) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot load routing table {path:?}: {e}");
                std::process::exit(1);
            }
        },
        None => RoutingTable::new(args.shard_addrs.len()),
    };
    let rebuild = args.routing_table.is_none();
    let config = RouterConfig {
        shard_addrs: args.shard_addrs.clone(),
        deadline: Duration::from_millis(args.deadline_ms),
        snapshot_root: None,
        ..RouterConfig::default()
    };
    let router = match Router::new(config, table, probase::obs::global()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if rebuild {
        // No table file: derive placement from the live shards' label
        // inventories. Migrations retire old table files, so asking the
        // fleet beats trusting a stale snapshot of it; with unreachable
        // shards we fall back to pure hash placement and the `moved`
        // redirects correct routes lazily.
        match router.rebuild_table_from_shards() {
            Ok(exceptions) => eprintln!(
                "rebuilt routing table from {} shard(s): {exceptions} exception(s)",
                args.shard_addrs.len()
            ),
            Err(e) => {
                eprintln!("warning: cannot rebuild routing table ({e}); using label-hash placement")
            }
        }
    }
    let front = match RouterServer::start(Arc::new(router), &args.addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    write_metrics(args);
    eprintln!(
        "probase-router listening on {} over {} shards: {}",
        front.local_addr(),
        args.shard_addrs.len(),
        args.shard_addrs.join(", ")
    );
    loop {
        std::thread::park();
    }
}

/// Snapshot the process-global metric registry to `--metrics-out`, if set.
fn write_metrics(args: &CliArgs) {
    let Some(path) = &args.metrics_out else {
        return;
    };
    let report = probase::obs::global().snapshot().to_string();
    match std::fs::write(path, &report) {
        Ok(()) => eprintln!("wrote metrics report ({} bytes) to {path}", report.len()),
        Err(e) => {
            eprintln!("error: cannot write metrics to {path:?}: {e}");
            std::process::exit(1);
        }
    }
}

fn repl(model: &ProbaseModel) {
    let stdin = std::io::stdin();
    print!("probase> ");
    std::io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let line = line.trim();
        if !line.is_empty() && !dispatch(model, line) {
            break;
        }
        print!("probase> ");
        std::io::stdout().flush().ok();
    }
}

/// Handle one command; returns false to quit.
fn dispatch(model: &ProbaseModel, line: &str) -> bool {
    let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
    match cmd {
        "quit" | "exit" => return false,
        "help" => {
            println!(
                "instances <concept> [k] | concepts <term> [k] | abstract <t1>; <t2>; ... |\n\
                 senses <label> | ner <text> | search <keywords> | stats |\n\
                 dot <label> [path] | save <path> | quit"
            );
        }
        "instances" => {
            let (term, k) = split_k(rest, 10);
            for (i, t) in model.typical_instances(&term, k) {
                println!("  {t:.4}  {i}");
            }
        }
        "concepts" => {
            let (term, k) = split_k(rest, 10);
            for (c, t) in model.typical_concepts(&term, k) {
                println!("  {t:.4}  {c}");
            }
        }
        "abstract" => {
            let terms: Vec<&str> = rest
                .split(';')
                .map(str::trim)
                .filter(|t| !t.is_empty())
                .collect();
            for (c, s) in model.conceptualize(&terms, 8) {
                println!("  {s:.4}  {c}");
            }
        }
        "senses" => {
            let senses = model.senses(rest.trim());
            println!("  {} concept sense(s)", senses.len());
            let g = model.graph();
            for s in senses {
                let kids: Vec<&str> = g.children(s).take(8).map(|(c, _)| g.label(c)).collect();
                println!("  {} -> {}", g.display(s), kids.join(", "));
            }
        }
        "ner" => {
            for tag in tag_entities(model, rest, &NerConfig::default()) {
                println!(
                    "  {} -> {} ({:.2})",
                    tag.surface, tag.concept, tag.confidence
                );
            }
        }
        "search" => {
            let idx = probase::apps::TaxonomyIndex::build(model);
            let keywords: Vec<&str> = rest.split_whitespace().collect();
            for hit in idx.search(&keywords, 8) {
                println!(
                    "  [{}] {:<24} via {}",
                    hit.covered,
                    hit.concept,
                    hit.witnesses.join(", ")
                );
            }
        }
        "dot" => {
            let mut parts = rest.split_whitespace();
            let label = parts.next().unwrap_or("");
            let roots = model.senses(label);
            if roots.is_empty() {
                println!("  unknown concept {label:?}");
            } else {
                let dot = probase::store::to_dot(
                    model.graph(),
                    &roots,
                    &probase::store::DotOptions::default(),
                );
                match parts.next() {
                    Some(path) => match std::fs::write(path, &dot) {
                        Ok(()) => println!("  wrote {} bytes to {path}", dot.len()),
                        Err(e) => println!("  error: {e}"),
                    },
                    None => println!("{dot}"),
                }
            }
        }
        "stats" => {
            println!("  {:#?}", GraphStats::compute(model.graph()));
        }
        "save" => {
            let path = rest.trim();
            if path.is_empty() {
                println!("  usage: save <path>");
            } else {
                match model.graph().to_packed_bytes() {
                    Ok(bytes) => match std::fs::write(path, &bytes) {
                        Ok(()) => println!("  wrote {} packed bytes to {path}", bytes.len()),
                        Err(e) => println!("  error: {e}"),
                    },
                    Err(e) => println!("  error: cannot encode snapshot: {e}"),
                }
            }
        }
        other => println!("  unknown command {other:?}; try 'help'"),
    }
    true
}

fn split_k(rest: &str, default_k: usize) -> (String, usize) {
    match rest.rsplit_once(' ') {
        Some((term, k)) => match k.parse::<usize>() {
            Ok(k) => (term.trim().to_string(), k),
            Err(_) => (rest.trim().to_string(), default_k),
        },
        None => (rest.trim().to_string(), default_k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Option<CliArgs>, String> {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn default_is_repl() {
        let args = parse(&[]).unwrap().unwrap();
        assert!(!args.serve);
        assert_eq!(args.sentences, 30_000);
        assert_eq!(args.load, None);
    }

    #[test]
    fn positional_sentences_backcompat() {
        let args = parse(&["60000"]).unwrap().unwrap();
        assert_eq!(args.sentences, 60_000);
    }

    #[test]
    fn load_flag() {
        let args = parse(&["--load", "t.pb"]).unwrap().unwrap();
        assert_eq!(args.load.as_deref(), Some("t.pb"));
    }

    #[test]
    fn serve_mode_with_options() {
        let args = parse(&[
            "serve",
            "--addr",
            "0.0.0.0:9000",
            "--workers",
            "8",
            "--queue",
            "64",
            "--cache",
            "128",
            "--deadline-ms",
            "500",
            "--load",
            "x.pb",
        ])
        .unwrap()
        .unwrap();
        assert!(args.serve);
        assert_eq!(args.addr, "0.0.0.0:9000");
        assert_eq!(args.workers, 8);
        assert_eq!(args.queue, 64);
        assert_eq!(args.cache, 128);
        assert_eq!(args.deadline_ms, 500);
        assert_eq!(args.load.as_deref(), Some("x.pb"));
    }

    #[test]
    fn metrics_out_flag_in_both_modes() {
        let args = parse(&["--metrics-out", "m.json"]).unwrap().unwrap();
        assert_eq!(args.metrics_out.as_deref(), Some("m.json"));
        let args = parse(&["serve", "--metrics-out", "m.json"])
            .unwrap()
            .unwrap();
        assert!(args.serve);
        assert_eq!(args.metrics_out.as_deref(), Some("m.json"));
    }

    #[test]
    fn durability_flags_parse() {
        let args = parse(&[
            "serve",
            "--snapshot-dir",
            "/var/probase",
            "--wal-sync",
            "batch:16",
            "--rebuild-writes",
            "512",
            "--rebuild-secs",
            "0",
        ])
        .unwrap()
        .unwrap();
        assert_eq!(args.snapshot_dir.as_deref(), Some("/var/probase"));
        assert_eq!(args.wal_sync, WalSync::EveryN(16));
        assert_eq!(args.rebuild_writes, 512);
        assert_eq!(args.rebuild_secs, 0);
        // Defaults when only the directory is given.
        let args = parse(&["serve", "--snapshot-dir", "d"]).unwrap().unwrap();
        assert_eq!(args.wal_sync, WalSync::Always);
        assert_eq!(args.rebuild_writes, 1024);
        assert_eq!(args.rebuild_secs, 60);
    }

    #[test]
    fn durability_flag_errors() {
        for bad in [
            // tuning flags without the directory they tune
            vec!["serve", "--wal-sync", "always"],
            vec!["serve", "--rebuild-writes", "5"],
            vec!["serve", "--rebuild-secs", "5"],
            // bad values
            vec!["serve", "--snapshot-dir", "d", "--wal-sync", "sometimes"],
            vec!["serve", "--snapshot-dir", "d", "--rebuild-writes", "many"],
            vec!["serve", "--snapshot-dir"],
            // serve-only flag outside serve mode
            vec!["--snapshot-dir", "d"],
        ] {
            assert!(parse(&bad).is_err(), "{bad:?} should be an error");
        }
    }

    #[test]
    fn shards_flag_parses() {
        let args = parse(&["serve", "--shards", "4"]).unwrap().unwrap();
        assert!(args.serve);
        assert_eq!(args.shards, 4);
        // Default stays single-node.
        let args = parse(&["serve"]).unwrap().unwrap();
        assert_eq!(args.shards, 1);
        for bad in [
            vec!["serve", "--shards", "0"],
            vec!["serve", "--shards", "lots"],
            vec!["--shards", "4"], // serve-only
        ] {
            assert!(parse(&bad).is_err(), "{bad:?} should be an error");
        }
    }

    #[test]
    fn replicas_flag_parses() {
        let args = parse(&["serve", "--shards", "2", "--replicas", "3"])
            .unwrap()
            .unwrap();
        assert_eq!(args.shards, 2);
        assert_eq!(args.replicas, 3);
        // Replication without sharding is valid: one shard, R copies.
        let args = parse(&["serve", "--replicas", "2"]).unwrap().unwrap();
        assert_eq!(args.shards, 1);
        assert_eq!(args.replicas, 2);
        // Default stays a single unreplicated primary.
        let args = parse(&["serve"]).unwrap().unwrap();
        assert_eq!(args.replicas, 1);
        for bad in [
            vec!["serve", "--replicas", "0"],
            vec!["serve", "--replicas", "many"],
            vec!["--replicas", "2"], // serve-only
            vec!["route", "--shard-addrs", "a", "--replicas", "2"],
        ] {
            assert!(parse(&bad).is_err(), "{bad:?} should be an error");
        }
    }

    #[test]
    fn route_mode_parses() {
        let args = parse(&[
            "route",
            "--shard-addrs",
            "10.0.0.1:7878, 10.0.0.2:7878,10.0.0.3:7878",
            "--addr",
            "0.0.0.0:9000",
            "--deadline-ms",
            "750",
            "--routing-table",
            "t.json",
        ])
        .unwrap()
        .unwrap();
        assert!(args.route && !args.serve);
        assert_eq!(
            args.shard_addrs,
            vec!["10.0.0.1:7878", "10.0.0.2:7878", "10.0.0.3:7878"]
        );
        assert_eq!(args.addr, "0.0.0.0:9000");
        assert_eq!(args.deadline_ms, 750);
        assert_eq!(args.routing_table.as_deref(), Some("t.json"));
    }

    #[test]
    fn route_mode_errors() {
        for bad in [
            vec!["route"],                       // missing addrs
            vec!["route", "--shard-addrs", ","], // empty list
            vec!["route", "--shard-addrs", "a", "--load", "x.pb"],
            vec!["route", "--shard-addrs", "a", "--sentences", "5"],
            vec!["--shard-addrs", "a"], // route-only flag
            vec!["serve", "--shard-addrs", "a"],
        ] {
            assert!(parse(&bad).is_err(), "{bad:?} should be an error");
        }
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(parse(&["--help"]).unwrap(), None);
        assert_eq!(parse(&["serve", "-h"]).unwrap(), None);
    }

    #[test]
    fn errors_are_reported_not_panics() {
        for bad in [
            vec!["--load"],
            vec!["--sentences", "many"],
            vec!["--bogus"],
            vec!["serve", "--workers", "0"],
            vec!["serve", "--queue", "-3"],
            vec!["abc"],
            vec!["--load", "a", "--sentences", "5"],
            // serve-only flags outside serve mode
            vec!["--addr", "x"],
        ] {
            assert!(parse(&bad).is_err(), "{bad:?} should be an error");
        }
    }
}
