//! Closed-loop load generator for `probase-serve`.
//!
//! Spawns N worker threads, each with its own connection, issuing a
//! mixed read/write workload against a running server. Keys are drawn
//! with zipfian skew (hot concepts dominate, like real query logs), so
//! the versioned response cache actually gets exercised. At the end it
//! prints per-endpoint p50/p99 latency, overall throughput, and the
//! server's own `stats` dump (cache hit rate, queue metrics).
//!
//! ```sh
//! cargo run --release --bin probase-cli -- serve &
//! cargo run --release --bin probase-loadgen -- --threads 4 --duration-secs 10
//! ```
//!
//! Point it at a shard router instead with `--router-addr`: the same
//! workload runs (the router speaks the identical protocol), and the
//! report additionally splits latency by query class — single-shard
//! routes vs scatter-gather fan-outs — plus a degraded-response count.

use probase_serve::{Client, ClientConfig, ClientError, Json, Request};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "\
Usage: probase-loadgen [OPTIONS]

Options:
  --addr <HOST:PORT>     server address (default 127.0.0.1:7878)
  --router-addr <H:P>    target a shard router instead: same workload, plus
                         per-query-class (single-shard vs scatter-gather)
                         latency and degraded-response reporting
  --read-timeout-ms <N>  socket read timeout per request (default 5000);
                         applies to fresh connections AND reconnects
  --threads <N>          closed-loop workers (default 4)
  --duration-secs <N>    run length (default 10)
  --write-ratio <F>      fraction of add-evidence writes, 0..1 (default 0.05)
  --zipf <S>             zipfian skew exponent (default 1.0)
  --keys <N>             hot-key set size fetched from the server (default 256)
  --seed <N>             RNG seed (default 42)
  -h, --help             print this help
";

#[derive(Debug, Clone)]
struct Args {
    addr: String,
    router: bool,
    read_timeout_ms: u64,
    threads: usize,
    duration: Duration,
    write_ratio: f64,
    zipf: f64,
    keys: usize,
    seed: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            addr: "127.0.0.1:7878".to_string(),
            router: false,
            read_timeout_ms: 5_000,
            threads: 4,
            duration: Duration::from_secs(10),
            write_ratio: 0.05,
            zipf: 1.0,
            keys: 256,
            seed: 42,
        }
    }
}

fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        fn num<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, String> {
            v.parse().map_err(|_| format!("{name}: bad value {v:?}"))
        }
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--addr" => args.addr = take("--addr")?.clone(),
            "--router-addr" => {
                args.addr = take("--router-addr")?.clone();
                args.router = true;
            }
            "--read-timeout-ms" => {
                args.read_timeout_ms = num("--read-timeout-ms", take("--read-timeout-ms")?)?;
            }
            "--threads" => args.threads = num("--threads", take("--threads")?)?,
            "--duration-secs" => {
                args.duration =
                    Duration::from_secs(num("--duration-secs", take("--duration-secs")?)?)
            }
            "--write-ratio" => args.write_ratio = num("--write-ratio", take("--write-ratio")?)?,
            "--zipf" => args.zipf = num("--zipf", take("--zipf")?)?,
            "--keys" => args.keys = num("--keys", take("--keys")?)?,
            "--seed" => args.seed = num("--seed", take("--seed")?)?,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if args.threads == 0 {
        return Err("--threads must be positive".to_string());
    }
    if !(0.0..=1.0).contains(&args.write_ratio) {
        return Err("--write-ratio must be in 0..=1".to_string());
    }
    if argv.iter().any(|a| a == "--addr") && argv.iter().any(|a| a == "--router-addr") {
        return Err("--addr and --router-addr are mutually exclusive".to_string());
    }
    Ok(Some(args))
}

/// Precomputed zipfian CDF over ranks `0..n`: rank i has weight
/// `1/(i+1)^s`. Sampling is a binary search with a uniform draw.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

fn percentile(sorted_micros: &[u64], p: f64) -> u64 {
    if sorted_micros.is_empty() {
        return 0;
    }
    let idx = (p * (sorted_micros.len() - 1) as f64).round() as usize;
    sorted_micros[idx]
}

#[derive(Default)]
struct WorkerStats {
    /// `(endpoint name, latency in µs)` per completed request.
    latencies: Vec<(&'static str, u64)>,
    requests: u64,
    /// Server-side error envelopes (overloaded, deadline, ...).
    server_errors: u64,
    /// Transport/parse failures — must be zero on a healthy run.
    protocol_errors: u64,
    /// Partial-result envelopes from a router with lost shards.
    degraded: u64,
}

/// The transport profile every loadgen connection uses. Built once per
/// worker and reused verbatim on reconnect, so a connection replaced
/// after a transport failure keeps the configured read timeout instead
/// of silently reverting to the blocking default.
fn client_config(args: &Args) -> ClientConfig {
    ClientConfig {
        read_timeout: Some(Duration::from_millis(args.read_timeout_ms.max(1))),
        seed: args.seed,
        ..ClientConfig::default()
    }
}

/// Which side of the router's fan-out decision an endpoint lands on.
/// Must mirror `probase_router::Router`'s classification: label-keyed
/// endpoints route to one shard, everything else scatter-gathers.
fn query_class(endpoint: &str) -> &'static str {
    match endpoint {
        "isa" | "typicality" | "plausibility" | "levels" | "add-evidence" => "single-shard",
        _ => "scatter-gather",
    }
}

/// Labels the loadgen writes under; they never collide with simulated
/// vocabulary, so add-evidence writes can never form a cycle.
fn write_label(thread: usize, n: u64) -> String {
    format!("loadgen-{thread}-{n}")
}

fn pick_request(
    rng: &mut SmallRng,
    zipf: &Zipf,
    concepts: &[String],
    instances: &[String],
    args: &Args,
    thread: usize,
    writes_done: &mut u64,
) -> (&'static str, Request) {
    if rng.gen::<f64>() < args.write_ratio {
        let parent = concepts[zipf.sample(rng)].clone();
        *writes_done += 1;
        return (
            "add-evidence",
            Request::AddEvidence {
                parent,
                child: write_label(thread, *writes_done),
                count: 1,
            },
        );
    }
    let op = rng.gen_range(0..6u32);
    let concept = concepts[zipf.sample(rng)].clone();
    let instance = instances[zipf.sample(rng)].clone();
    match op {
        0 => (
            "isa",
            Request::Isa {
                parent: concept,
                child: instance,
            },
        ),
        1 => (
            "typicality",
            Request::Typicality {
                term: concept,
                direction: probase_serve::Direction::Instances,
                k: 10,
            },
        ),
        2 => (
            "plausibility",
            Request::Plausibility {
                parent: concept,
                child: instance,
            },
        ),
        3 => {
            let extra = instances[zipf.sample(rng)].clone();
            (
                "conceptualize",
                Request::Conceptualize {
                    terms: vec![instance, extra],
                    k: 8,
                },
            )
        }
        4 => (
            "search-rewrite",
            Request::SearchRewrite {
                query: instance,
                k: 5,
            },
        ),
        _ => (
            "levels",
            Request::Levels {
                term: Some(concept),
            },
        ),
    }
}

fn worker(
    thread: usize,
    args: &Args,
    concepts: &[String],
    instances: &[String],
    stop: &AtomicBool,
) -> Result<WorkerStats, ClientError> {
    let config = client_config(args);
    let mut client = Client::connect_with(&args.addr, config.clone())?;
    let mut rng = SmallRng::seed_from_u64(args.seed.wrapping_add(thread as u64 * 7919));
    let zipf = Zipf::new(concepts.len().min(instances.len()), args.zipf);
    let mut stats = WorkerStats::default();
    let mut writes_done = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let (name, req) = pick_request(
            &mut rng,
            &zipf,
            concepts,
            instances,
            args,
            thread,
            &mut writes_done,
        );
        let start = Instant::now();
        match client.call(&req) {
            Ok(envelope) => {
                stats.requests += 1;
                stats
                    .latencies
                    .push((name, start.elapsed().as_micros() as u64));
                if envelope.error.is_some() {
                    stats.server_errors += 1;
                }
                if envelope.degraded {
                    stats.degraded += 1;
                }
            }
            Err(ClientError::Server(..)) => unreachable!("call() never returns Server"),
            Err(_) => {
                stats.protocol_errors += 1;
                // The connection may be dead; reconnect and continue —
                // with the same transport profile, not the default one.
                client = Client::connect_with(&args.addr, config.clone())?;
            }
        }
    }
    Ok(stats)
}

fn fetch_labels(client: &mut Client, kind: &str, k: usize) -> Result<Vec<String>, ClientError> {
    let req = Request::Labels {
        kind: if kind == "concepts" {
            probase_serve::LabelKind::Concepts
        } else {
            probase_serve::LabelKind::Instances
        },
        k,
    };
    let (_, data) = client.call_ok(&req)?;
    let labels = data
        .get("labels")
        .and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    Ok(labels)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };

    // Bootstrap the hot-key sets from the server itself.
    let mut bootstrap = match Client::connect_with(&args.addr, client_config(&args)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot connect to {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    let concepts = fetch_labels(&mut bootstrap, "concepts", args.keys).unwrap_or_default();
    let instances = fetch_labels(&mut bootstrap, "instances", args.keys).unwrap_or_default();
    if concepts.is_empty() || instances.is_empty() {
        eprintln!("error: server has no concepts/instances to query");
        std::process::exit(1);
    }
    eprintln!(
        "loadgen: {} threads for {:?} against {} ({} concepts, {} instances, zipf {}, {:.0}% writes)",
        args.threads,
        args.duration,
        args.addr,
        concepts.len(),
        instances.len(),
        args.zipf,
        args.write_ratio * 100.0
    );

    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let handles: Vec<_> = (0..args.threads)
        .map(|t| {
            let args = args.clone();
            let concepts = concepts.clone();
            let instances = instances.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || worker(t, &args, &concepts, &instances, &stop))
        })
        .collect();
    std::thread::sleep(args.duration);
    stop.store(true, Ordering::Relaxed);

    let mut merged = WorkerStats::default();
    let mut connect_failures = 0u64;
    for h in handles {
        match h.join().expect("worker panicked") {
            Ok(s) => {
                merged.requests += s.requests;
                merged.server_errors += s.server_errors;
                merged.protocol_errors += s.protocol_errors;
                merged.degraded += s.degraded;
                merged.latencies.extend(s.latencies);
            }
            Err(_) => connect_failures += 1,
        }
    }
    let elapsed = started.elapsed().as_secs_f64();

    println!("\n== loadgen results ==");
    println!("requests:        {}", merged.requests);
    println!(
        "throughput:      {:.0} req/s",
        merged.requests as f64 / elapsed
    );
    println!("server errors:   {}", merged.server_errors);
    println!("protocol errors: {}", merged.protocol_errors);
    if args.router {
        println!("degraded:        {}", merged.degraded);
    }
    if connect_failures > 0 {
        println!("worker connect failures: {connect_failures}");
    }

    let mut by_endpoint: std::collections::BTreeMap<&str, Vec<u64>> = Default::default();
    for (name, us) in &merged.latencies {
        by_endpoint.entry(name).or_default().push(*us);
    }
    println!(
        "\n{:<16} {:>8} {:>10} {:>10}",
        "endpoint", "count", "p50_us", "p99_us"
    );
    for (name, mut lats) in by_endpoint {
        lats.sort_unstable();
        println!(
            "{:<16} {:>8} {:>10} {:>10}",
            name,
            lats.len(),
            percentile(&lats, 0.50),
            percentile(&lats, 0.99)
        );
    }

    if args.router {
        // Routed deployments answer label-keyed queries from one shard
        // and fan the rest out; the split shows what sharding buys (and
        // costs) at a glance.
        let mut by_class: std::collections::BTreeMap<&str, Vec<u64>> = Default::default();
        for (name, us) in &merged.latencies {
            by_class.entry(query_class(name)).or_default().push(*us);
        }
        println!(
            "\n{:<16} {:>8} {:>10} {:>10}",
            "query class", "count", "p50_us", "p99_us"
        );
        for (class, mut lats) in by_class {
            lats.sort_unstable();
            println!(
                "{:<16} {:>8} {:>10} {:>10}",
                class,
                lats.len(),
                percentile(&lats, 0.50),
                percentile(&lats, 0.99)
            );
        }
    }

    match bootstrap.call_ok(&Request::Stats) {
        Ok((_, data)) => println!("\n== server stats ==\n{data}"),
        Err(e) => eprintln!("warning: final stats fetch failed: {e}"),
    }
    if merged.protocol_errors > 0 {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let zipf = Zipf::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0usize; 100];
        for _ in 0..10_000 {
            let r = zipf.sample(&mut rng);
            assert!(r < 100);
            counts[r] += 1;
        }
        assert!(
            counts[0] > counts[10],
            "rank 0 should be hotter than rank 10"
        );
        assert!(counts[0] > 10_000 / 100, "rank 0 should beat uniform share");
    }

    #[test]
    fn percentile_bounds() {
        let v = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 1.0), 10);
        assert_eq!(percentile(&v, 0.5), 6);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn args_parse_and_reject() {
        let ok = parse_args(&[
            "--threads".into(),
            "8".into(),
            "--zipf".into(),
            "1.2".into(),
        ])
        .unwrap()
        .unwrap();
        assert_eq!(ok.threads, 8);
        assert!(parse_args(&["--threads".into(), "0".into()]).is_err());
        assert!(parse_args(&["--write-ratio".into(), "1.5".into()]).is_err());
        assert!(parse_args(&["--nope".into()]).is_err());
    }

    #[test]
    fn router_addr_flag() {
        let ok = parse_args(&["--router-addr".into(), "10.0.0.9:7979".into()])
            .unwrap()
            .unwrap();
        assert!(ok.router);
        assert_eq!(ok.addr, "10.0.0.9:7979");
        let plain = parse_args(&[]).unwrap().unwrap();
        assert!(!plain.router);
        assert!(parse_args(&[
            "--addr".into(),
            "a:1".into(),
            "--router-addr".into(),
            "b:2".into(),
        ])
        .is_err());
    }

    /// The per-class report is only honest if its endpoint → class
    /// mapping matches the router's actual fan-out rule. Cross-check
    /// every request the workload can produce against that rule.
    #[test]
    fn query_class_matches_router_fanout_rule() {
        let concepts = vec!["country".to_string(), "company".to_string()];
        let instances = vec!["China".to_string(), "Microsoft".to_string()];
        let args = Args {
            write_ratio: 0.3,
            ..Args::default()
        };
        let zipf = Zipf::new(2, 1.0);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut writes = 0u64;
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let (name, req) = pick_request(
                &mut rng,
                &zipf,
                &concepts,
                &instances,
                &args,
                0,
                &mut writes,
            );
            seen.insert(name);
            // The router's classification (engine.rs): these route to
            // one shard, everything else scatter-gathers.
            let single = matches!(
                req,
                Request::Isa { .. }
                    | Request::Plausibility { .. }
                    | Request::Typicality { .. }
                    | Request::Levels { term: Some(_) }
                    | Request::AddEvidence { .. }
            );
            let expected = if single {
                "single-shard"
            } else {
                "scatter-gather"
            };
            assert_eq!(query_class(name), expected, "endpoint {name}");
        }
        assert!(seen.len() >= 6, "workload should cover all endpoints");
    }
}
