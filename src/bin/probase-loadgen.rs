//! Traffic harness for `probase-serve` — open-loop by default in CI.
//!
//! Two modes (see `probase::loadgen` and DESIGN.md §15):
//!
//! * **Open-loop** (`--rate R`): Poisson arrivals at R req/s, latency
//!   measured from each request's *intended* send time, so a server
//!   stall surfaces as the tail-latency cliff its users would see
//!   instead of silently reducing the offered load (coordinated
//!   omission).
//! * **Closed-loop** (no `--rate`): each worker sends as fast as the
//!   server answers — a saturation probe, not a latency benchmark.
//!
//! Workloads are named profiles (`--profile read-heavy|write-heavy|
//! mixed|conceptualize`) with zipfian key skew. Results render to a
//! machine-readable `BENCH_SERVE.json` (`--report-out`), and the
//! process can gate CI: `--slo-p99-ms` / `--slo-min-rate` enforce
//! absolute SLOs, `--baseline` compares against a committed
//! `BENCH_SERVE.json` (shape-only while the baseline is seeded). Gate
//! failures exit 3 and print the exact replay command.
//!
//! ```sh
//! cargo run --release --bin probase-cli -- serve &
//! cargo run --release --bin probase-loadgen -- \
//!     --rate 400 --profile mixed --duration-secs 8 \
//!     --report-out BENCH_SERVE.fresh.json --baseline BENCH_SERVE.json \
//!     --slo-p99-ms 250 --slo-min-rate 100
//! ```
//!
//! Point it at a shard router with `--router-addr`: same workload, and
//! the per-query-class split (single-shard vs scatter-gather) in the
//! report shows what sharding buys and costs.

use probase::loadgen::{
    check_slo, compare_serve_baseline, diff_serve_reports, render_report, run,
    validate_serve_report, HarnessConfig, Mode, Profile, Slo, Vocab,
};
use probase_serve::{Client, ClientConfig, ClientError, Json, LabelKind, Request};
use std::time::Duration;

const USAGE: &str = "\
Usage: probase-loadgen [OPTIONS]

Target:
  --addr <HOST:PORT>     server address (default 127.0.0.1:7878)
  --router-addr <H:P>    target a shard router instead (same protocol);
                         adds per-query-class reporting
  --read-timeout-ms <N>  socket read timeout per request (default 5000)

Workload:
  --profile <NAME>       read-heavy | write-heavy | mixed | conceptualize
                         (default mixed)
  --rate <R>             open-loop: Poisson arrivals at R req/s, latency
                         from intended send time. Without it the run is
                         closed-loop (saturation probe)
  --threads <N>          worker connections (default 4); in open-loop
                         mode this caps in-flight concurrency
  --duration-secs <N>    run length (default 10)
  --zipf <S>             zipfian skew exponent (default 1.0)
  --keys <N>             key-set size fetched from the server (default 256)
  --seed <N>             seed for the arrival schedule + request stream
                         (default 42); a seed replays the run exactly

Reporting and gating:
  --report-out <PATH>    write the BENCH_SERVE.json document
  --stats-out <PATH>     write the server's own stats dump (JSON)
  --baseline <PATH>      compare against a committed BENCH_SERVE.json;
                         seeded baselines check shape only
  --slo-p99-ms <MS>      gate: overall p99 must be <= MS
  --slo-min-rate <R>     gate: achieved ok-rate must be >= R req/s
  -h, --help             print this help

Offline diff (no traffic is generated):
  --diff <A> <B>         print per-endpoint/per-class p50/p99 and
                         throughput deltas between two BENCH_SERVE.json
                         reports, then exit; other options are ignored

Exit codes: 0 ok, 1 runtime error, 2 usage error, 3 gate failure.
";

#[derive(Debug, Clone)]
struct Args {
    cfg: HarnessConfig,
    keys: usize,
    report_out: Option<String>,
    stats_out: Option<String>,
    baseline: Option<String>,
    slo: Slo,
    diff: Option<(String, String)>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            cfg: HarnessConfig::default(),
            keys: 256,
            report_out: None,
            stats_out: None,
            baseline: None,
            slo: Slo::default(),
            diff: None,
        }
    }
}

fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        fn num<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, String> {
            v.parse().map_err(|_| format!("{name}: bad value {v:?}"))
        }
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--addr" => args.cfg.addr = take("--addr")?.clone(),
            "--router-addr" => {
                args.cfg.addr = take("--router-addr")?.clone();
                args.cfg.router = true;
            }
            "--read-timeout-ms" => {
                let ms: u64 = num("--read-timeout-ms", take("--read-timeout-ms")?)?;
                args.cfg.read_timeout = Duration::from_millis(ms);
            }
            "--profile" => args.cfg.profile = Profile::parse(take("--profile")?)?,
            "--rate" => {
                let rate: f64 = num("--rate", take("--rate")?)?;
                if rate <= 0.0 {
                    return Err("--rate must be positive".to_string());
                }
                args.cfg.mode = Mode::Open { rate };
            }
            "--threads" => args.cfg.threads = num("--threads", take("--threads")?)?,
            "--duration-secs" => {
                args.cfg.duration =
                    Duration::from_secs(num("--duration-secs", take("--duration-secs")?)?)
            }
            "--zipf" => args.cfg.zipf = num("--zipf", take("--zipf")?)?,
            "--keys" => args.keys = num("--keys", take("--keys")?)?,
            "--seed" => args.cfg.seed = num("--seed", take("--seed")?)?,
            "--report-out" => args.report_out = Some(take("--report-out")?.clone()),
            "--stats-out" => args.stats_out = Some(take("--stats-out")?.clone()),
            "--baseline" => args.baseline = Some(take("--baseline")?.clone()),
            "--slo-p99-ms" => args.slo.p99_ms = Some(num("--slo-p99-ms", take("--slo-p99-ms")?)?),
            "--slo-min-rate" => {
                args.slo.min_rate = Some(num("--slo-min-rate", take("--slo-min-rate")?)?)
            }
            "--diff" => {
                let a = take("--diff")?.clone();
                let b = take("--diff <A>")?.clone();
                args.diff = Some((a, b));
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if args.cfg.threads == 0 {
        return Err("--threads must be positive".to_string());
    }
    if args.keys == 0 {
        return Err("--keys must be positive".to_string());
    }
    if argv.iter().any(|a| a == "--addr") && argv.iter().any(|a| a == "--router-addr") {
        return Err("--addr and --router-addr are mutually exclusive".to_string());
    }
    Ok(Some(args))
}

/// The exact command line that replays this run (printed when a gate
/// fails, so CI failures are reproducible locally in one paste).
fn replay_command(args: &Args) -> String {
    let cfg = &args.cfg;
    let mut cmd = String::from("cargo run --release --bin probase-loadgen --");
    let addr_flag = if cfg.router {
        "--router-addr"
    } else {
        "--addr"
    };
    cmd.push_str(&format!(" {addr_flag} {}", cfg.addr));
    cmd.push_str(&format!(" --profile {}", cfg.profile.name()));
    if let Some(rate) = cfg.mode.offered_rate() {
        cmd.push_str(&format!(" --rate {rate}"));
    }
    cmd.push_str(&format!(
        " --threads {} --duration-secs {} --zipf {} --keys {} --seed {}",
        cfg.threads,
        cfg.duration.as_secs(),
        cfg.zipf,
        args.keys,
        cfg.seed
    ));
    if let Some(ms) = args.slo.p99_ms {
        cmd.push_str(&format!(" --slo-p99-ms {ms}"));
    }
    if let Some(rate) = args.slo.min_rate {
        cmd.push_str(&format!(" --slo-min-rate {rate}"));
    }
    if let Some(path) = &args.baseline {
        cmd.push_str(&format!(" --baseline {path}"));
    }
    cmd
}

fn fetch_labels(
    client: &mut Client,
    kind: LabelKind,
    k: usize,
) -> Result<Vec<String>, ClientError> {
    let (_, data) = client.call_ok(&Request::Labels { kind, k })?;
    Ok(data
        .get("labels")
        .and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default())
}

/// Print one histogram-summary row.
fn print_row(name: &str, h: &Json) {
    let n = |key: &str| h.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    println!(
        "{:<16} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        name,
        n("count") as u64,
        n("p50_us") as u64,
        n("p90_us") as u64,
        n("p99_us") as u64,
        n("p999_us") as u64,
        n("max_us") as u64
    );
}

fn print_section(report: &Json, section: &str, heading: &str) {
    let Some(Json::Obj(pairs)) = report.get(section) else {
        return;
    };
    if pairs.is_empty() {
        return;
    }
    println!(
        "\n{:<16} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        heading, "count", "p50_us", "p90_us", "p99_us", "p999_us", "max_us"
    );
    for (name, h) in pairs {
        print_row(name, h);
    }
}

fn print_summary(report: &Json, router: bool) {
    let meta = |key: &str| {
        report
            .get("meta")
            .and_then(|m| m.get(key))
            .cloned()
            .unwrap_or(Json::Null)
    };
    let total = |key: &str| {
        report
            .get("totals")
            .and_then(|t| t.get(key))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    println!("\n== loadgen results ==");
    println!(
        "mode:            {} ({} profile)",
        meta("mode").as_str().unwrap_or("?"),
        meta("profile").as_str().unwrap_or("?")
    );
    if let Some(rate) = meta("offered_rate").as_f64() {
        println!("offered rate:    {rate:.0} req/s");
    }
    println!(
        "achieved rate:   {:.1} req/s ({} ok of {} scheduled in {:.2}s)",
        total("achieved_rate"),
        total("completed") as u64,
        total("scheduled") as u64,
        total("elapsed_secs")
    );
    println!("server errors:   {}", total("server_errors") as u64);
    println!("transport errors:{}", total("transport_errors") as u64);
    if total("connect_failures") > 0.0 {
        println!("connect failures:{}", total("connect_failures") as u64);
    }
    if router {
        println!("degraded:        {}", total("degraded") as u64);
    }
    if let Some(overall) = report.get("overall") {
        println!(
            "\n{:<16} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "", "count", "p50_us", "p90_us", "p99_us", "p999_us", "max_us"
        );
        print_row("overall", overall);
    }
    print_section(report, "endpoints", "endpoint");
    if router {
        print_section(report, "classes", "query class");
    }
}

fn write_file(path: &str, text: &str) -> Result<(), String> {
    std::fs::write(path, text).map_err(|e| format!("cannot write {path:?}: {e}"))
}

/// Offline mode: read two committed reports and print their deltas.
/// No server connection, no traffic — safe to run anywhere CI can
/// read artifacts.
fn run_diff(a_path: &str, b_path: &str) -> Result<(), String> {
    let read = |path: &str| -> Result<Json, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
        probase_obs::json::parse(&text).map_err(|e| format!("{path:?} is not JSON: {e}"))
    };
    let a = read(a_path)?;
    let b = read(b_path)?;
    print!("{}", diff_serve_reports(&a, &b)?);
    Ok(())
}

fn run_main(args: &Args) -> Result<i32, String> {
    let client_config = ClientConfig {
        read_timeout: Some(args.cfg.read_timeout),
        ..ClientConfig::default()
    };
    let mut bootstrap = Client::connect_with(&args.cfg.addr, client_config)
        .map_err(|e| format!("cannot connect to {}: {e}", args.cfg.addr))?;
    let vocab = Vocab {
        concepts: fetch_labels(&mut bootstrap, LabelKind::Concepts, args.keys)
            .map_err(|e| format!("label bootstrap failed: {e}"))?,
        instances: fetch_labels(&mut bootstrap, LabelKind::Instances, args.keys)
            .map_err(|e| format!("label bootstrap failed: {e}"))?,
    };
    if vocab.is_empty() {
        return Err("server has no concepts/instances to query".to_string());
    }
    eprintln!(
        "loadgen: {} mode, profile {}, {} concepts / {} instances, seed {}",
        args.cfg.mode.name(),
        args.cfg.profile.name(),
        vocab.concepts.len(),
        vocab.instances.len(),
        args.cfg.seed
    );

    let stats = run(&args.cfg, &vocab)?;
    let report = render_report(&args.cfg, &stats);
    validate_serve_report(&report)?;
    print_summary(&report, args.cfg.router);

    if let Some(path) = &args.report_out {
        write_file(path, &report.to_string())?;
        eprintln!("loadgen: wrote report to {path}");
    }
    if let Some(path) = &args.stats_out {
        match bootstrap.call_ok(&Request::Stats) {
            Ok((_, data)) => {
                write_file(path, &data.to_string())?;
                eprintln!("loadgen: wrote server stats to {path}");
            }
            Err(e) => eprintln!("warning: final stats fetch failed: {e}"),
        }
    }

    let mut gate_failures = check_slo(&report, &args.slo);
    if let Some(path) = &args.baseline {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
        let baseline =
            probase_obs::json::parse(&text).map_err(|e| format!("{path:?} is not JSON: {e}"))?;
        match compare_serve_baseline(&report, &baseline) {
            Ok(warnings) => {
                for w in warnings {
                    eprintln!("baseline warning: {w}");
                }
            }
            Err(e) => gate_failures.push(format!("baseline check failed: {e}")),
        }
    }
    if !gate_failures.is_empty() {
        eprintln!("\nSLO GATE FAILED:");
        for v in &gate_failures {
            eprintln!("  - {v}");
        }
        eprintln!("\nreplay with:\n  {}", replay_command(args));
        return Ok(3);
    }
    if !args.slo.is_empty() || args.baseline.is_some() {
        eprintln!("loadgen: SLO gate passed");
    }
    Ok(0)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    if let Some((a, b)) = &args.diff {
        match run_diff(a, b) {
            Ok(()) => return,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(1);
            }
        }
    }
    match run_main(&args) {
        Ok(code) => std::process::exit(code),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
