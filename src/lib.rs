//! # probase
//!
//! A complete, from-scratch Rust reproduction of **"Probase: A
//! Probabilistic Taxonomy for Text Understanding"** (Wu, Li, Wang, Zhu —
//! SIGMOD 2012): iterative semantic isA extraction from Hearst-pattern
//! sentences, sense-disambiguating taxonomy construction, and the
//! plausibility/typicality probabilistic layer — plus every substrate the
//! evaluation needs (synthetic web corpus, graph store, rival-taxonomy
//! simulators, application workloads).
//!
//! This crate is the facade: it re-exports the component crates and the
//! one-call pipeline. Start with [`Simulation`]:
//!
//! ```
//! use probase::{ProbaseConfig, Simulation};
//! use probase::corpus::{CorpusConfig, WorldConfig};
//!
//! let sim = Simulation::run(
//!     &WorldConfig::small(1),
//!     &CorpusConfig { seed: 1, sentences: 2_000, ..CorpusConfig::default() },
//!     &ProbaseConfig::paper(),
//! );
//! let companies = sim.probase.model.typical_instances("company", 3);
//! assert!(!companies.is_empty());
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! paper-to-module map, and `EXPERIMENTS.md` for the reproduced tables
//! and figures.

/// Open-loop traffic harness behind `probase-loadgen`: Poisson
/// arrivals, named workload profiles, HDR latency capture, the
/// `BENCH_SERVE.json` report, and the CI SLO gate.
pub mod loadgen;

pub use probase_core::{
    build_probase, build_probase_observed, seed_from_world, PlausibilityKind, Probase,
    ProbaseConfig, Simulation,
};

/// Observability substrate: counters, histograms, stage timers, registry.
pub use probase_obs as obs;

/// Shallow NLP substrate: tokenizer, morphology, tagger, NP chunker.
pub use probase_text as text;

/// Ground-truth world model and web-corpus simulator.
pub use probase_corpus as corpus;

/// Iterative semantic extraction (paper §2, Algorithm 1).
pub use probase_extract as extract;

/// Taxonomy construction (paper §3, Algorithm 2).
pub use probase_taxonomy as taxonomy;

/// Plausibility and typicality (paper §4, Algorithm 3).
pub use probase_prob as prob;

/// Concept-graph store (Trinity stand-in).
pub use probase_store as store;

/// Syntactic-iteration baselines and rival taxonomy simulators.
pub use probase_baselines as baselines;

/// Text-understanding applications (paper §5.3).
pub use probase_apps as apps;

/// Evaluation harness: judge, query log, workloads, metrics.
pub use probase_eval as eval;

/// Query-serving subsystem: TCP server, response cache, metrics (§5.3).
pub use probase_serve as serve;

/// Shard router: deterministic label-hash partitioning, scatter-gather,
/// hedged retries, graceful degradation (§5.3 at Trinity scale).
pub use probase_router as router;
