//! Named workload profiles: endpoint mixes modeled on the paper's §6
//! applications, with zipfian key skew.
//!
//! The paper evaluates Probase under Bing query-log traffic; this module
//! substitutes four named mixes over the same serving surface:
//!
//! * `read-heavy` — the demo-site shape: point lookups (`isa`,
//!   `typicality`, `plausibility`, `levels`) dominate, writes are rare.
//! * `write-heavy` — a continuously-ingesting deployment: half the
//!   traffic is `add-evidence`, exercising the WAL/ack path under load.
//! * `mixed` — the CI default: every endpoint class, 10% writes — close
//!   to the "many applications sharing one taxonomy service" story of
//!   §5.3, and the profile the committed `BENCH_SERVE.json` baseline
//!   pins.
//! * `conceptualize` — short-text understanding (§5.3.2): bag-of-terms
//!   conceptualization and search rewriting, the scatter-gather-heavy
//!   workload that stresses a sharded deployment's fan-out path.

use super::SeededRng;
use probase_serve::{Direction, Request};

/// The label vocabulary a run draws its keys from, fetched from the
/// target server at startup (or supplied directly in tests).
#[derive(Debug, Clone)]
pub struct Vocab {
    /// Concept labels (used as parents / typicality subjects).
    pub concepts: Vec<String>,
    /// Instance labels (used as children / conceptualize inputs).
    pub instances: Vec<String>,
}

impl Vocab {
    /// True when either side is empty (the harness refuses to run).
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty() || self.instances.is_empty()
    }
}

/// Precomputed zipfian CDF over ranks `0..n`: rank i has weight
/// `1/(i+1)^s`. Sampling is a binary search with a uniform draw.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// CDF over `n` ranks with skew exponent `s`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut SeededRng) -> usize {
        let u = rng.next_unit();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// The request kinds a profile mixes over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Isa,
    Typicality,
    Plausibility,
    Conceptualize,
    SearchRewrite,
    Levels,
    AddEvidence,
}

/// A named workload profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Point reads dominate; 1% writes.
    ReadHeavy,
    /// 50% `add-evidence` writes.
    WriteHeavy,
    /// Every endpoint class; 10% writes. The CI baseline profile.
    Mixed,
    /// §5.3.2 short-text understanding: conceptualize + search-rewrite.
    Conceptualize,
}

/// All profiles, in parse order.
pub const PROFILES: [Profile; 4] = [
    Profile::ReadHeavy,
    Profile::WriteHeavy,
    Profile::Mixed,
    Profile::Conceptualize,
];

impl Profile {
    /// Parse a profile name (`read-heavy`, `write-heavy`, `mixed`,
    /// `conceptualize`).
    pub fn parse(name: &str) -> Result<Profile, String> {
        match name {
            "read-heavy" => Ok(Profile::ReadHeavy),
            "write-heavy" => Ok(Profile::WriteHeavy),
            "mixed" => Ok(Profile::Mixed),
            "conceptualize" => Ok(Profile::Conceptualize),
            other => Err(format!(
                "unknown profile {other:?} (expected read-heavy, write-heavy, \
                 mixed, or conceptualize)"
            )),
        }
    }

    /// The wire name.
    pub fn name(&self) -> &'static str {
        match self {
            Profile::ReadHeavy => "read-heavy",
            Profile::WriteHeavy => "write-heavy",
            Profile::Mixed => "mixed",
            Profile::Conceptualize => "conceptualize",
        }
    }

    /// `(op, cumulative probability)` rows; the last row must reach 1.0.
    fn mix(&self) -> &'static [(Op, f64)] {
        match self {
            Profile::ReadHeavy => &[
                (Op::Isa, 0.35),
                (Op::Typicality, 0.60),
                (Op::Plausibility, 0.80),
                (Op::Levels, 0.94),
                (Op::SearchRewrite, 0.99),
                (Op::AddEvidence, 1.0),
            ],
            Profile::WriteHeavy => &[
                (Op::AddEvidence, 0.50),
                (Op::Isa, 0.70),
                (Op::Typicality, 0.85),
                (Op::Plausibility, 0.95),
                (Op::Levels, 1.0),
            ],
            Profile::Mixed => &[
                (Op::AddEvidence, 0.10),
                (Op::Isa, 0.35),
                (Op::Typicality, 0.55),
                (Op::Plausibility, 0.70),
                (Op::Conceptualize, 0.85),
                (Op::SearchRewrite, 0.95),
                (Op::Levels, 1.0),
            ],
            Profile::Conceptualize => &[
                (Op::Conceptualize, 0.70),
                (Op::SearchRewrite, 0.90),
                (Op::Typicality, 1.0),
            ],
        }
    }

    /// Fraction of requests that are writes (for reporting).
    pub fn write_fraction(&self) -> f64 {
        match self {
            Profile::ReadHeavy => 0.01,
            Profile::WriteHeavy => 0.50,
            Profile::Mixed => 0.10,
            Profile::Conceptualize => 0.0,
        }
    }

    /// Draw one request. `write_seq` numbers `add-evidence` children and
    /// `label_space` keeps them unique across generators, so loadgen
    /// writes can never collide with real vocabulary or each other (a
    /// fresh child label cannot form a cycle).
    pub fn sample(
        &self,
        rng: &mut SeededRng,
        zipf: &Zipf,
        vocab: &Vocab,
        label_space: &str,
        write_seq: &mut u64,
    ) -> (&'static str, Request) {
        let u = rng.next_unit();
        let op = self
            .mix()
            .iter()
            .find(|(_, cum)| u < *cum)
            .map(|(op, _)| *op)
            .unwrap_or_else(|| self.mix().last().expect("mix is non-empty").0);
        fn pick(list: &[String], zipf: &Zipf, rng: &mut SeededRng) -> String {
            list[zipf.sample(rng) % list.len()].clone()
        }
        match op {
            Op::Isa => (
                "isa",
                Request::Isa {
                    parent: pick(&vocab.concepts, zipf, rng),
                    child: pick(&vocab.instances, zipf, rng),
                },
            ),
            Op::Typicality => (
                "typicality",
                Request::Typicality {
                    term: pick(&vocab.concepts, zipf, rng),
                    direction: Direction::Instances,
                    k: 10,
                },
            ),
            Op::Plausibility => (
                "plausibility",
                Request::Plausibility {
                    parent: pick(&vocab.concepts, zipf, rng),
                    child: pick(&vocab.instances, zipf, rng),
                },
            ),
            Op::Conceptualize => {
                let terms = vec![
                    pick(&vocab.instances, zipf, rng),
                    pick(&vocab.instances, zipf, rng),
                ];
                ("conceptualize", Request::Conceptualize { terms, k: 8 })
            }
            Op::SearchRewrite => (
                "search-rewrite",
                Request::SearchRewrite {
                    query: pick(&vocab.instances, zipf, rng),
                    k: 5,
                },
            ),
            Op::Levels => (
                "levels",
                Request::Levels {
                    term: Some(pick(&vocab.concepts, zipf, rng)),
                },
            ),
            Op::AddEvidence => {
                *write_seq += 1;
                (
                    "add-evidence",
                    Request::AddEvidence {
                        parent: pick(&vocab.concepts, zipf, rng),
                        child: format!("loadgen-{label_space}-{write_seq}"),
                        count: 1,
                    },
                )
            }
        }
    }
}

/// Which side of the router's fan-out decision an endpoint lands on.
/// Must mirror `probase_router::Router`'s classification: label-keyed
/// endpoints route to one shard, everything else scatter-gathers.
pub fn query_class(endpoint: &str) -> &'static str {
    match endpoint {
        "isa" | "typicality" | "plausibility" | "levels" | "add-evidence" => "single-shard",
        _ => "scatter-gather",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> Vocab {
        Vocab {
            concepts: vec!["country".to_string(), "company".to_string()],
            instances: vec!["China".to_string(), "Microsoft".to_string()],
        }
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let zipf = Zipf::new(100, 1.0);
        let mut rng = SeededRng::new(7);
        let mut counts = [0usize; 100];
        for _ in 0..10_000 {
            let r = zipf.sample(&mut rng);
            assert!(r < 100);
            counts[r] += 1;
        }
        assert!(
            counts[0] > counts[10],
            "rank 0 should be hotter than rank 10"
        );
        assert!(counts[0] > 10_000 / 100, "rank 0 should beat uniform share");
    }

    #[test]
    fn every_mix_is_a_cdf_ending_at_one() {
        for profile in PROFILES {
            let mix = profile.mix();
            let mut prev = 0.0;
            for (_, cum) in mix {
                assert!(*cum > prev, "{profile:?}: non-increasing row {cum}");
                prev = *cum;
            }
            assert_eq!(prev, 1.0, "{profile:?}: mix must end at 1.0");
        }
    }

    #[test]
    fn profile_names_round_trip() {
        for profile in PROFILES {
            assert_eq!(Profile::parse(profile.name()), Ok(profile));
        }
        assert!(Profile::parse("bogus").is_err());
    }

    #[test]
    fn write_fractions_match_observed_mix() {
        let v = vocab();
        let zipf = Zipf::new(2, 1.0);
        for profile in PROFILES {
            let mut rng = SeededRng::new(11);
            let mut writes = 0u64;
            let mut seq = 0u64;
            const N: u64 = 20_000;
            for _ in 0..N {
                let (name, _) = profile.sample(&mut rng, &zipf, &v, "t", &mut seq);
                if name == "add-evidence" {
                    writes += 1;
                }
            }
            let observed = writes as f64 / N as f64;
            let expected = profile.write_fraction();
            assert!(
                (observed - expected).abs() < 0.02,
                "{profile:?}: observed write fraction {observed:.3} vs {expected:.3}"
            );
        }
    }

    #[test]
    fn write_children_are_unique_and_namespaced() {
        let v = vocab();
        let zipf = Zipf::new(2, 1.0);
        let mut rng = SeededRng::new(5);
        let mut seq = 0u64;
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..2_000 {
            let (name, req) = Profile::WriteHeavy.sample(&mut rng, &zipf, &v, "w0", &mut seq);
            if let Request::AddEvidence { child, .. } = req {
                assert_eq!(name, "add-evidence");
                assert!(child.starts_with("loadgen-w0-"), "{child}");
                assert!(seen.insert(child), "duplicate write child");
            }
        }
        assert!(!seen.is_empty());
    }

    /// The per-class report is only honest if its endpoint → class
    /// mapping matches the router's actual fan-out rule. Cross-check
    /// every request a profile can produce against that rule.
    #[test]
    fn query_class_matches_router_fanout_rule() {
        let v = vocab();
        let zipf = Zipf::new(2, 1.0);
        let mut seen = std::collections::BTreeSet::new();
        for profile in PROFILES {
            let mut rng = SeededRng::new(9);
            let mut seq = 0u64;
            for _ in 0..500 {
                let (name, req) = profile.sample(&mut rng, &zipf, &v, "t", &mut seq);
                seen.insert(name);
                // The router's classification (engine.rs): these route to
                // one shard, everything else scatter-gathers.
                let single = matches!(
                    req,
                    Request::Isa { .. }
                        | Request::Plausibility { .. }
                        | Request::Typicality { .. }
                        | Request::Levels { term: Some(_) }
                        | Request::AddEvidence { .. }
                );
                let expected = if single {
                    "single-shard"
                } else {
                    "scatter-gather"
                };
                assert_eq!(query_class(name), expected, "endpoint {name}");
            }
        }
        assert!(seen.len() >= 7, "profiles should cover all endpoints");
    }
}
