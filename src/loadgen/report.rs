//! `BENCH_SERVE.json` rendering, validation, SLO checks, and the
//! committed-baseline comparison — the serve-side mirror of
//! `probase-bench`'s `BENCH_PIPELINE.json` protocol.
//!
//! The document is deterministic given identical metric state (section
//! names sorted, schema fixed), so CI can diff two runs. A committed
//! baseline with `meta.seeded: true` arms shape checks only (endpoint
//! coverage, profile/mode identity) and emits a regeneration warning;
//! once regenerated on reference hardware with `seeded: false`, the
//! scalar gates (p99, achieved rate) arm too.

use super::engine::RunStats;
use super::HarnessConfig;
use probase_obs::Json;

/// The schema tag every report carries.
pub const SERVE_SCHEMA: &str = "bench-serve-v1";

/// Service-level objectives the gate enforces on a fresh report.
#[derive(Debug, Clone, Copy, Default)]
pub struct Slo {
    /// Overall p99 must be at or below this many milliseconds.
    pub p99_ms: Option<f64>,
    /// Achieved ok-responses/second must be at or above this.
    pub min_rate: Option<f64>,
}

impl Slo {
    /// True when no objective is set (the gate has nothing to enforce).
    pub fn is_empty(&self) -> bool {
        self.p99_ms.is_none() && self.min_rate.is_none()
    }
}

/// Map one snapshot histogram entry (`count/sum/mean/p50/.../max`) to
/// the report's `*_us` summary shape.
fn hist_summary(h: &Json) -> Json {
    let n = |key: &str| h.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    Json::obj(vec![
        ("count", Json::num(n("count"))),
        ("mean_us", Json::num(n("mean"))),
        ("p50_us", Json::num(n("p50"))),
        ("p90_us", Json::num(n("p90"))),
        ("p99_us", Json::num(n("p99"))),
        ("p999_us", Json::num(n("p999"))),
        ("max_us", Json::num(n("max"))),
    ])
}

/// Collect `loadgen.<section>.<name>.latency_us` histograms from a
/// registry snapshot into a `name → summary` object (sorted — the
/// snapshot is backed by a `BTreeMap`).
fn section(hists: &Json, prefix: &str) -> Json {
    let mut out = Vec::new();
    if let Json::Obj(pairs) = hists {
        for (name, h) in pairs {
            if let Some(rest) = name.strip_prefix(prefix) {
                if let Some(endpoint) = rest.strip_suffix(".latency_us") {
                    out.push((endpoint.to_string(), hist_summary(h)));
                }
            }
        }
    }
    Json::Obj(out)
}

/// Render a run into the `BENCH_SERVE.json` document.
pub fn render_report(cfg: &HarnessConfig, stats: &RunStats) -> Json {
    let snapshot = stats.registry.snapshot();
    let empty = Json::obj(vec![]);
    let hists = snapshot.get("histograms").unwrap_or(&empty);
    let overall = hists
        .get("loadgen.overall.latency_us")
        .map(hist_summary)
        .unwrap_or_else(|| hist_summary(&empty));
    let offered = match cfg.mode.offered_rate() {
        Some(rate) => Json::num(rate),
        None => Json::Null,
    };
    Json::obj(vec![
        (
            "meta",
            Json::obj(vec![
                ("schema", Json::str(SERVE_SCHEMA)),
                ("seeded", Json::Bool(false)),
                ("mode", Json::str(cfg.mode.name())),
                ("profile", Json::str(cfg.profile.name())),
                (
                    "target",
                    Json::str(if cfg.router { "router" } else { "single" }),
                ),
                ("offered_rate", offered),
                ("duration_secs", Json::num(cfg.duration.as_secs_f64())),
                ("threads", Json::num(cfg.threads as f64)),
                ("zipf", Json::num(cfg.zipf)),
                ("seed", Json::num(cfg.seed as f64)),
            ]),
        ),
        (
            "totals",
            Json::obj(vec![
                ("scheduled", Json::num(stats.scheduled as f64)),
                ("completed", Json::num(stats.completed as f64)),
                ("server_errors", Json::num(stats.server_errors as f64)),
                ("transport_errors", Json::num(stats.transport_errors as f64)),
                ("degraded", Json::num(stats.degraded as f64)),
                ("connect_failures", Json::num(stats.connect_failures as f64)),
                (
                    "achieved_rate",
                    Json::num((stats.achieved_rate() * 100.0).round() / 100.0),
                ),
                (
                    "elapsed_secs",
                    Json::num((stats.elapsed.as_secs_f64() * 1000.0).round() / 1000.0),
                ),
            ]),
        ),
        ("overall", overall),
        ("endpoints", section(hists, "loadgen.endpoint.")),
        ("classes", section(hists, "loadgen.class.")),
    ])
}

fn require_num(doc: &Json, section: &str, key: &str) -> Result<f64, String> {
    doc.get(section)
        .and_then(|s| s.get(key))
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric {section}.{key}"))
}

/// Structural validation: every consumer-visible field the CI gate and
/// the baseline comparison read must be present and typed.
pub fn validate_serve_report(report: &Json) -> Result<(), String> {
    let meta = report.get("meta").ok_or("missing meta")?;
    let schema = meta
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing meta.schema")?;
    if schema != SERVE_SCHEMA {
        return Err(format!(
            "schema mismatch: {schema:?} (expected {SERVE_SCHEMA:?})"
        ));
    }
    for key in ["mode", "profile", "target"] {
        meta.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing meta.{key}"))?;
    }
    for key in [
        "scheduled",
        "completed",
        "server_errors",
        "transport_errors",
        "degraded",
        "connect_failures",
        "achieved_rate",
        "elapsed_secs",
    ] {
        require_num(report, "totals", key)?;
    }
    for key in ["count", "p50_us", "p90_us", "p99_us", "p999_us", "max_us"] {
        require_num(report, "overall", key)?;
    }
    for sect in ["endpoints", "classes"] {
        match report.get(sect) {
            Some(Json::Obj(_)) => {}
            _ => return Err(format!("missing object section {sect:?}")),
        }
    }
    Ok(())
}

/// Check a fresh report against the stated SLOs. Returns one line per
/// violation (empty ⇒ pass).
pub fn check_slo(report: &Json, slo: &Slo) -> Vec<String> {
    let mut violations = Vec::new();
    if let Some(limit_ms) = slo.p99_ms {
        match require_num(report, "overall", "p99_us") {
            Ok(p99_us) => {
                if p99_us > limit_ms * 1000.0 {
                    violations.push(format!(
                        "overall p99 {:.2}ms exceeds SLO {limit_ms}ms",
                        p99_us / 1000.0
                    ));
                }
            }
            Err(e) => violations.push(e),
        }
    }
    if let Some(min_rate) = slo.min_rate {
        match require_num(report, "totals", "achieved_rate") {
            Ok(rate) => {
                if rate < min_rate {
                    violations.push(format!(
                        "achieved rate {rate:.2}/s below SLO floor {min_rate}/s"
                    ));
                }
            }
            Err(e) => violations.push(e),
        }
    }
    violations
}

fn obj_keys<'a>(doc: &'a Json, section: &str) -> Vec<&'a str> {
    match doc.get(section) {
        Some(Json::Obj(pairs)) => pairs.iter().map(|(k, _)| k.as_str()).collect(),
        _ => Vec::new(),
    }
}

/// Compare a fresh report against the committed `BENCH_SERVE.json`
/// baseline. Mirrors `probase-bench`'s protocol:
///
/// 1. **Shape, always:** profile/mode/target must match, and every
///    endpoint and query class the baseline covers must appear in the
///    fresh run with a nonzero count — a silently vanished endpoint is
///    a harness bug, not a perf change.
/// 2. **Scalars, only on measured baselines:** a baseline with
///    `meta.seeded: true` predates any reference-hardware run; it emits
///    a regeneration warning and skips scalar gates. Otherwise the
///    fresh overall p99 must stay within 2× baseline + 10ms and the
///    achieved rate within 2× down.
///
/// `Err` fails the gate; `Ok(warnings)` passes with advisories.
pub fn compare_serve_baseline(fresh: &Json, baseline: &Json) -> Result<Vec<String>, String> {
    validate_serve_report(fresh).map_err(|e| format!("fresh report invalid: {e}"))?;
    let b_meta = baseline
        .get("meta")
        .ok_or_else(|| "baseline has no meta".to_string())?;
    for key in ["profile", "mode", "target"] {
        let b = b_meta.get(key).and_then(Json::as_str);
        let f = fresh
            .get("meta")
            .and_then(|m| m.get(key))
            .and_then(Json::as_str);
        if b.is_some() && b != f {
            return Err(format!(
                "meta.{key} mismatch: baseline {b:?} vs fresh {f:?} — \
                 the gate must drive the baseline's workload"
            ));
        }
    }
    for sect in ["endpoints", "classes"] {
        for name in obj_keys(baseline, sect) {
            let count = fresh
                .get(sect)
                .and_then(|s| s.get(name))
                .and_then(|e| e.get("count"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            if count <= 0.0 {
                return Err(format!(
                    "{sect}.{name} present in baseline but absent/empty in \
                     fresh run — workload coverage regressed"
                ));
            }
        }
    }
    let mut warnings = Vec::new();
    let seeded = b_meta
        .get("seeded")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    if seeded {
        warnings.push(
            "baseline is a structural seed (meta.seeded: true); latency and \
             throughput gates are DISARMED. Regenerate BENCH_SERVE.json on \
             reference hardware to arm them."
                .to_string(),
        );
        return Ok(warnings);
    }
    let b_p99 = require_num(baseline, "overall", "p99_us")?;
    let f_p99 = require_num(fresh, "overall", "p99_us")?;
    if f_p99 > b_p99 * 2.0 + 10_000.0 {
        return Err(format!(
            "overall p99 regressed: fresh {f_p99}us vs baseline {b_p99}us \
             (limit 2x + 10ms)"
        ));
    }
    let b_rate = require_num(baseline, "totals", "achieved_rate")?;
    let f_rate = require_num(fresh, "totals", "achieved_rate")?;
    if f_rate < b_rate * 0.5 {
        return Err(format!(
            "achieved rate regressed: fresh {f_rate:.2}/s vs baseline \
             {b_rate:.2}/s (floor 0.5x)"
        ));
    }
    if f_p99 > b_p99 * 1.25 {
        warnings.push(format!(
            "overall p99 drifted up: fresh {f_p99}us vs baseline {b_p99}us"
        ));
    }
    Ok(warnings)
}

/// Signed delta with percent-of-A, e.g. `+120 (+40.0%)`. When A is
/// zero the percent is meaningless and only the absolute delta prints.
fn fmt_delta(a: f64, b: f64) -> String {
    let d = b - a;
    if a == 0.0 {
        format!("{d:+.0}")
    } else {
        format!("{d:+.0} ({:+.1}%)", d / a * 100.0)
    }
}

/// One diff-table row. A side missing the entry renders as "only in
/// A/B" rather than a zero delta — an endpoint that vanished between
/// two runs is coverage signal, not a latency improvement.
fn diff_row(out: &mut String, name: &str, a: Option<&Json>, b: Option<&Json>) {
    let num = |h: &Json, key: &str| h.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    match (a, b) {
        (Some(a), Some(b)) => {
            let (ap50, bp50) = (num(a, "p50_us"), num(b, "p50_us"));
            let (ap99, bp99) = (num(a, "p99_us"), num(b, "p99_us"));
            out.push_str(&format!(
                "{:<16} {:>9.0} {:>9.0} {:>16} {:>9.0} {:>9.0} {:>16}\n",
                name,
                ap50,
                bp50,
                fmt_delta(ap50, bp50),
                ap99,
                bp99,
                fmt_delta(ap99, bp99)
            ));
        }
        (Some(_), None) => out.push_str(&format!("{name:<16} only in A\n")),
        (None, Some(_)) => out.push_str(&format!("{name:<16} only in B\n")),
        (None, None) => {}
    }
}

/// Render a human-readable diff between two `BENCH_SERVE.json`
/// documents (`probase-loadgen --diff A.json B.json`): achieved
/// throughput plus per-endpoint and per-query-class p50/p99 deltas,
/// B measured relative to A. Both documents must validate. A workload
/// mismatch (profile/mode/target) is a printed note, not an error, so
/// cross-profile comparisons stay possible but never silent.
pub fn diff_serve_reports(a: &Json, b: &Json) -> Result<String, String> {
    validate_serve_report(a).map_err(|e| format!("report A invalid: {e}"))?;
    validate_serve_report(b).map_err(|e| format!("report B invalid: {e}"))?;
    fn meta<'a>(doc: &'a Json, key: &str) -> &'a str {
        doc.get("meta")
            .and_then(|m| m.get(key))
            .and_then(Json::as_str)
            .unwrap_or("?")
    }
    let a_rate = require_num(a, "totals", "achieved_rate")?;
    let b_rate = require_num(b, "totals", "achieved_rate")?;
    let mut out = String::from("== report diff (A -> B) ==\n");
    for (tag, doc, rate) in [("A", a, a_rate), ("B", b, b_rate)] {
        out.push_str(&format!(
            "{tag}: profile {} / {} mode, target {}, achieved {rate:.2} req/s\n",
            meta(doc, "profile"),
            meta(doc, "mode"),
            meta(doc, "target"),
        ));
    }
    for key in ["profile", "mode", "target"] {
        if meta(a, key) != meta(b, key) {
            out.push_str(&format!(
                "note: meta.{key} differs ({} vs {}) — the deltas compare \
                 different workloads\n",
                meta(a, key),
                meta(b, key)
            ));
        }
    }
    out.push_str(&format!(
        "throughput: {a_rate:.2} -> {b_rate:.2} req/s ({})\n",
        fmt_delta(a_rate, b_rate)
    ));
    out.push_str(&format!(
        "\n{:<16} {:>9} {:>9} {:>16} {:>9} {:>9} {:>16}\n",
        "", "A p50_us", "B p50_us", "Δ p50", "A p99_us", "B p99_us", "Δ p99"
    ));
    diff_row(&mut out, "overall", a.get("overall"), b.get("overall"));
    for (sect, heading) in [("endpoints", "endpoint"), ("classes", "query class")] {
        let mut names = obj_keys(a, sect);
        names.extend(obj_keys(b, sect));
        names.sort_unstable();
        names.dedup();
        if names.is_empty() {
            continue;
        }
        out.push_str(&format!("\n{heading}\n"));
        for name in names {
            diff_row(
                &mut out,
                name,
                a.get(sect).and_then(|s| s.get(name)),
                b.get(sect).and_then(|s| s.get(name)),
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::super::engine::{Mode, RunStats};
    use super::super::{HarnessConfig, Profile};
    use super::*;
    use probase_obs::Registry;
    use std::sync::Arc;
    use std::time::Duration;

    fn fake_stats() -> RunStats {
        let registry = Arc::new(Registry::new());
        for (endpoint, lat) in [
            ("isa", 120u64),
            ("typicality", 300),
            ("add-evidence", 450),
            ("conceptualize", 900),
        ] {
            for i in 0..50 {
                let us = lat + i;
                registry.histogram("loadgen.overall.latency_us").record(us);
                registry
                    .histogram(&format!("loadgen.endpoint.{endpoint}.latency_us"))
                    .record(us);
                let class = super::super::profile::query_class(endpoint);
                registry
                    .histogram(&format!("loadgen.class.{class}.latency_us"))
                    .record(us);
            }
        }
        RunStats {
            registry,
            scheduled: 200,
            completed: 200,
            server_errors: 0,
            transport_errors: 0,
            degraded: 0,
            connect_failures: 0,
            elapsed: Duration::from_secs(2),
        }
    }

    fn cfg() -> HarnessConfig {
        HarnessConfig {
            mode: Mode::Open { rate: 100.0 },
            profile: Profile::Mixed,
            ..HarnessConfig::default()
        }
    }

    #[test]
    fn rendered_report_validates_and_is_deterministic() {
        let stats = fake_stats();
        let report = render_report(&cfg(), &stats);
        validate_serve_report(&report).expect("fresh render must validate");
        assert_eq!(
            report.to_string(),
            render_report(&cfg(), &stats).to_string(),
            "same state must serialize identically"
        );
        let meta = report.get("meta").unwrap();
        assert_eq!(meta.get("mode").and_then(Json::as_str), Some("open"));
        assert_eq!(meta.get("offered_rate").and_then(Json::as_f64), Some(100.0));
        assert_eq!(
            report
                .get("totals")
                .and_then(|t| t.get("achieved_rate"))
                .and_then(Json::as_f64),
            Some(100.0)
        );
        // Per-endpoint and per-class sections carry the recorded data.
        let isa = report.get("endpoints").unwrap().get("isa").unwrap();
        assert_eq!(isa.get("count").and_then(Json::as_u64), Some(50));
        let single = report.get("classes").unwrap().get("single-shard").unwrap();
        assert_eq!(single.get("count").and_then(Json::as_u64), Some(150));
        let scatter = report
            .get("classes")
            .unwrap()
            .get("scatter-gather")
            .unwrap();
        assert_eq!(scatter.get("count").and_then(Json::as_u64), Some(50));
    }

    #[test]
    fn slo_gate_passes_and_fails() {
        let report = render_report(&cfg(), &fake_stats());
        assert!(check_slo(&report, &Slo::default()).is_empty());
        let loose = Slo {
            p99_ms: Some(250.0),
            min_rate: Some(50.0),
        };
        assert!(check_slo(&report, &loose).is_empty(), "loose SLO must pass");
        let tight_lat = Slo {
            p99_ms: Some(0.5),
            min_rate: None,
        };
        let violations = check_slo(&report, &tight_lat);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("p99"), "{violations:?}");
        let tight_rate = Slo {
            p99_ms: None,
            min_rate: Some(1_000_000.0),
        };
        assert!(check_slo(&report, &tight_rate)[0].contains("rate"));
    }

    #[test]
    fn seeded_baseline_is_shape_only_with_warning() {
        let fresh = render_report(&cfg(), &fake_stats());
        let seeded = Json::obj(vec![
            (
                "meta",
                Json::obj(vec![
                    ("seeded", Json::Bool(true)),
                    ("profile", Json::str("mixed")),
                    ("mode", Json::str("open")),
                ]),
            ),
            (
                "endpoints",
                Json::obj(vec![("isa", Json::obj(vec![("count", Json::num(1.0))]))]),
            ),
            (
                "classes",
                Json::obj(vec![(
                    "single-shard",
                    Json::obj(vec![("count", Json::num(1.0))]),
                )]),
            ),
        ]);
        let warnings = compare_serve_baseline(&fresh, &seeded).expect("seeded must pass");
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("DISARMED"), "{warnings:?}");
        // But shape still gates: a baseline endpoint the fresh run never
        // exercised is a hard failure even when seeded.
        let missing = Json::obj(vec![
            ("meta", Json::obj(vec![("seeded", Json::Bool(true))])),
            (
                "endpoints",
                Json::obj(vec![(
                    "snapshot-load",
                    Json::obj(vec![("count", Json::num(1.0))]),
                )]),
            ),
        ]);
        let err = compare_serve_baseline(&fresh, &missing).unwrap_err();
        assert!(err.contains("snapshot-load"), "{err}");
        // And a profile mismatch is a hard failure too.
        let wrong_profile = Json::obj(vec![(
            "meta",
            Json::obj(vec![
                ("seeded", Json::Bool(true)),
                ("profile", Json::str("write-heavy")),
            ]),
        )]);
        let err = compare_serve_baseline(&fresh, &wrong_profile).unwrap_err();
        assert!(err.contains("profile"), "{err}");
    }

    /// Overwrite `doc.<section>.<key>` with a number (test helper).
    fn set(doc: &mut Json, section: &str, key: &str, value: f64) {
        let Json::Obj(pairs) = doc else {
            unreachable!()
        };
        for (k, v) in pairs.iter_mut() {
            if k == section {
                let Json::Obj(fields) = v else { unreachable!() };
                for (fk, fv) in fields.iter_mut() {
                    if fk == key {
                        *fv = Json::num(value);
                    }
                }
            }
        }
    }

    #[test]
    fn measured_baseline_arms_scalar_gates() {
        let fresh = render_report(&cfg(), &fake_stats());
        // Self-comparison passes with no warnings.
        let warnings = compare_serve_baseline(&fresh, &fresh).expect("self-compare passes");
        assert!(warnings.is_empty(), "{warnings:?}");
        // A fresh p99 beyond 2x baseline + 10ms fails the gate. The
        // fake run's p99 is under 1ms, so 60ms clears the slack.
        let mut slow = fresh.clone();
        set(&mut slow, "overall", "p99_us", 60_000.0);
        let err = compare_serve_baseline(&slow, &fresh).unwrap_err();
        assert!(err.contains("p99 regressed"), "{err}");
        // A fresh rate under half the baseline's fails too.
        let mut fast_base = fresh.clone();
        set(&mut fast_base, "totals", "achieved_rate", 1_000.0);
        let err = compare_serve_baseline(&fresh, &fast_base).unwrap_err();
        assert!(err.contains("rate regressed"), "{err}");
        // A modest p99 drift (within the gate) is only a warning.
        let mut drift = fresh.clone();
        set(&mut drift, "overall", "p99_us", 1_300.0);
        let mut base = fresh.clone();
        set(&mut base, "overall", "p99_us", 1_000.0);
        let warnings = compare_serve_baseline(&drift, &base).expect("drift passes the gate");
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("drifted"), "{warnings:?}");
    }

    /// Overwrite a number at an arbitrary path (test helper for nested
    /// sections like `endpoints.isa.p50_us`).
    fn set_nested(doc: &mut Json, path: &[&str], value: f64) {
        let Json::Obj(pairs) = doc else {
            unreachable!()
        };
        for (k, v) in pairs.iter_mut() {
            if k == path[0] {
                if path.len() == 1 {
                    *v = Json::num(value);
                } else {
                    set_nested(v, &path[1..], value);
                }
            }
        }
    }

    /// Drop `doc.<section>.<name>` entirely (test helper).
    fn remove_entry(doc: &mut Json, section: &str, name: &str) {
        let Json::Obj(pairs) = doc else {
            unreachable!()
        };
        for (k, v) in pairs.iter_mut() {
            if k == section {
                let Json::Obj(fields) = v else { unreachable!() };
                fields.retain(|(fk, _)| fk != name);
            }
        }
    }

    #[test]
    fn diff_of_identical_reports_is_all_zero_deltas() {
        let report = render_report(&cfg(), &fake_stats());
        let text = diff_serve_reports(&report, &report).expect("valid reports diff");
        assert!(text.contains("+0 (+0.0%)"), "{text}");
        assert!(!text.contains("note:"), "identical meta, no notes: {text}");
        assert!(!text.contains("only in"), "{text}");
        for name in [
            "overall",
            "isa",
            "typicality",
            "conceptualize",
            "single-shard",
            "scatter-gather",
        ] {
            assert!(text.contains(name), "missing row {name}: {text}");
        }
    }

    #[test]
    fn diff_shows_percent_deltas_per_endpoint_and_throughput() {
        let a = render_report(&cfg(), &fake_stats());
        let mut b = a.clone();
        // Double isa's p50 → an exact +100.0% row; halve the achieved
        // rate → an exact -50.0% throughput line.
        let isa_p50 = a
            .get("endpoints")
            .and_then(|s| s.get("isa"))
            .and_then(|h| h.get("p50_us"))
            .and_then(Json::as_f64)
            .expect("isa p50 present");
        set_nested(&mut b, &["endpoints", "isa", "p50_us"], isa_p50 * 2.0);
        set_nested(&mut b, &["totals", "achieved_rate"], 50.0);
        let text = diff_serve_reports(&a, &b).expect("diff renders");
        assert!(text.contains("(+100.0%)"), "{text}");
        assert!(
            text.contains("100.00 -> 50.00 req/s (-50 (-50.0%))"),
            "{text}"
        );
        // Deterministic: same inputs, same text.
        assert_eq!(text, diff_serve_reports(&a, &b).unwrap());
    }

    #[test]
    fn diff_flags_coverage_changes_and_workload_mismatch() {
        let a = render_report(&cfg(), &fake_stats());
        let mismatched_cfg = HarnessConfig {
            mode: Mode::Open { rate: 100.0 },
            profile: Profile::ReadHeavy,
            ..HarnessConfig::default()
        };
        let mut b = render_report(&mismatched_cfg, &fake_stats());
        remove_entry(&mut b, "endpoints", "conceptualize");
        let text = diff_serve_reports(&a, &b).expect("diff renders");
        assert!(text.contains("note: meta.profile differs"), "{text}");
        assert!(text.contains("conceptualize    only in A"), "{text}");
    }

    #[test]
    fn diff_rejects_invalid_documents() {
        let report = render_report(&cfg(), &fake_stats());
        let err = diff_serve_reports(&Json::obj(vec![]), &report).unwrap_err();
        assert!(err.contains("report A invalid"), "{err}");
        let err = diff_serve_reports(&report, &Json::obj(vec![])).unwrap_err();
        assert!(err.contains("report B invalid"), "{err}");
    }

    #[test]
    fn validation_rejects_broken_documents() {
        assert!(validate_serve_report(&Json::obj(vec![])).is_err());
        let wrong_schema = Json::obj(vec![(
            "meta",
            Json::obj(vec![("schema", Json::str("bench-pipeline-v1"))]),
        )]);
        let err = validate_serve_report(&wrong_schema).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }
}
