//! The open-loop traffic harness behind `probase-loadgen`.
//!
//! Probase's serving claims (§6: applications driven by Bing query-log
//! traffic) only mean something under realistic load, and the classic
//! failure of naive load generators is **coordinated omission**: a
//! closed-loop worker that waits for each response before sending the
//! next request stops *offering* load the moment the server stalls, so
//! the stall shows up as one slow sample instead of the hundreds of
//! requests that real users would have sent into the stall. This module
//! measures the system the way its users experience it:
//!
//! * **Open-loop arrivals** ([`engine`]) — requests arrive on a Poisson
//!   schedule at a configured offered rate, and every latency is
//!   measured from the request's *intended* send time, not its actual
//!   send time. A server stall therefore inflates the tail of the
//!   distribution by exactly the backlog it caused. The closed-loop
//!   mode is retained for comparison (and for saturation probing, where
//!   "as fast as the server admits" is the question being asked).
//! * **Named workload profiles** ([`profile`]) — `read-heavy`,
//!   `write-heavy`, `mixed`, and `conceptualize` mixes over the wire
//!   protocol's endpoints, modeled on the paper's query-log
//!   substitution, with zipfian key skew so caches are exercised
//!   honestly.
//! * **HDR latency capture** — all latencies land in
//!   [`probase_obs::Histogram`]s (p50/p90/p99/p99.9 + exact max at
//!   ~3% resolution), replacing the raw-vector percentile math that was
//!   off-by-one at small sample counts.
//! * **Machine-readable reports and an SLO gate** ([`report`]) — the
//!   run renders to a deterministic `BENCH_SERVE.json` document
//!   (per-endpoint and per-query-class percentiles, achieved vs offered
//!   rate, error/degraded counts), which CI gates against a committed
//!   baseline and a stated p99/throughput SLO.
//!
//! Randomness is a self-contained xorshift64* / SplitMix64 pair — the
//! same generators `probase-testkit` and the client's retry jitter use —
//! so a seed replays the whole run's request stream exactly.
//!
//! See DESIGN.md §15 for the methodology and the CI protocol.

pub mod engine;
pub mod profile;
pub mod report;

pub use engine::{run, Mode, RunStats};
pub use profile::{Profile, Vocab, Zipf};
pub use report::{
    check_slo, compare_serve_baseline, diff_serve_reports, render_report, validate_serve_report,
    Slo,
};

use std::time::Duration;

/// Everything a harness run needs besides the vocabulary.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Server (or router front door) address.
    pub addr: String,
    /// Whether `addr` is a shard router — turns on per-query-class
    /// reporting in the rendered document.
    pub router: bool,
    /// Open-loop (Poisson arrivals at an offered rate) or closed-loop.
    pub mode: Mode,
    /// The workload mix.
    pub profile: Profile,
    /// Worker connections. In open-loop mode this caps in-flight
    /// concurrency: if all workers are busy, scheduled arrivals queue
    /// and their waiting time is *measured* (that is the point).
    pub threads: usize,
    /// Run length. Open-loop schedules `rate × duration` arrivals;
    /// closed-loop stops issuing after this much wall time.
    pub duration: Duration,
    /// Zipfian skew of key choice.
    pub zipf: f64,
    /// Seed for the arrival schedule and the request stream.
    pub seed: u64,
    /// Per-request socket read timeout (bounds a blackholed request).
    pub read_timeout: Duration,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            addr: "127.0.0.1:7878".to_string(),
            router: false,
            mode: Mode::Closed,
            profile: Profile::Mixed,
            threads: 4,
            duration: Duration::from_secs(10),
            zipf: 1.0,
            seed: 42,
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// Seeded xorshift64* generator, mixed through SplitMix64 — the exact
/// pair `probase-testkit` uses, so loadgen runs replay like chaos runs.
#[derive(Debug, Clone)]
pub struct SeededRng(u64);

impl SeededRng {
    /// A generator seeded with `seed` (any value, including 0).
    pub fn new(seed: u64) -> SeededRng {
        SeededRng(splitmix64(seed).max(1))
    }

    /// Fork an independent substream: worker `i` gets its own stream so
    /// thread scheduling cannot reorder the global request sequence.
    pub fn fork(&self, stream: u64) -> SeededRng {
        SeededRng(splitmix64(self.0.wrapping_add(splitmix64(stream))).max(1))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next value in `[0, 1)`, with 53 bits of precision.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Next index in `[0, n)` (`n` must be positive).
    pub fn next_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.next_unit() * n as f64) as usize).min(n - 1)
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_forked_streams_differ() {
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let base = SeededRng::new(7);
        let mut f0 = base.fork(0);
        let mut f1 = base.fork(1);
        let same = (0..64).filter(|_| f0.next_u64() == f1.next_u64()).count();
        assert!(same < 4, "forked streams should diverge ({same}/64 equal)");
    }

    #[test]
    fn next_unit_in_range_and_next_index_in_bounds() {
        let mut rng = SeededRng::new(0); // zero seed must still work
        for _ in 0..10_000 {
            let u = rng.next_unit();
            assert!((0.0..1.0).contains(&u), "{u}");
            let i = rng.next_index(17);
            assert!(i < 17);
        }
        let mut one = SeededRng::new(3);
        assert_eq!(one.next_index(1), 0);
    }
}
