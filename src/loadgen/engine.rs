//! The load-generating engine: open-loop Poisson arrivals (latency from
//! *intended* send time) plus the legacy closed-loop mode.
//!
//! Open-loop is the honest mode: the arrival schedule is fixed up front
//! from the seed, workers drain it through a shared cursor, and a
//! request that could not be sent on time is charged its full queueing
//! delay. A server stall therefore surfaces as the tail-latency cliff
//! it really is, instead of silently reducing the offered load
//! (coordinated omission). Closed-loop is retained for saturation
//! probing, where "how fast will the server admit work" is the question.

use super::profile::query_class;
use super::{HarnessConfig, SeededRng, Vocab, Zipf};
use probase_obs::Registry;
use probase_serve::{Client, ClientConfig, ClientError, Request};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How requests are issued.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Each worker sends its next request as soon as the previous one
    /// completes. Subject to coordinated omission; good for probing the
    /// admission rate, wrong for tail-latency claims.
    Closed,
    /// Poisson arrivals at `rate` requests/second across all workers;
    /// latency is measured from the scheduled send time.
    Open {
        /// Offered rate, requests per second (> 0).
        rate: f64,
    },
}

impl Mode {
    /// Wire name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Mode::Closed => "closed",
            Mode::Open { .. } => "open",
        }
    }

    /// The offered rate, if open-loop.
    pub fn offered_rate(&self) -> Option<f64> {
        match self {
            Mode::Closed => None,
            Mode::Open { rate } => Some(*rate),
        }
    }
}

/// What a run produced: latency histograms (in the registry) plus exact
/// outcome counts.
#[derive(Debug)]
pub struct RunStats {
    /// Latency histograms: `loadgen.overall.latency_us`,
    /// `loadgen.endpoint.<name>.latency_us`,
    /// `loadgen.class.<class>.latency_us`.
    pub registry: Arc<Registry>,
    /// Requests the schedule offered (open) or workers issued (closed).
    pub scheduled: u64,
    /// Requests answered with an ok envelope.
    pub completed: u64,
    /// Well-formed error envelopes from the server.
    pub server_errors: u64,
    /// Transport/protocol failures (timeouts, broken pipes, bad frames).
    pub transport_errors: u64,
    /// Ok envelopes flagged degraded (sharded deployments only).
    pub degraded: u64,
    /// Reconnect attempts that failed.
    pub connect_failures: u64,
    /// Wall time from first scheduled arrival to last completion.
    pub elapsed: Duration,
}

impl RunStats {
    /// Completed ok-responses per second of wall time.
    pub fn achieved_rate(&self) -> f64 {
        if self.elapsed.as_secs_f64() <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / self.elapsed.as_secs_f64()
    }
}

/// Draw a Poisson arrival schedule: offsets from run start, one per
/// arrival, covering `duration` at `rate` requests/second. Exposed for
/// the property tests — the mean inter-arrival gap must converge to
/// `1/rate`.
pub fn poisson_offsets(rate: f64, duration: Duration, rng: &mut SeededRng) -> Vec<Duration> {
    assert!(rate > 0.0, "offered rate must be positive");
    let horizon = duration.as_secs_f64();
    let mut offsets = Vec::with_capacity((rate * horizon) as usize + 1);
    let mut t = 0.0;
    loop {
        // Inverse-CDF exponential inter-arrival. `1 - u` keeps the log
        // argument in (0, 1] so the draw is always finite.
        let u = rng.next_unit();
        t += -(1.0 - u).ln() / rate;
        if t >= horizon {
            return offsets;
        }
        offsets.push(Duration::from_secs_f64(t));
    }
}

struct Outcome {
    completed: u64,
    server_errors: u64,
    transport_errors: u64,
    degraded: u64,
    connect_failures: u64,
    issued: u64,
}

impl Outcome {
    fn new() -> Outcome {
        Outcome {
            completed: 0,
            server_errors: 0,
            transport_errors: 0,
            degraded: 0,
            connect_failures: 0,
            issued: 0,
        }
    }

    fn merge(&mut self, other: &Outcome) {
        self.completed += other.completed;
        self.server_errors += other.server_errors;
        self.transport_errors += other.transport_errors;
        self.degraded += other.degraded;
        self.connect_failures += other.connect_failures;
        self.issued += other.issued;
    }
}

fn client_config(cfg: &HarnessConfig) -> ClientConfig {
    ClientConfig {
        // No retries: a retried request would hide the very latency the
        // harness exists to measure. Failures are counted instead.
        max_retries: 0,
        retry_budget: 0,
        read_timeout: Some(cfg.read_timeout),
        seed: cfg.seed,
        ..ClientConfig::default()
    }
}

/// Issue one request on `client` (reconnecting once if the connection
/// has died) and account the outcome. Returns the send-to-completion
/// latency when the server produced a well-formed envelope.
fn issue(
    client: &mut Option<Client>,
    cfg: &HarnessConfig,
    req: &Request,
    outcome: &mut Outcome,
) -> Option<Duration> {
    outcome.issued += 1;
    if client.is_none() {
        match Client::connect_with(&cfg.addr, client_config(cfg)) {
            Ok(c) => *client = Some(c),
            Err(_) => {
                outcome.connect_failures += 1;
                outcome.transport_errors += 1;
                return None;
            }
        }
    }
    let c = client.as_mut().expect("client connected above");
    let sent = Instant::now();
    match c.call(req) {
        Ok(env) => {
            if env.error.is_some() {
                outcome.server_errors += 1;
            } else {
                outcome.completed += 1;
                if env.degraded {
                    outcome.degraded += 1;
                }
            }
            Some(sent.elapsed())
        }
        Err(err) => {
            outcome.transport_errors += 1;
            // Drop the connection on transport-level damage so the next
            // request starts clean; server-signalled errors above keep it.
            if matches!(
                err,
                ClientError::Io(_)
                    | ClientError::Protocol(_)
                    | ClientError::RetriesExhausted { .. }
            ) {
                *client = None;
            }
            None
        }
    }
}

struct Recorder<'a> {
    registry: &'a Registry,
}

impl Recorder<'_> {
    fn record(&self, endpoint: &str, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.registry
            .histogram("loadgen.overall.latency_us")
            .record(us);
        self.registry
            .histogram(&format!("loadgen.endpoint.{endpoint}.latency_us"))
            .record(us);
        self.registry
            .histogram(&format!(
                "loadgen.class.{}.latency_us",
                query_class(endpoint)
            ))
            .record(us);
    }
}

/// Run the harness against a live server and return its stats.
///
/// Open-loop: the full arrival schedule (times *and* requests) is drawn
/// from `cfg.seed` before the clock starts, workers drain it through a
/// shared cursor, and each latency is measured from the scheduled
/// arrival time. Closed-loop: each worker issues back-to-back requests
/// from its own forked stream until the duration elapses, measuring
/// from actual send time.
pub fn run(cfg: &HarnessConfig, vocab: &Vocab) -> Result<RunStats, String> {
    if vocab.is_empty() {
        return Err("empty vocabulary: server returned no labels".to_string());
    }
    if cfg.threads == 0 {
        return Err("need at least one worker thread".to_string());
    }
    let registry = Arc::new(Registry::new());
    let zipf_concepts = Zipf::new(vocab.concepts.len(), cfg.zipf);
    let mut outcome = Outcome::new();
    let start = Instant::now();
    let scheduled;

    match cfg.mode {
        Mode::Open { rate } => {
            if rate <= 0.0 {
                return Err("open-loop rate must be positive".to_string());
            }
            // Draw the whole run up front: arrival offsets, then one
            // request per arrival, all from the same seed.
            let mut rng = SeededRng::new(cfg.seed);
            let offsets = poisson_offsets(rate, cfg.duration, &mut rng);
            let mut write_seq = 0u64;
            let schedule: Vec<(Duration, &'static str, Request)> = offsets
                .into_iter()
                .map(|off| {
                    let (name, req) =
                        cfg.profile
                            .sample(&mut rng, &zipf_concepts, vocab, "o", &mut write_seq);
                    (off, name, req)
                })
                .collect();
            scheduled = schedule.len() as u64;
            let cursor = AtomicUsize::new(0);
            let outcomes: Vec<Outcome> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..cfg.threads)
                    .map(|_| {
                        let schedule = &schedule;
                        let cursor = &cursor;
                        let registry = &registry;
                        scope.spawn(move || {
                            let recorder = Recorder {
                                registry: registry.as_ref(),
                            };
                            let mut local = Outcome::new();
                            let mut client = None;
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some((offset, name, req)) = schedule.get(i) else {
                                    break;
                                };
                                let intended = start + *offset;
                                let now = Instant::now();
                                if intended > now {
                                    std::thread::sleep(intended - now);
                                }
                                if issue(&mut client, cfg, req, &mut local).is_some() {
                                    // Latency from the *intended* send
                                    // time: queueing delay behind a
                                    // stall is part of the number.
                                    recorder.record(name, intended.elapsed());
                                }
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("loadgen worker panicked"))
                    .collect()
            });
            for o in &outcomes {
                outcome.merge(o);
            }
        }
        Mode::Closed => {
            let deadline = start + cfg.duration;
            let outcomes: Vec<Outcome> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..cfg.threads)
                    .map(|t| {
                        let registry = &registry;
                        let zipf = &zipf_concepts;
                        scope.spawn(move || {
                            let recorder = Recorder {
                                registry: registry.as_ref(),
                            };
                            let mut rng = SeededRng::new(cfg.seed).fork(t as u64);
                            let mut write_seq = 0u64;
                            let space = format!("c{t}");
                            let mut local = Outcome::new();
                            let mut client = None;
                            while Instant::now() < deadline {
                                let (name, req) = cfg.profile.sample(
                                    &mut rng,
                                    zipf,
                                    vocab,
                                    &space,
                                    &mut write_seq,
                                );
                                if let Some(latency) = issue(&mut client, cfg, &req, &mut local) {
                                    recorder.record(name, latency);
                                }
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("loadgen worker panicked"))
                    .collect()
            });
            for o in &outcomes {
                outcome.merge(o);
            }
            scheduled = outcome.issued;
        }
    }

    Ok(RunStats {
        registry,
        scheduled,
        completed: outcome.completed,
        server_errors: outcome.server_errors,
        transport_errors: outcome.transport_errors,
        degraded: outcome.degraded,
        connect_failures: outcome.connect_failures,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_offsets_are_deterministic_sorted_and_bounded() {
        let mut a = SeededRng::new(99);
        let mut b = SeededRng::new(99);
        let one = poisson_offsets(200.0, Duration::from_secs(2), &mut a);
        let two = poisson_offsets(200.0, Duration::from_secs(2), &mut b);
        assert_eq!(one, two, "same seed must yield the same schedule");
        assert!(
            one.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be sorted"
        );
        assert!(one.iter().all(|o| *o < Duration::from_secs(2)));
        // ~400 expected arrivals; Poisson sd is ±20, allow 5 sd.
        assert!((300..500).contains(&one.len()), "got {}", one.len());
    }

    #[test]
    fn poisson_mean_rate_matches_offered_rate() {
        for seed in [1u64, 42, 0xCAFE_BABE] {
            let mut rng = SeededRng::new(seed);
            let rate = 1000.0;
            let offsets = poisson_offsets(rate, Duration::from_secs(10), &mut rng);
            let achieved = offsets.len() as f64 / 10.0;
            assert!(
                (achieved - rate).abs() / rate < 0.05,
                "seed {seed}: achieved {achieved} vs offered {rate}"
            );
        }
    }

    #[test]
    fn mode_names_and_rates() {
        assert_eq!(Mode::Closed.name(), "closed");
        assert_eq!(Mode::Open { rate: 50.0 }.name(), "open");
        assert_eq!(Mode::Closed.offered_rate(), None);
        assert_eq!(Mode::Open { rate: 50.0 }.offered_rate(), Some(50.0));
    }

    #[test]
    fn run_rejects_bad_configs() {
        let vocab = Vocab {
            concepts: vec!["a".to_string()],
            instances: vec!["b".to_string()],
        };
        let empty = Vocab {
            concepts: vec![],
            instances: vec![],
        };
        let cfg = HarnessConfig::default();
        assert!(run(&cfg, &empty).is_err());
        let zero_threads = HarnessConfig {
            threads: 0,
            ..HarnessConfig::default()
        };
        assert!(run(&zero_threads, &vocab).is_err());
        let bad_rate = HarnessConfig {
            mode: Mode::Open { rate: 0.0 },
            ..HarnessConfig::default()
        };
        assert!(run(&bad_rate, &vocab).is_err());
    }
}
