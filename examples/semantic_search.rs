//! Semantic web search (paper §5.3.1): rewrite concept queries into
//! typical-instance keyword queries and compare against the keyword
//! baseline on the same index.
//!
//! ```sh
//! cargo run --release --example semantic_search
//! ```

use probase::apps::{pages_from_corpus, rewrite_query, semantic_search, Association, MiniIndex};
use probase::corpus::{CorpusConfig, WorldConfig};
use probase::{ProbaseConfig, Simulation};

fn main() {
    let sim = Simulation::run(
        &WorldConfig::default(),
        &CorpusConfig {
            sentences: 25_000,
            ..CorpusConfig::default()
        },
        &ProbaseConfig::paper(),
    );
    let model = &sim.probase.model;

    // Index the simulated pages and mine word association.
    let docs = pages_from_corpus(&sim.corpus);
    println!("indexed {} pages", docs.len());
    let vocab: Vec<String> = model
        .typical_instances("country", 20)
        .into_iter()
        .map(|(i, _)| i)
        .collect();
    let assoc = Association::from_pages(&docs, &vocab);
    let index = MiniIndex::build(docs);

    for query in [
        "largest companies in tropical countries",
        "best universities",
        "famous actors",
    ] {
        println!("\nquery: {query:?}");
        let rewrites = rewrite_query(model, &assoc, query, 4, 6);
        for rw in &rewrites {
            println!("  rewrite [{:>8.2}]: {}", rw.score, rw.text);
        }
        let keyword_hits = index.search(query, 5);
        let semantic_hits = semantic_search(model, &assoc, &index, query, 5);
        println!("  keyword baseline hits: {}", keyword_hits.len());
        println!("  semantic search hits:  {}", semantic_hits.len());
        for &d in semantic_hits.iter().take(2) {
            let text = &index.doc(d).text;
            let snippet: String = text.chars().take(90).collect();
            println!("    page {}: {snippet}...", index.doc(d).page_id);
        }
    }
}
