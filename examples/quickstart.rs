//! Quickstart: build a Probase over a simulated web crawl and ask it the
//! paper's introductory questions.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use probase::corpus::{CorpusConfig, WorldConfig};
use probase::{ProbaseConfig, Simulation};

fn main() {
    println!("Simulating a web crawl and building Probase ...");
    let sim = Simulation::run(
        &WorldConfig::default(),
        &CorpusConfig {
            sentences: 30_000,
            ..CorpusConfig::default()
        },
        &ProbaseConfig::paper(),
    );
    let world_errors = sim.world.validate();
    assert!(
        world_errors.is_empty(),
        "world invariants violated: {world_errors:?}"
    );

    let p = &sim.probase;
    println!(
        "extracted {} distinct isA pairs over {} concepts in {} iterations",
        p.extraction.knowledge.pair_count(),
        p.extraction.knowledge.concept_count(),
        p.extraction.iterations.len(),
    );
    println!(
        "taxonomy: {} concepts, {} instances, max level {}",
        p.graph_stats.concepts, p.graph_stats.instances, p.graph_stats.max_level
    );

    // Instantiation (paper §1): "largest companies" → concrete instances.
    println!("\nTypical instances:");
    for concept in ["company", "country", "tropical country"] {
        let instances = p.model.typical_instances(concept, 5);
        let rendered: Vec<String> = instances
            .iter()
            .map(|(i, t)| format!("{i} ({t:.2})"))
            .collect();
        println!("  {concept:<18} -> {}", rendered.join(", "));
    }

    // Abstraction (paper §1): China, India, Brazil → BRIC / emerging market.
    println!("\nConceptualization of {{China, India, Brazil}}:");
    for (concept, score) in p.model.conceptualize(&["China", "India", "Brazil"], 5) {
        println!("  {concept:<24} {score:.3}");
    }

    // Set completion (§1): suggest a fourth BRIC member.
    let completions = p.model.complete(&["China", "India", "Brazil"], 3);
    let rendered: Vec<String> = completions
        .iter()
        .map(|(i, s)| format!("{i} ({s:.2})"))
        .collect();
    println!(
        "\nCompletion of {{China, India, Brazil}}: {}",
        rendered.join(", ")
    );

    // The two-sense word of §3: plant.
    let senses = p.model.senses("plant");
    println!(
        "\n\"plant\" has {} concept sense(s) in the built taxonomy",
        senses.len()
    );
    for s in senses {
        let g = p.model.graph();
        let kids: Vec<&str> = g.children(s).take(4).map(|(c, _)| g.label(c)).collect();
        println!("  {} -> {}", g.display(s), kids.join(", "));
    }
}
