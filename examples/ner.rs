//! Fine-grained named-entity recognition (paper §1's motivating task).
//!
//! ```sh
//! cargo run --release --example ner
//! ```

use probase::apps::{tag_entities, NerConfig};
use probase::corpus::{CorpusConfig, WorldConfig};
use probase::{ProbaseConfig, Simulation};

fn main() {
    let sim = Simulation::run(
        &WorldConfig::default(),
        &CorpusConfig {
            sentences: 25_000,
            ..CorpusConfig::default()
        },
        &ProbaseConfig::paper(),
    );
    let model = &sim.probase.model;

    for text in [
        "flights from China to Singapore via Tokyo",
        "Harvard and Stanford both rejected him",
        "she compared Java with Python and Perl",
        "the Louvre is busier than the Guggenheim",
    ] {
        println!("{text:?}");
        for tag in tag_entities(model, text, &NerConfig::default()) {
            println!(
                "  {:<22} -> {:<22} ({:.2})",
                tag.surface, tag.concept, tag.confidence
            );
        }
        println!();
    }
}
