//! Web-table understanding (paper §5.3.2): infer the concept heading a
//! column of cells, and propose enrichments for unknown cells.
//!
//! ```sh
//! cargo run --release --example table_understanding
//! ```

use probase::apps::{understand_tables, Column};
use probase::corpus::{CorpusConfig, WorldConfig};
use probase::eval::workloads::table_columns;
use probase::{ProbaseConfig, Simulation};

fn main() {
    let sim = Simulation::run(
        &WorldConfig::default(),
        &CorpusConfig {
            sentences: 25_000,
            ..CorpusConfig::default()
        },
        &ProbaseConfig::paper(),
    );
    let model = &sim.probase.model;

    // A hand-written table column, as in the paper's example.
    let column = Column {
        cells: ["China", "India", "Brazil", "Freedonia"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };
    let (inferences, enrichments) = understand_tables(model, &[column], 0.05);
    if let Some(Some(h)) = inferences.first() {
        println!(
            "hand-written column -> header {:?} (confidence {:.2})",
            h.concept, h.confidence
        );
    }
    for e in &enrichments {
        println!(
            "  enrichment: add {:?} under {:?}",
            e.new_instances, e.concept
        );
    }

    // A batch of synthetic tables with gold headers.
    let gold = table_columns(&sim.world, 60, 6, 0.1, 5);
    let columns: Vec<Column> = gold
        .iter()
        .map(|g| Column {
            cells: g.cells.clone(),
        })
        .collect();
    let (inferences, enrichments) = understand_tables(model, &columns, 0.05);
    let mut correct = 0;
    let mut answered = 0;
    for (inf, g) in inferences.iter().zip(&gold) {
        if let Some(h) = inf {
            answered += 1;
            if h.concept == g.concept {
                correct += 1;
            }
        }
    }
    println!(
        "\nsynthetic tables: {answered}/{} answered, header precision {:.3}",
        gold.len(),
        correct as f64 / answered.max(1) as f64
    );
    println!("enrichment proposals: {}", enrichments.len());
}
