//! Build Probase from your own raw documents — no simulation involved.
//! This is the adoption path for downstream users: bring text, get a
//! queryable probabilistic taxonomy.
//!
//! ```sh
//! cargo run --release --example own_corpus
//! ```

use probase::extract::{records_from_documents, RawDocument};
use probase::prob::SeedSet;
use probase::text::Lexicon;
use probase::{build_probase, ProbaseConfig};

fn main() {
    // Pretend these came from your crawler / database / filesystem.
    let docs = vec![
        RawDocument { page_id: 1, page_rank: 0.9, source_quality: 0.9, text:
            "Domestic animals such as cats and dogs are popular. \
             Animals such as cats are common. Animals such as dogs are loyal. \
             Animals such as cats, dogs and horses are kept worldwide.".into() },
        RawDocument { page_id: 2, page_rank: 0.7, source_quality: 0.8, text:
            "Companies such as Microsoft are large. Companies such as Microsoft and Nokia are known. \
             IT companies such as Microsoft are famous. \
             Companies such as Nokia, Microsoft, Proctor and Gamble are discussed.".into() },
        RawDocument { page_id: 3, page_rank: 0.5, source_quality: 0.6, text:
            "Plants such as trees are common. Plants such as trees and grass are green. \
             Plants such as steam turbines are loud. Plants such as steam turbines and boilers are used. \
             Organisms such as plants, trees and grass are studied.".into() },
        RawDocument { page_id: 4, page_rank: 0.4, source_quality: 0.5, text:
            "Cars are comprised of wheels and engines. \
             Countries such as France are visited. Countries such as France and Spain are loved.".into() },
    ];

    let records = records_from_documents(&docs, 0);
    println!("{} sentences from {} documents", records.len(), docs.len());

    // No seed taxonomy: the evidence model falls back to its prior.
    let probase = build_probase(
        &records,
        &Lexicon::default(),
        &ProbaseConfig::paper(),
        &SeedSet::new(),
    );

    println!(
        "extracted {} pairs over {} concepts\n",
        probase.extraction.knowledge.pair_count(),
        probase.extraction.knowledge.concept_count()
    );
    for concept in ["animal", "company", "plant", "country"] {
        let typical: Vec<String> = probase
            .model
            .typical_instances(concept, 4)
            .into_iter()
            .map(|(i, t)| format!("{i} ({t:.2})"))
            .collect();
        println!("{concept:<10} -> {}", typical.join(", "));
    }
    let g = probase.model.graph();
    println!(
        "\n\"plant\" senses: {}",
        probase.model.senses("plant").len()
    );
    for s in probase.model.senses("plant") {
        let kids: Vec<&str> = g.children(s).map(|(c, _)| g.label(c)).collect();
        println!("  {} -> {}", g.display(s), kids.join(", "));
    }
}
