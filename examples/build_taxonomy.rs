//! Drive the pipeline stage by stage on hand-written sentences — the
//! paper's own running examples — and print what each stage decides.
//! This is the best place to see the semantic iteration resolve the
//! ambiguities of §2.2 Example 2.
//!
//! ```sh
//! cargo run --release --example build_taxonomy
//! ```

use probase::extract::{extract, ExtractorConfig};
use probase::prob::{
    annotate_graph, compute_plausibility, EvidenceModel, PlausibilityConfig, ProbaseModel, SeedSet,
};
use probase::store::GraphStats;
use probase::taxonomy::{build_taxonomy, TaxonomyConfig};
use probase::text::Lexicon;
use probase_corpus::sentence::{SentenceRecord, SentenceTruth, SourceMeta};

fn rec(id: u64, text: &str) -> SentenceRecord {
    SentenceRecord {
        id,
        text: text.to_string(),
        meta: SourceMeta {
            page_id: id / 2,
            page_rank: 0.4,
            source_quality: 0.8,
        },
        truth: SentenceTruth::default(),
    }
}

fn main() {
    // The paper's Example 2 and Example 3 sentences, plus enough plain
    // evidence for the iteration to bootstrap.
    let texts = vec![
        // bootstrap evidence
        "animals such as cats.",
        "animals such as cats.",
        "animals such as cats and dogs.",
        "domestic animals such as cats, dogs and horses.",
        "companies such as IBM.",
        "companies such as IBM and Nokia.",
        "companies such as Nokia, IBM.",
        "companies such as IBM, Nokia, Proctor and Gamble.",
        "companies such as Proctor and Gamble, IBM.",
        "classic movies such as Gone with the Wind.",
        "classic movies such as Gone with the Wind and Casablanca.",
        // Example 2(1): distractor super-concept
        "animals other than dogs such as cats.",
        // Example 2(4): list drift before "and other"
        "representatives in North America, Europe, China, Japan, and other countries.",
        "countries such as China and Japan.",
        "countries such as Japan, China.",
        // Example 3: the two senses of "plant"
        "plants such as trees and grass.",
        "plants such as trees, grass and herbs.",
        "plants such as steam turbines, pumps, and boilers.",
        "organisms such as plants, trees, grass and animals.",
        "things such as plants, trees, grass, pumps, and boilers.",
    ];
    let records: Vec<SentenceRecord> = texts
        .iter()
        .enumerate()
        .map(|(i, t)| rec(i as u64, t))
        .collect();

    // Stage 1: iterative extraction.
    let out = extract(&records, &Lexicon::default(), &ExtractorConfig::paper());
    println!("=== extraction (Algorithm 1) ===");
    for it in &out.iterations {
        println!(
            "iteration {}: +{} occurrences, {} distinct pairs",
            it.iteration, it.new_occurrences, it.distinct_pairs
        );
    }
    println!("\nper-sentence extractions:");
    for s in &out.sentences {
        println!(
            "  [{:>2}] {} -> {:?}",
            s.sentence_id, s.super_label, s.items
        );
    }

    // Stage 2: taxonomy construction.
    let built = build_taxonomy(&out.sentences, &TaxonomyConfig::default());
    println!("\n=== taxonomy (Algorithm 2) ===\n{:?}", built.stats);
    let mut graph = built.graph;
    println!("\"plant\" senses: {}", graph.senses_of("plant").len());
    for s in graph.senses_of("plant") {
        if graph.is_instance(s) {
            continue;
        }
        let kids: Vec<&str> = graph.children(s).map(|(c, _)| graph.label(c)).collect();
        println!("  {} -> {}", graph.display(s), kids.join(", "));
    }

    // Stage 3: plausibility + typicality.
    let model = EvidenceModel::fit(&out.evidence, &SeedSet::new());
    let table = compute_plausibility(
        &out.evidence,
        &out.knowledge,
        &model,
        &PlausibilityConfig::default(),
    );
    annotate_graph(&mut graph, &table);
    println!("\n=== probabilistic model ===");
    println!("graph stats: {:?}", GraphStats::compute(&graph));
    let model = ProbaseModel::new(graph);
    for concept in ["animal", "company", "country"] {
        let typical: Vec<String> = model
            .typical_instances(concept, 4)
            .into_iter()
            .map(|(i, t)| format!("{i} ({t:.2})"))
            .collect();
        println!("typical {concept}: {}", typical.join(", "));
    }
}
