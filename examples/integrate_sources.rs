//! Heterogeneous knowledge-source integration (paper §4.1): extract from
//! a clean encyclopedia-like crawl and a noisy forum-like crawl, merge
//! the knowledge stores, and merge already-built taxonomy graphs.
//!
//! ```sh
//! cargo run --release --example integrate_sources
//! ```

use probase::corpus::{generate, CorpusConfig, CorpusGenerator, WorldConfig};
use probase::extract::{extract, ExtractorConfig};
use probase::taxonomy::{build_taxonomy, merge_graphs, TaxonomyConfig};

fn main() {
    let world = generate(&WorldConfig::default());
    let enc = CorpusGenerator::new(&world, CorpusConfig::encyclopedia(1, 15_000)).generate_all();
    let forum = CorpusGenerator::new(&world, CorpusConfig::forum(2, 15_000)).generate_all();

    let out_enc = extract(&enc, &world.lexicon, &ExtractorConfig::paper());
    let out_forum = extract(&forum, &world.lexicon, &ExtractorConfig::paper());
    println!(
        "encyclopedia: {} pairs | forum: {} pairs",
        out_enc.knowledge.pair_count(),
        out_forum.knowledge.pair_count()
    );

    // Γ-level integration: counters add, coverage grows.
    let mut merged = out_enc.knowledge.clone();
    merged.absorb(&out_forum.knowledge);
    println!(
        "merged Γ: {} pairs ({} total evidence)",
        merged.pair_count(),
        merged.total()
    );

    // Graph-level integration: re-run Algorithm 2 across the two built
    // taxonomies (useful when only snapshots survive).
    let g_enc = build_taxonomy(&out_enc.sentences, &TaxonomyConfig::default());
    let g_forum = build_taxonomy(&out_forum.sentences, &TaxonomyConfig::default());
    let combined = merge_graphs(&[&g_enc.graph, &g_forum.graph], &TaxonomyConfig::default());
    println!(
        "graphs: {} + {} senses -> {} senses after cross-source merging",
        g_enc.stats.senses, g_forum.stats.senses, combined.stats.senses
    );
    let g = &combined.graph;
    let plant_senses = g
        .senses_of("plant")
        .into_iter()
        .filter(|&n| !g.is_instance(n) && g.child_count(n) >= 2)
        .count();
    println!("\"plant\" still has {plant_senses} populated senses after integration");
}
