//! Short-text understanding (paper §5.3.2): conceptualize tweet-sized
//! texts and cluster them by concept vectors, comparing against a
//! bag-of-words baseline.
//!
//! ```sh
//! cargo run --release --example short_text
//! ```

use probase::apps::{bow_vector, concept_vector, conceptualize_text, kmeans, purity, FeatureSpace};
use probase::corpus::{CorpusConfig, WorldConfig, WorldIndex};
use probase::eval::workloads::tweets;
use probase::{ProbaseConfig, Simulation};

fn main() {
    let sim = Simulation::run(
        &WorldConfig::default(),
        &CorpusConfig {
            sentences: 25_000,
            ..CorpusConfig::default()
        },
        &ProbaseConfig::paper(),
    );
    let model = &sim.probase.model;

    // Conceptualize a few texts (the paper's running demo).
    for text in [
        "a trip across China and India",
        "dinner was pizza and sushi",
        "watching Star Wars and Blade Runner again",
    ] {
        let concepts = conceptualize_text(model, text, 3);
        let rendered: Vec<String> = concepts
            .iter()
            .map(|(c, s)| format!("{c} ({s:.2})"))
            .collect();
        println!("{text:?} -> {}", rendered.join(", "));
    }

    // Cluster synthetic tweets over four topics.
    let idx = WorldIndex::new(&sim.world);
    let topics: Vec<_> = ["country", "dish", "film", "university"]
        .iter()
        .filter_map(|l| idx.senses(l).first().copied())
        .collect();
    let tws = tweets(&sim.world, &topics, 60, 9);
    let gold: Vec<usize> = tws.iter().map(|t| t.topic).collect();

    let mut cspace = FeatureSpace::default();
    let cvecs: Vec<_> = tws
        .iter()
        .map(|t| concept_vector(model, &mut cspace, &t.text, 3))
        .collect();
    let cassign = kmeans(&cvecs, topics.len(), 25, 7);

    let mut wspace = FeatureSpace::default();
    let wvecs: Vec<_> = tws
        .iter()
        .map(|t| bow_vector(&mut wspace, &t.text))
        .collect();
    let wassign = kmeans(&wvecs, topics.len(), 25, 7);

    println!(
        "\nclustering {} tweets into {} topics:",
        tws.len(),
        topics.len()
    );
    println!("  concept-vector purity : {:.3}", purity(&cassign, &gold));
    println!("  bag-of-words purity   : {:.3}", purity(&wassign, &gold));
}
